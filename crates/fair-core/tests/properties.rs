//! Property-based tests for the gauge lattice and debt model.

use fair_core::prelude::*;
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = GaugeProfile> {
    proptest::array::uniform6(0u8..=5).prop_map(|levels| {
        GaugeProfile::from_pairs(ALL_GAUGES.iter().copied().zip(levels.into_iter().map(Tier)))
    })
}

proptest! {
    #[test]
    fn dominates_is_reflexive(p in arb_profile()) {
        prop_assert!(p.dominates(&p));
    }

    #[test]
    fn dominates_is_antisymmetric(a in arb_profile(), b in arb_profile()) {
        if a.dominates(&b) && b.dominates(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn dominates_is_transitive(a in arb_profile(), b in arb_profile(), c in arb_profile()) {
        if a.dominates(&b) && b.dominates(&c) {
            prop_assert!(a.dominates(&c));
        }
    }

    #[test]
    fn join_is_least_upper_bound(a in arb_profile(), b in arb_profile()) {
        let j = a.join(&b);
        prop_assert!(j.dominates(&a) && j.dominates(&b));
        // least: any other upper bound dominates the join
        let top = GaugeProfile::max_documented().join(&j);
        prop_assert!(top.dominates(&j));
    }

    #[test]
    fn meet_is_greatest_lower_bound(a in arb_profile(), b in arb_profile()) {
        let m = a.meet(&b);
        prop_assert!(a.dominates(&m) && b.dominates(&m));
    }

    #[test]
    fn join_meet_absorption(a in arb_profile(), b in arb_profile()) {
        prop_assert_eq!(a.join(&a.meet(&b)), a);
        prop_assert_eq!(a.meet(&a.join(&b)), a);
    }

    #[test]
    fn join_commutative_associative(a in arb_profile(), b in arb_profile(), c in arb_profile()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
    }

    #[test]
    fn gaps_empty_iff_dominates(a in arb_profile(), b in arb_profile()) {
        prop_assert_eq!(a.gaps_to(&b).is_empty(), a.dominates(&b));
    }

    #[test]
    fn raising_never_decreases_progress(p in arb_profile(), idx in 0usize..6, tier in 0u8..=6) {
        let g = ALL_GAUGES[idx];
        let raised = p.raised(g, Tier(tier));
        prop_assert!(raised.dominates(&p));
        prop_assert!(raised.progress_score() >= p.progress_score());
    }

    #[test]
    fn debt_is_zero_iff_requirements_met(have in arb_profile(), need in arb_profile()) {
        let scenario = ReuseScenario::new("prop", need, 3);
        let report = fair_core::debt::estimate(&have, &scenario);
        prop_assert_eq!(report.is_debt_free(), have.dominates(&need));
        prop_assert_eq!(
            report.total_interventions,
            report.interventions_per_use as u64 * 3
        );
    }

    #[test]
    fn debt_monotone_in_have(have in arb_profile(), need in arb_profile(), idx in 0usize..6) {
        let scenario = ReuseScenario::new("prop", need, 1);
        let before = fair_core::debt::estimate(&have, &scenario);
        let g = ALL_GAUGES[idx];
        let raised = have.raised(g, have.get(g).next());
        let after = fair_core::debt::estimate(&raised, &scenario);
        prop_assert!(after.interventions_per_use <= before.interventions_per_use);
    }

    #[test]
    fn profile_json_roundtrip(p in arb_profile()) {
        let json = serde_json::to_string(&p).unwrap();
        let back: GaugeProfile = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(p, back);
    }
}

mod evolution_props {
    use fair_core::evolution::{FormatId, FormatRegistry};
    use proptest::prelude::*;

    /// Builds a chain registry v0 → v1 → … → v(n-1), each hop appending
    /// its index, plus the reverse hops stripping it.
    fn chain(n: usize) -> FormatRegistry {
        let mut reg = FormatRegistry::new();
        for i in 0..n.saturating_sub(1) {
            let from = FormatId::new("fmt", i.to_string());
            let to = FormatId::new("fmt", (i + 1).to_string());
            let tag = format!("|up{i}");
            let tag_rm = tag.clone();
            reg.register(from.clone(), to.clone(), move |s| Ok(format!("{s}{tag}")));
            reg.register(to, from, move |s| {
                s.strip_suffix(&tag_rm)
                    .map(str::to_string)
                    .ok_or_else(|| "wrong version".to_string())
            });
        }
        reg
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn any_version_pair_is_reachable(n in 2usize..10, a in 0usize..10, b in 0usize..10) {
            let (a, b) = (a % n, b % n);
            let reg = chain(n);
            let from = FormatId::new("fmt", a.to_string());
            let to = FormatId::new("fmt", b.to_string());
            let plan = reg.plan(&from, &to).unwrap();
            // shortest path on a chain has |a-b| hops
            prop_assert_eq!(plan.len(), a.abs_diff(b) + 1);
            prop_assert_eq!(plan.first().unwrap(), &from);
            prop_assert_eq!(plan.last().unwrap(), &to);
        }

        #[test]
        fn round_trips_compose_losslessly(n in 2usize..8, a in 0usize..8, b in 0usize..8, base in "[a-z]{0,12}") {
            let (a, b) = (a % n, b % n);
            let reg = chain(n);
            let v0 = FormatId::new("fmt", "0");
            let from = FormatId::new("fmt", a.to_string());
            let to = FormatId::new("fmt", b.to_string());
            // materialize a *valid* v_a payload by upgrading the v0 base
            let at_a = reg.convert(&v0, &from, &base).unwrap();
            let there = reg.convert(&from, &to, &at_a).unwrap();
            let back = reg.convert(&to, &from, &there).unwrap();
            prop_assert_eq!(back, at_a);
            // and converting all the way down recovers the base
            prop_assert_eq!(reg.convert(&to, &v0, &there).unwrap(), base);
        }

        #[test]
        fn unknown_container_has_no_path(n in 2usize..6) {
            let reg = chain(n);
            let from = FormatId::new("fmt", "0");
            let alien = FormatId::new("alien", "1");
            prop_assert!(reg.plan(&from, &alien).is_err());
        }
    }
}
