//! Corruption fuzz for the live telemetry stream: scanning and tailing
//! must be total.
//!
//! A live monitor that panics on a half-written frame dies exactly when
//! it is most needed — mid-campaign, mid-append. These tests build a
//! small, representative stream and feed the scanner every single-byte
//! bit-flip and every truncation of it: scanning must always return
//! (`Ok` with a valid prefix, or a typed `Corrupt`/`BadRecord` error),
//! never panic, and whatever prefix it accepts must re-scan to the same
//! records. The tail tests drive [`StreamReader`] over a file that
//! grows byte-by-byte, proving a torn tail is "wait", never "crash".

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use telemetry::stream::{StreamOptions, StreamWriter};
use telemetry::{scan_stream_bytes, ArgValue, InstantEvent, SpanEvent, StreamReader, StreamRecord};

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fair-stream-fuzz-{}-{tag}-{n}.stream",
        std::process::id()
    ))
}

/// A small stream exercising every record variant.
fn sample_records() -> Vec<StreamRecord> {
    vec![
        StreamRecord::Meta {
            campaign: "fuzz-campaign".to_string(),
            total_runs: 12,
        },
        StreamRecord::Track {
            track: 0,
            name: "allocations".to_string(),
        },
        StreamRecord::Span(SpanEvent {
            category: "allocation",
            name: "alloc-0".into(),
            track: 0,
            start_us: 0,
            dur_us: 3_600_000_000,
            args: vec![("completed", 4u64.into()), ("timed_out", 1u64.into())],
        }),
        StreamRecord::Span(SpanEvent {
            category: "attempt",
            name: "g/i-0".into(),
            track: 1,
            start_us: 100,
            dur_us: 900_000_000,
            args: vec![],
        }),
        StreamRecord::Instant(InstantEvent {
            category: "util",
            name: "busy_nodes".into(),
            track: 0,
            at_us: 1_800_000_000,
            args: vec![("value", ArgValue::Float(3.0))],
        }),
        StreamRecord::Count {
            name: "completed_runs".to_string(),
            delta: 4.0,
        },
        StreamRecord::Complete,
    ]
}

fn sample_stream_bytes() -> Vec<u8> {
    let path = scratch("sample");
    let mut writer = StreamWriter::create(&path, StreamOptions::default()).expect("create");
    for record in sample_records() {
        // `finish` would append its own Complete; the sample carries one
        // explicitly so truncations can cut it off.
        writer.append(&record).expect("append");
    }
    writer.flush().expect("flush");
    drop(writer);
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn every_single_byte_bitflip_scans_or_errors_cleanly() {
    let pristine = sample_stream_bytes();
    assert!(pristine.len() > 100, "sample stream suspiciously small");
    for mask in [0x01u8, 0xFF] {
        for i in 0..pristine.len() {
            let mut mutated = pristine.clone();
            mutated[i] ^= mask;
            // must not panic; either the CRC rejects the flip (torn tail
            // or typed error) or the flip hides in a torn region
            if let Ok(scan) = scan_stream_bytes(&mutated) {
                assert!(
                    scan.valid_len + scan.torn_bytes <= mutated.len() as u64,
                    "flip at {i}: scan accounts for more bytes than exist"
                );
            }
        }
    }
}

#[test]
fn every_truncation_scans_a_consistent_prefix() {
    let pristine = sample_stream_bytes();
    for cut in 0..=pristine.len() {
        // a pure truncation is exactly a torn tail: the scan must accept
        // it (hard errors are reserved for mid-stream damage)
        let scan = scan_stream_bytes(&pristine[..cut]).unwrap_or_else(|err| {
            panic!(
                "truncation at {cut}/{} must scan, got {err}",
                pristine.len()
            )
        });
        assert!(scan.valid_len <= cut as u64);
        assert_eq!(scan.valid_len + scan.torn_bytes, cut as u64);
        // the accepted prefix must itself re-scan to the same records
        let again = scan_stream_bytes(&pristine[..scan.valid_len as usize])
            .expect("valid prefix must scan");
        assert_eq!(again.records, scan.records);
        assert_eq!(again.torn_bytes, 0);
        // completion requires an intact final Complete frame
        assert_eq!(
            scan.complete,
            cut == pristine.len(),
            "truncation at {cut} misreported completion"
        );
    }
}

#[test]
fn garbage_appended_after_a_clean_stream_is_a_torn_tail_or_typed_error() {
    let pristine = sample_stream_bytes();
    for garbage in [
        &b"\x00"[..],
        &b"\xFF\xFF\xFF\xFF"[..],      // short header: torn
        &b"not a frame at all"[..],    // decodes as an oversize length claim
        &[0x10, 0x00, 0x00, 0x00][..], // plausible length, missing payload
    ] {
        let mut bytes = pristine.clone();
        bytes.extend_from_slice(garbage);
        match scan_stream_bytes(&bytes) {
            Ok(scan) => {
                // the whole sample must survive; only the garbage is torn
                assert_eq!(scan.records, sample_records());
                assert_eq!(scan.valid_len, pristine.len() as u64);
            }
            // an impossible frame (length claim beyond MAX_PAYLOAD) is a
            // typed error — acceptable, as long as it is not a panic
            Err(telemetry::StreamError::Corrupt { offset, .. }) => {
                assert_eq!(offset, pristine.len() as u64);
            }
            Err(err) => panic!("garbage tail must be torn or Corrupt, got {err}"),
        }
    }
}

/// The live-tail contract: a reader following a file that grows one
/// byte at a time sees exactly the sample records, in order, without
/// ever erroring on the partial frames in between.
#[test]
fn reader_tails_a_byte_by_byte_append_without_errors() {
    let pristine = sample_stream_bytes();
    let path = scratch("tail");
    std::fs::write(&path, b"").expect("create empty");
    let mut reader = StreamReader::open(&path).expect("open");
    let mut seen = Vec::new();
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("append handle");
    for (i, byte) in pristine.iter().enumerate() {
        file.write_all(std::slice::from_ref(byte)).expect("append");
        file.flush().expect("flush");
        let records = reader
            .poll()
            .unwrap_or_else(|err| panic!("poll after byte {i} errored: {err}"));
        seen.extend(records);
    }
    std::fs::remove_file(&path).ok();
    assert_eq!(seen, sample_records());
    assert!(reader.is_complete());
}

/// Tail-then-append resume: a reader that drained a live stream picks
/// up records appended afterwards, and a torn frame at its tail is
/// retried — not skipped, not duplicated — once the rest arrives.
#[test]
fn reader_resumes_cleanly_after_draining_a_live_stream() {
    let path = scratch("resume");
    let mut writer = StreamWriter::create(&path, StreamOptions::write_through()).expect("create");
    let records = sample_records();
    let (head, tail) = records.split_at(3);
    for record in head {
        writer.append(record).expect("append head");
    }

    let mut reader = StreamReader::open(&path).expect("open");
    assert_eq!(reader.poll().expect("first drain"), head);
    assert!(reader.poll().expect("idle poll").is_empty());

    for record in tail {
        writer.append(record).expect("append tail");
    }
    let mut resumed = Vec::new();
    while !reader.is_complete() {
        resumed.extend(reader.poll().expect("resume poll"));
    }
    std::fs::remove_file(&path).ok();
    assert_eq!(resumed, tail);
}
