//! Minimal deterministic JSON writing.
//!
//! The exports in this crate are diffed byte-for-byte across runs and
//! across PRs, so every formatting decision is pinned down here instead
//! of delegated to an external serializer:
//!
//! * strings escape exactly `"`/`\\` and control characters (`\u00XX`),
//! * floats use Rust's shortest-roundtrip `Display`, with whole numbers
//!   printed without a fractional part (`5`, not `5.0`) and non-finite
//!   values mapped to `null` (JSON has no NaN/inf),
//! * object keys are emitted in the order the caller provides — callers
//!   use `BTreeMap` where canonical ordering matters.

use std::fmt::Write;

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    // Escapes are needed only for `"`, `\`, and control bytes; every
    // other byte (including multi-byte UTF-8, whose bytes are >= 0x80)
    // passes through verbatim — so clean strings, the overwhelmingly
    // common case on the live-stream hot path, append in one copy.
    if s.bytes().all(|b| b >= 0x20 && b != b'"' && b != b'\\') {
        out.push_str(s);
    } else {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
    }
    out.push('"');
}

/// Appends `v`'s decimal digits to `out` directly, bypassing the
/// `core::fmt` machinery — the live-stream encoder formats several
/// integers per record and the formatter plumbing dominates that
/// profile. Output is identical to `Display` for every `u64`.
pub fn write_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // Decimal digits are pure ASCII, so the slice is always valid UTF-8.
    if let Ok(digits) = std::str::from_utf8(&buf[i..]) {
        out.push_str(digits);
    }
}

/// Appends `v` as a JSON number to `out` (`null` for NaN/infinite).
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` on f64 is shortest-roundtrip and prints 5.0 as "5" — already
    // the canonical form we want. Integral values below 2^53 (exactly
    // representable, so `Display` prints their plain digits) go through
    // the direct integer formatter: counter values are almost always
    // integral, and the float formatter is the expensive path.
    if v.trunc() == v && v.abs() < 9_007_199_254_740_992.0 {
        if v.is_sign_negative() {
            out.push('-');
        }
        write_u64(out, v.abs() as u64);
        return;
    }
    let _ = write!(out, "{v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn unescaped_fast_path_matches() {
        let mut out = String::new();
        write_str(&mut out, "g1/n-0 plain ascii and ünïcode");
        assert_eq!(out, "\"g1/n-0 plain ascii and ünïcode\"");
    }

    #[test]
    fn u64_matches_display() {
        for v in [0u64, 9, 10, 99, 100, 12_345, u64::MAX - 1, u64::MAX] {
            let mut out = String::new();
            write_u64(&mut out, v);
            assert_eq!(out, format!("{v}"));
        }
    }

    #[test]
    fn float_forms() {
        let cases = [(5.0, "5"), (2.5, "2.5"), (-0.125, "-0.125")];
        for (v, want) in cases {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert_eq!(out, want);
        }
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn f64_integral_fast_path_matches_display() {
        // Every finite value must print exactly as `{}` would — the
        // fast path is an optimization, never a format change.
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            42.0,
            1e15,
            9_007_199_254_740_991.0,
            -9_007_199_254_740_991.0,
            9_007_199_254_740_992.0,
            2.5,
            0.1,
            f64::MIN_POSITIVE,
            1e300,
        ] {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert_eq!(out, format!("{v}"), "for {v:?}");
        }
    }
}
