//! Minimal deterministic JSON writing.
//!
//! The exports in this crate are diffed byte-for-byte across runs and
//! across PRs, so every formatting decision is pinned down here instead
//! of delegated to an external serializer:
//!
//! * strings escape exactly `"`/`\\` and control characters (`\u00XX`),
//! * floats use Rust's shortest-roundtrip `Display`, with whole numbers
//!   printed without a fractional part (`5`, not `5.0`) and non-finite
//!   values mapped to `null` (JSON has no NaN/inf),
//! * object keys are emitted in the order the caller provides — callers
//!   use `BTreeMap` where canonical ordering matters.

use std::fmt::Write;

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number to `out` (`null` for NaN/infinite).
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` on f64 is shortest-roundtrip and prints 5.0 as "5" — already
    // the canonical form we want.
    let _ = write!(out, "{v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn float_forms() {
        let cases = [(5.0, "5"), (2.5, "2.5"), (-0.125, "-0.125")];
        for (v, want) in cases {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert_eq!(out, want);
        }
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }
}
