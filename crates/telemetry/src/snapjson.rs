//! Lossless snapshot persistence: `fair-telemetry-snapshot/1`.
//!
//! The memoization layer (`savanna::memo`) caches a run's telemetry
//! [`Snapshot`] alongside its `StatusBoard` entry and replays it on a
//! cache hit. For the warm-vs-cold differential to hold byte-for-byte,
//! the codec here must be **exact**: decoding an encoded snapshot yields
//! a `Snapshot` that is `==` the original, including every `u64`
//! timestamp and every `f64` counter bit pattern.
//!
//! The existing exports ([`crate::chrome_trace_json`],
//! [`crate::metrics_json`]) are *presentation* formats and lossy by
//! design (aggregation, lane packing). This module is the storage
//! format, and it side-steps the two lossy spots in plain JSON numbers:
//!
//! * `u64` values are encoded as **decimal strings** — JSON readers
//!   (including our own [`crate::jsonin`]) funnel numbers through `f64`,
//!   which cannot represent every `u64`;
//! * `f64` values are encoded as **shortest-roundtrip `Display`
//!   strings** — Rust guarantees `format!("{v}").parse::<f64>()`
//!   returns the identical bits for every finite value, and `NaN`/`inf`
//!   survive via their `Display`/`FromStr` forms.
//!
//! Event arguments are `[name, tag, value]` triples with one-letter
//! type tags (`u`/`i`/`f`/`t`/`b`), so the typed [`ArgValue`] enum
//! round-trips without guessing. `&'static str` fields (categories,
//! argument names) are re-materialised through a process-global intern
//! pool; the set of category/argument names in a process is tiny and
//! fixed, so the leak is bounded.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};

use crate::event::{ArgValue, InstantEvent, SpanEvent};
use crate::json::{write_str, write_u64};
use crate::jsonin::{parse, Value};
use crate::sink::Snapshot;

/// Schema id stamped into every encoded snapshot.
pub const SNAPSHOT_SCHEMA: &str = "fair-telemetry-snapshot/1";

/// Interns `s`, returning a `&'static str` with the same contents.
///
/// Decoding needs `&'static str` for [`SpanEvent::category`] and
/// argument names; the pool guarantees each distinct string leaks at
/// most once per process.
pub(crate) fn intern(s: &str) -> &'static str {
    static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut pool = POOL.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(existing) = pool.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.insert(leaked);
    leaked
}

pub(crate) fn write_u64_str(out: &mut String, v: u64) {
    out.push('"');
    write_u64(out, v);
    out.push('"');
}

pub(crate) fn write_f64_str(out: &mut String, v: f64) {
    out.push('"');
    // Integral values below 2^53 print identically to `Display` through
    // the direct integer formatter — the common case for counter deltas
    // and `*_us` totals on the stream hot path. Non-finite values keep
    // their `Display` forms (`NaN`, `inf`): unlike plain-JSON numbers,
    // the quoted-string codec round-trips them.
    if v.is_finite() && v.trunc() == v && v.abs() < 9_007_199_254_740_992.0 {
        if v.is_sign_negative() {
            out.push('-');
        }
        write_u64(out, v.abs() as u64);
    } else {
        let _ = write!(out, "{v}");
    }
    out.push('"');
}

pub(crate) fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('[');
    for (i, (name, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        write_str(out, name);
        out.push(',');
        match value {
            ArgValue::UInt(v) => {
                out.push_str("\"u\",");
                write_u64_str(out, *v);
            }
            ArgValue::Int(v) => {
                out.push_str("\"i\",\"");
                let _ = write!(out, "{v}");
                out.push('"');
            }
            ArgValue::Float(v) => {
                out.push_str("\"f\",");
                write_f64_str(out, *v);
            }
            ArgValue::Text(v) => {
                out.push_str("\"t\",");
                write_str(out, v);
            }
            ArgValue::Flag(v) => {
                out.push_str("\"b\",");
                out.push_str(if *v { "true" } else { "false" });
            }
        }
        out.push(']');
    }
    out.push(']');
}

/// Encodes a [`SpanEvent`] as the canonical 6-tuple used by both the
/// snapshot document and the live stream format.
pub(crate) fn write_span_tuple(out: &mut String, span: &SpanEvent) {
    out.push('[');
    write_str(out, span.category);
    out.push(',');
    write_str(out, &span.name);
    out.push(',');
    write_u64(out, u64::from(span.track));
    out.push(',');
    write_u64_str(out, span.start_us);
    out.push(',');
    write_u64_str(out, span.dur_us);
    out.push(',');
    write_args(out, &span.args);
    out.push(']');
}

/// Encodes an [`InstantEvent`] as the canonical 5-tuple used by both
/// the snapshot document and the live stream format.
pub(crate) fn write_instant_tuple(out: &mut String, event: &InstantEvent) {
    out.push('[');
    write_str(out, event.category);
    out.push(',');
    write_str(out, &event.name);
    out.push(',');
    write_u64(out, u64::from(event.track));
    out.push(',');
    write_u64_str(out, event.at_us);
    out.push(',');
    write_args(out, &event.args);
    out.push(']');
}

/// Encodes a [`Snapshot`] as a canonical `fair-telemetry-snapshot/1`
/// document.
///
/// The encoding is deterministic (events in recording order, maps in
/// key order) and exact: [`snapshot_from_json`] inverts it bit-for-bit.
pub fn snapshot_json(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(256 + snap.spans.len() * 96);
    out.push_str("{\"schema\":\"");
    out.push_str(SNAPSHOT_SCHEMA);
    out.push_str("\",\"spans\":[");
    for (i, span) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_span_tuple(&mut out, span);
    }
    out.push_str("],\"instants\":[");
    for (i, event) in snap.instants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_instant_tuple(&mut out, event);
    }
    out.push_str("],\"counters\":[");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        write_str(&mut out, name);
        out.push(',');
        write_f64_str(&mut out, *value);
        out.push(']');
    }
    out.push_str("],\"tracks\":[");
    for (i, (track, name)) in snap.track_names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{track},");
        write_str(&mut out, name);
        out.push(']');
    }
    out.push_str("]}");
    out
}

pub(crate) fn need_str(v: &Value, what: &str) -> Result<String, String> {
    v.as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("snapshot: {what} is not a string"))
}

pub(crate) fn need_u64_str(v: &Value, what: &str) -> Result<u64, String> {
    v.as_str()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| format!("snapshot: {what} is not a u64 string"))
}

pub(crate) fn need_f64_str(v: &Value, what: &str) -> Result<f64, String> {
    v.as_str()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("snapshot: {what} is not an f64 string"))
}

pub(crate) fn need_u32(v: &Value, what: &str) -> Result<u32, String> {
    v.as_u64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| format!("snapshot: {what} is not a u32"))
}

pub(crate) fn need_arr<'a>(v: &'a Value, what: &str) -> Result<&'a [Value], String> {
    v.as_arr()
        .ok_or_else(|| format!("snapshot: {what} is not an array"))
}

pub(crate) fn parse_args(v: &Value) -> Result<Vec<(&'static str, ArgValue)>, String> {
    let mut args = Vec::new();
    for item in need_arr(v, "args")? {
        let triple = need_arr(item, "arg entry")?;
        if triple.len() != 3 {
            return Err("snapshot: arg entry is not a [name, tag, value] triple".into());
        }
        let name = intern(&need_str(&triple[0], "arg name")?);
        let tag = need_str(&triple[1], "arg tag")?;
        let value = match tag.as_str() {
            "u" => ArgValue::UInt(need_u64_str(&triple[2], "u arg")?),
            "i" => ArgValue::Int(
                triple[2]
                    .as_str()
                    .and_then(|s| s.parse::<i64>().ok())
                    .ok_or("snapshot: i arg is not an i64 string")?,
            ),
            "f" => ArgValue::Float(need_f64_str(&triple[2], "f arg")?),
            "t" => ArgValue::Text(need_str(&triple[2], "t arg")?),
            "b" => match &triple[2] {
                Value::Bool(b) => ArgValue::Flag(*b),
                _ => return Err("snapshot: b arg is not a bool".into()),
            },
            other => return Err(format!("snapshot: unknown arg tag {other:?}")),
        };
        args.push((name, value));
    }
    Ok(args)
}

/// Decodes the canonical span 6-tuple written by [`write_span_tuple`].
pub(crate) fn parse_span_tuple(item: &Value) -> Result<SpanEvent, String> {
    let fields = need_arr(item, "span entry")?;
    if fields.len() != 6 {
        return Err("snapshot: span entry is not a 6-tuple".into());
    }
    Ok(SpanEvent {
        category: intern(&need_str(&fields[0], "span category")?),
        name: need_str(&fields[1], "span name")?,
        track: need_u32(&fields[2], "span track")?,
        start_us: need_u64_str(&fields[3], "span start_us")?,
        dur_us: need_u64_str(&fields[4], "span dur_us")?,
        args: parse_args(&fields[5])?,
    })
}

/// Decodes the canonical instant 5-tuple written by
/// [`write_instant_tuple`].
pub(crate) fn parse_instant_tuple(item: &Value) -> Result<InstantEvent, String> {
    let fields = need_arr(item, "instant entry")?;
    if fields.len() != 5 {
        return Err("snapshot: instant entry is not a 5-tuple".into());
    }
    Ok(InstantEvent {
        category: intern(&need_str(&fields[0], "instant category")?),
        name: need_str(&fields[1], "instant name")?,
        track: need_u32(&fields[2], "instant track")?,
        at_us: need_u64_str(&fields[3], "instant at_us")?,
        args: parse_args(&fields[4])?,
    })
}

/// Decodes a `fair-telemetry-snapshot/1` document.
///
/// The parse is strict — wrong schema id, missing sections, or
/// mistyped fields are errors, so a corrupted cache payload surfaces as
/// a decode failure (= cache miss) rather than a silently-wrong replay.
pub fn snapshot_from_json(doc: &str) -> Result<Snapshot, String> {
    let root = parse(doc)?;
    match root.get("schema").and_then(Value::as_str) {
        Some(SNAPSHOT_SCHEMA) => {}
        Some(other) => return Err(format!("snapshot: unsupported schema {other:?}")),
        None => return Err("snapshot: missing schema id".into()),
    }
    let mut snap = Snapshot::default();
    for item in need_arr(root.get("spans").ok_or("snapshot: missing spans")?, "spans")? {
        snap.spans.push(parse_span_tuple(item)?);
    }
    for item in need_arr(
        root.get("instants").ok_or("snapshot: missing instants")?,
        "instants",
    )? {
        snap.instants.push(parse_instant_tuple(item)?);
    }
    for item in need_arr(
        root.get("counters").ok_or("snapshot: missing counters")?,
        "counters",
    )? {
        let pair = need_arr(item, "counter entry")?;
        if pair.len() != 2 {
            return Err("snapshot: counter entry is not a [name, value] pair".into());
        }
        snap.counters.insert(
            need_str(&pair[0], "counter name")?,
            need_f64_str(&pair[1], "counter value")?,
        );
    }
    for item in need_arr(
        root.get("tracks").ok_or("snapshot: missing tracks")?,
        "tracks",
    )? {
        let pair = need_arr(item, "track entry")?;
        if pair.len() != 2 {
            return Err("snapshot: track entry is not a [track, name] pair".into());
        }
        snap.track_names.insert(
            need_u32(&pair[0], "track id")?,
            need_str(&pair[1], "track name")?,
        );
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.spans.push(SpanEvent {
            category: "attempt",
            name: "g1/n-0".into(),
            track: 3,
            start_us: u64::MAX,
            dur_us: (1u64 << 54) + 1, // not representable as f64
            args: vec![
                ("attempt", ArgValue::UInt(u64::MAX - 1)),
                ("delta", ArgValue::Int(-42)),
                ("frac", ArgValue::Float(0.1 + 0.2)),
                ("cause", ArgValue::Text("node \"7\" down\n".into())),
                ("rework", ArgValue::Flag(true)),
            ],
        });
        snap.instants.push(InstantEvent {
            category: "fault",
            name: "crash".into(),
            track: 0,
            at_us: 9_007_199_254_740_993, // 2^53 + 1
            args: vec![],
        });
        snap.counters.insert("sim.span_us".into(), 1e300);
        snap.counters.insert("tiny".into(), f64::MIN_POSITIVE);
        snap.counters.insert("neg".into(), -0.125);
        snap.track_names.insert(0, "campaign".into());
        snap.track_names.insert(7, "shard1/alloc".into());
        snap
    }

    #[test]
    fn f64_strings_match_display_forms() {
        for v in [
            0.0,
            -0.0,
            7.0,
            -7.0,
            1e15,
            0.3,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let mut out = String::new();
            write_f64_str(&mut out, v);
            assert_eq!(out, format!("\"{v}\""), "for {v:?}");
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let snap = sample();
        let doc = snapshot_json(&snap);
        let back = snapshot_from_json(&doc).expect("decodes");
        assert_eq!(back, snap);
        // re-encode is byte-identical (canonical form)
        assert_eq!(snapshot_json(&back), doc);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let doc = snapshot_json(&Snapshot::default());
        let back = snapshot_from_json(&doc).expect("decodes");
        assert_eq!(back, Snapshot::default());
    }

    #[test]
    fn u64_precision_survives_where_f64_would_not() {
        let snap = sample();
        let back = snapshot_from_json(&snapshot_json(&snap)).expect("decodes");
        assert_eq!(back.spans[0].start_us, u64::MAX);
        assert_eq!(back.spans[0].dur_us, (1u64 << 54) + 1);
        assert_eq!(back.instants[0].at_us, 9_007_199_254_740_993);
        // sanity: that instant would be lossy through an f64
        let through_f64 = 9_007_199_254_740_993u64 as f64 as u64;
        assert_ne!(through_f64, 9_007_199_254_740_993);
    }

    #[test]
    fn rejects_malformed_documents() {
        let good = snapshot_json(&sample());
        for bad in [
            "",
            "{}",
            "{\"schema\":\"other/1\",\"spans\":[],\"instants\":[],\"counters\":[],\"tracks\":[]}",
            good.replacen("\"u\"", "\"x\"", 1).as_str(),
            good.replacen("attempt", "", 1).trim_start_matches('{'),
        ] {
            assert!(
                snapshot_from_json(bad).is_err(),
                "{bad:?} should not decode"
            );
        }
    }

    #[test]
    fn interned_statics_compare_equal() {
        let snap = sample();
        let back = snapshot_from_json(&snapshot_json(&snap)).expect("decodes");
        assert_eq!(back.spans[0].category, "attempt");
        assert_eq!(back.spans[0].args[0].0, "attempt");
        // interning the same string twice yields the same pointer
        let a = intern("memo-intern-test");
        let b = intern("memo-intern-test");
        assert!(std::ptr::eq(a, b));
    }
}
