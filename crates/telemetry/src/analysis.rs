//! Trace analysis: span-DAG reconstruction, critical path, folded
//! stacks, utilization series, and straggler detection.
//!
//! Everything here operates on a [`TraceModel`] — a parsed, owned view
//! of a `fair-telemetry-trace/1` export (or, in-process, of a live
//! [`Snapshot`]). The model keeps the conventions the savanna drivers
//! and `telemetry::merge` established:
//!
//! * tracks are Chrome-trace lanes; merged shard tracks carry a
//!   `shard{N}/` name prefix,
//! * `"allocation"` spans chain end-to-end on a shard's allocation
//!   lane; gaps between them are queue wait (plus retry backoff),
//! * `"attempt"` spans nest inside allocations on per-run lanes, with
//!   an `outcome` argument
//!   (`completed` / `walltime-cut` / `node-crash` / `run-error` / `hang`),
//! * `"fs-stall"` spans on the machine lane mark filesystem
//!   degradation windows,
//! * `"util"` instants carry sampled resource time series (value in the
//!   `value` argument).
//!
//! All derived artifacts are deterministic: stable orderings only, no
//! clocks, no hashing — byte-identical across runs and thread counts.

use std::collections::BTreeMap;

use crate::event::ArgValue;
use crate::jsonin::{self, Value};
use crate::sink::Snapshot;

/// A span in a parsed trace (categories are owned strings here, unlike
/// [`crate::SpanEvent`], because they come from JSON).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Chrome-trace `cat`.
    pub category: String,
    /// Chrome-trace `name` (run id, `alloc-N`, ...).
    pub name: String,
    /// Timeline lane.
    pub track: u32,
    /// Start, microseconds on the producer's timebase.
    pub start_us: u64,
    /// Length in microseconds.
    pub dur_us: u64,
    /// Arguments, scalar-rendered as text.
    pub args: BTreeMap<String, String>,
}

impl TraceSpan {
    /// Exclusive end of the span.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }
}

/// A point event in a parsed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceInstant {
    /// Chrome-trace `cat`.
    pub category: String,
    /// Event name.
    pub name: String,
    /// Timeline lane.
    pub track: u32,
    /// Instant, microseconds on the producer's timebase.
    pub at_us: u64,
    /// Arguments, scalar-rendered as text.
    pub args: BTreeMap<String, String>,
}

/// An owned, analysis-ready view of one trace document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceModel {
    /// Spans in recording order.
    pub spans: Vec<TraceSpan>,
    /// Instants in recording order.
    pub instants: Vec<TraceInstant>,
    /// Track number → lane name.
    pub track_names: BTreeMap<u32, String>,
}

fn arg_text(value: &ArgValue) -> String {
    match value {
        ArgValue::UInt(v) => v.to_string(),
        ArgValue::Int(v) => v.to_string(),
        ArgValue::Float(v) => {
            let mut out = String::new();
            crate::json::write_f64(&mut out, *v);
            out
        }
        ArgValue::Text(v) => v.clone(),
        ArgValue::Flag(v) => (if *v { "true" } else { "false" }).to_string(),
    }
}

fn json_arg_text(value: &Value) -> String {
    match value {
        Value::Null => "null".to_string(),
        Value::Bool(b) => (if *b { "true" } else { "false" }).to_string(),
        Value::Num(n) => {
            let mut out = String::new();
            crate::json::write_f64(&mut out, *n);
            out
        }
        Value::Str(s) => s.clone(),
        // composite args do not occur in our writer's output
        Value::Arr(_) | Value::Obj(_) => String::new(),
    }
}

impl TraceModel {
    /// Builds the model from a live snapshot (no serialization round
    /// trip). Produces exactly what parsing the snapshot's
    /// [`crate::chrome_trace_json`] export would.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        TraceModel {
            spans: snapshot
                .spans
                .iter()
                .map(|s| TraceSpan {
                    category: s.category.to_string(),
                    name: s.name.clone(),
                    track: s.track,
                    start_us: s.start_us,
                    dur_us: s.dur_us,
                    args: s
                        .args
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), arg_text(v)))
                        .collect(),
                })
                .collect(),
            instants: snapshot
                .instants
                .iter()
                .map(|i| TraceInstant {
                    category: i.category.to_string(),
                    name: i.name.clone(),
                    track: i.track,
                    at_us: i.at_us,
                    args: i
                        .args
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), arg_text(v)))
                        .collect(),
                })
                .collect(),
            track_names: snapshot.track_names.clone(),
        }
    }

    /// Parses a `fair-telemetry-trace/1` document.
    pub fn parse(doc: &str) -> Result<Self, String> {
        let root = jsonin::parse(doc)?;
        let schema = root
            .get("otherData")
            .and_then(|o| o.get("schema"))
            .and_then(Value::as_str)
            .unwrap_or("");
        if schema != "fair-telemetry-trace/1" {
            return Err(format!(
                "not a fair-telemetry-trace/1 document (schema: {schema:?})"
            ));
        }
        let events = root
            .get("traceEvents")
            .and_then(Value::as_arr)
            .ok_or("missing traceEvents array")?;
        let mut model = TraceModel::default();
        for event in events {
            let ph = event.get("ph").and_then(Value::as_str).unwrap_or("");
            let track = event
                .get("tid")
                .and_then(Value::as_u64)
                .and_then(|t| u32::try_from(t).ok())
                .ok_or("event without integer tid")?;
            let args: BTreeMap<String, String> = event
                .get("args")
                .and_then(Value::as_obj)
                .map(|members| {
                    members
                        .iter()
                        .map(|(k, v)| (k.clone(), json_arg_text(v)))
                        .collect()
                })
                .unwrap_or_default();
            let name = event
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            let category = event
                .get("cat")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            match ph {
                "M" if name == "thread_name" => {
                    if let Some(lane) = args.get("name") {
                        model.track_names.insert(track, lane.clone());
                    }
                }
                "X" => model.spans.push(TraceSpan {
                    category,
                    name,
                    track,
                    start_us: event.get("ts").and_then(Value::as_u64).unwrap_or(0),
                    dur_us: event.get("dur").and_then(Value::as_u64).unwrap_or(0),
                    args,
                }),
                "i" => model.instants.push(TraceInstant {
                    category,
                    name,
                    track,
                    at_us: event.get("ts").and_then(Value::as_u64).unwrap_or(0),
                    args,
                }),
                _ => {}
            }
        }
        Ok(model)
    }

    /// The lane name of a track (`trackN` for unnamed tracks).
    pub fn track_name(&self, track: u32) -> String {
        self.track_names
            .get(&track)
            .cloned()
            .unwrap_or_else(|| format!("track{track}"))
    }

    /// The shard key of a track: `shardN` for merged `shardN/...`
    /// lanes, `""` for unprefixed (serial) traces.
    pub fn shard_of(&self, track: u32) -> String {
        shard_key(&self.track_name(track))
    }
}

/// Extracts the `shardN` prefix of a merged lane name, or `""`.
pub fn shard_key(track_name: &str) -> String {
    if let Some(rest) = track_name.strip_prefix("shard") {
        if let Some(pos) = rest.find('/') {
            let digits = &rest[..pos];
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                return format!("shard{digits}");
            }
        }
    }
    String::new()
}

/// Critical-path phase attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Waiting for the batch system (queue wait and retry backoff both
    /// surface as gaps between allocations).
    QueueWait,
    /// Productive compute inside an allocation.
    Compute,
    /// A failed attempt that forced a retry (crash / error / hang).
    Retry,
    /// Filesystem-stall overlap inside an allocation.
    FsStall,
    /// Checkpoint writing (spans with category `"checkpoint"`).
    Checkpoint,
    /// Allocation time not covered by any attempt.
    AllocIdle,
}

impl Phase {
    /// Stable snake_case key, used in reports and phase maps.
    pub fn key(self) -> &'static str {
        match self {
            Phase::QueueWait => "queue_wait",
            Phase::Compute => "compute",
            Phase::Retry => "retry",
            Phase::FsStall => "fs_stall",
            Phase::Checkpoint => "checkpoint",
            Phase::AllocIdle => "alloc_idle",
        }
    }

    /// All phases, in report order.
    pub const ALL: [Phase; 6] = [
        Phase::QueueWait,
        Phase::Compute,
        Phase::Retry,
        Phase::FsStall,
        Phase::Checkpoint,
        Phase::AllocIdle,
    ];
}

/// One segment of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// Attributed phase.
    pub phase: Phase,
    /// Human-readable label (allocation / run the segment covers).
    pub label: String,
    /// Segment start, microseconds.
    pub start_us: u64,
    /// Segment length, microseconds.
    pub dur_us: u64,
}

/// The campaign's critical path: the shard chain that determines the
/// makespan, segmented and attributed by phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CriticalPath {
    /// Shard key of the critical chain (`""` for serial traces).
    pub shard: String,
    /// Campaign makespan: end of the critical chain, microseconds from
    /// the campaign origin (t = 0).
    pub total_us: u64,
    /// The chain, in time order.
    pub segments: Vec<PathSegment>,
    /// Microseconds attributed to each phase (fs-stall overlap is
    /// carved out of the enclosing attempt's phase here, while the
    /// segment list keeps attempts whole).
    pub phase_us: BTreeMap<&'static str, u64>,
}

fn outcome_phase(outcome: Option<&String>) -> Phase {
    match outcome.map(String::as_str) {
        Some("node-crash" | "run-error" | "hang") => Phase::Retry,
        // completed, walltime-cut (partial progress preserved), unknown
        _ => Phase::Compute,
    }
}

/// Overlap of `[start, end)` with a set of spans, in microseconds.
fn overlap_us(start: u64, end: u64, windows: &[&TraceSpan]) -> u64 {
    windows
        .iter()
        .map(|w| w.end_us().min(end).saturating_sub(w.start_us.max(start)))
        .sum()
}

/// Computes the campaign critical path of a trace.
///
/// Each shard's allocation lane is chained from the campaign origin
/// (t = 0): gaps before/between allocations are queue wait, allocation
/// interiors are attributed to the busiest run lane's attempts
/// (compute vs. retry by outcome, fs-stall overlap carved out,
/// checkpoint spans attributed as checkpoints, uncovered allocation
/// time as `alloc_idle`). The critical path is the shard chain that
/// ends last; ties resolve to the lexicographically smallest shard key,
/// so the result is deterministic.
pub fn critical_path(model: &TraceModel) -> CriticalPath {
    // partition span indices by shard
    let mut shards: BTreeMap<String, Vec<&TraceSpan>> = BTreeMap::new();
    for span in &model.spans {
        shards
            .entry(model.shard_of(span.track))
            .or_default()
            .push(span);
    }
    if shards.is_empty() {
        return CriticalPath::default();
    }

    let mut best: Option<CriticalPath> = None;
    for (shard, spans) in &shards {
        let chain = shard_chain(shard, spans);
        let better = match &best {
            None => true,
            Some(b) => chain.total_us > b.total_us,
        };
        if better {
            best = Some(chain);
        }
    }
    best.unwrap_or_default()
}

fn shard_chain(shard: &str, spans: &[&TraceSpan]) -> CriticalPath {
    let mut allocations: Vec<&TraceSpan> = spans
        .iter()
        .copied()
        .filter(|s| s.category == "allocation")
        .collect();
    allocations.sort_by_key(|s| (s.start_us, s.track));
    let attempts: Vec<&TraceSpan> = spans
        .iter()
        .copied()
        .filter(|s| s.category == "attempt")
        .collect();
    let checkpoints: Vec<&TraceSpan> = spans
        .iter()
        .copied()
        .filter(|s| s.category == "checkpoint")
        .collect();
    let stalls: Vec<&TraceSpan> = spans
        .iter()
        .copied()
        .filter(|s| s.category == "fs-stall")
        .collect();

    let mut path = CriticalPath {
        shard: shard.to_string(),
        ..CriticalPath::default()
    };
    for phase in Phase::ALL {
        path.phase_us.insert(phase.key(), 0);
    }
    let push = |path: &mut CriticalPath, phase: Phase, label: &str, start: u64, dur: u64| {
        if dur == 0 {
            return;
        }
        path.segments.push(PathSegment {
            phase,
            label: label.to_string(),
            start_us: start,
            dur_us: dur,
        });
        *path.phase_us.entry(phase.key()).or_insert(0) += dur;
    };

    if allocations.is_empty() {
        // degenerate trace: no allocation lane — chain the spans we have
        let mut all: Vec<&TraceSpan> = spans.to_vec();
        all.sort_by_key(|s| (s.start_us, s.track));
        let mut cursor = 0u64;
        for span in all {
            if span.start_us > cursor {
                push(
                    &mut path,
                    Phase::QueueWait,
                    "wait",
                    cursor,
                    span.start_us - cursor,
                );
                cursor = span.start_us;
            }
            if span.end_us() > cursor {
                let phase = match span.category.as_str() {
                    "fs-stall" => Phase::FsStall,
                    "checkpoint" => Phase::Checkpoint,
                    "attempt" => outcome_phase(span.args.get("outcome")),
                    _ => Phase::Compute,
                };
                push(&mut path, phase, &span.name, cursor, span.end_us() - cursor);
                cursor = span.end_us();
            }
        }
        path.total_us = cursor;
        return path;
    }

    let mut cursor = 0u64;
    for alloc in &allocations {
        if alloc.start_us > cursor {
            push(
                &mut path,
                Phase::QueueWait,
                &format!("wait:{}", alloc.name),
                cursor,
                alloc.start_us - cursor,
            );
            cursor = alloc.start_us;
        }
        let a_end = alloc.end_us();
        if a_end <= cursor {
            continue;
        }

        // attempts inside this allocation, grouped by run lane; the
        // busiest lane (most covered time, lowest track on ties) is the
        // chain through the allocation
        let mut lanes: BTreeMap<u32, Vec<&TraceSpan>> = BTreeMap::new();
        for attempt in &attempts {
            if attempt.start_us >= alloc.start_us && attempt.start_us < a_end {
                lanes.entry(attempt.track).or_default().push(attempt);
            }
        }
        let busiest = lanes
            .iter()
            .max_by_key(|(track, lane)| {
                (
                    lane.iter().map(|s| s.dur_us).sum::<u64>(),
                    u32::MAX - **track,
                )
            })
            .map(|(_, lane)| lane.clone())
            .unwrap_or_default();

        if busiest.is_empty() {
            // plain (non-resilient) trace: the allocation is the compute
            let dur = a_end - cursor;
            let stall = overlap_us(cursor, a_end, &stalls).min(dur);
            push(&mut path, Phase::Compute, &alloc.name, cursor, dur);
            *path.phase_us.entry(Phase::Compute.key()).or_insert(0) -= stall;
            *path.phase_us.entry(Phase::FsStall.key()).or_insert(0) += stall;
        } else {
            for attempt in busiest {
                let a_start = attempt.start_us.max(cursor);
                if a_start > cursor {
                    push(
                        &mut path,
                        Phase::AllocIdle,
                        &alloc.name,
                        cursor,
                        a_start - cursor,
                    );
                    cursor = a_start;
                }
                let seg_end = attempt.end_us().clamp(cursor, a_end);
                if seg_end > cursor {
                    let phase = outcome_phase(attempt.args.get("outcome"));
                    let dur = seg_end - cursor;
                    let stall = overlap_us(cursor, seg_end, &stalls).min(dur);
                    let ckpt = overlap_us(cursor, seg_end, &checkpoints).min(dur - stall);
                    push(&mut path, phase, &attempt.name, cursor, dur);
                    *path.phase_us.entry(phase.key()).or_insert(0) -= stall + ckpt;
                    *path.phase_us.entry(Phase::FsStall.key()).or_insert(0) += stall;
                    *path.phase_us.entry(Phase::Checkpoint.key()).or_insert(0) += ckpt;
                    cursor = seg_end;
                }
            }
            if a_end > cursor {
                push(
                    &mut path,
                    Phase::AllocIdle,
                    &alloc.name,
                    cursor,
                    a_end - cursor,
                );
            }
        }
        cursor = cursor.max(a_end);
    }
    path.total_us = cursor;
    path
}

/// Renders the trace as folded stacks for flamegraph tooling: one line
/// per distinct `campaign;lane;category;name` stack with the summed
/// span microseconds, sorted lexicographically. Frame text sanitizes
/// `;` and spaces, which folded-stack parsers treat as structure.
pub fn folded_stacks(model: &TraceModel) -> String {
    fn frame(s: &str) -> String {
        s.chars()
            .map(|c| match c {
                ';' => ':',
                ' ' => '_',
                c => c,
            })
            .collect()
    }
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for span in &model.spans {
        let stack = format!(
            "campaign;{};{};{}",
            frame(&model.track_name(span.track)),
            frame(&span.category),
            frame(&span.name)
        );
        *stacks.entry(stack).or_insert(0) += span.dur_us;
    }
    let mut out = String::new();
    for (stack, us) in &stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// Extracts a sampled utilization series (`"util"` instants named
/// `metric`) per lane: lane name → `(at_us, value)` points in
/// recording (= time) order.
pub fn utilization_points(model: &TraceModel, metric: &str) -> BTreeMap<String, Vec<(u64, f64)>> {
    let mut series: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
    for inst in &model.instants {
        if inst.category != "util" || inst.name != metric {
            continue;
        }
        let Some(value) = inst.args.get("value").and_then(|v| v.parse::<f64>().ok()) else {
            continue;
        };
        series
            .entry(model.track_name(inst.track))
            .or_default()
            .push((inst.at_us, value));
    }
    series
}

/// Renders a sampled utilization metric as CSV
/// (`lane,time_s,value`, one row per sample).
pub fn utilization_csv(model: &TraceModel, metric: &str) -> String {
    let mut out = String::from("lane,time_s,value\n");
    for (lane, points) in utilization_points(model, metric) {
        for (at_us, value) in points {
            out.push_str(&lane);
            out.push(',');
            crate::json::write_f64(&mut out, at_us as f64 / 1e6);
            out.push(',');
            crate::json::write_f64(&mut out, value);
            out.push('\n');
        }
    }
    out
}

/// The distinct metric names carried by `"util"` instants, sorted.
pub fn utilization_metrics(model: &TraceModel) -> Vec<String> {
    let mut names: Vec<String> = model
        .instants
        .iter()
        .filter(|i| i.category == "util")
        .map(|i| i.name.clone())
        .collect();
    names.sort();
    names.dedup();
    names
}

/// A span flagged as anomalously long relative to its shard.
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// Shard key (`""` for serial traces).
    pub shard: String,
    /// Span name (run id).
    pub name: String,
    /// Lane the span was recorded on.
    pub track: u32,
    /// The span's duration.
    pub dur_us: u64,
    /// The shard's median duration for the category.
    pub median_us: u64,
}

/// Flags spans of `category` whose duration exceeds `factor` times the
/// shard median (lower median of the sorted durations — deterministic,
/// no interpolation). Results follow recording order within shards.
pub fn stragglers(model: &TraceModel, category: &str, factor: f64) -> Vec<Straggler> {
    let mut by_shard: BTreeMap<String, Vec<&TraceSpan>> = BTreeMap::new();
    for span in &model.spans {
        if span.category == category {
            by_shard
                .entry(model.shard_of(span.track))
                .or_default()
                .push(span);
        }
    }
    let mut out = Vec::new();
    for (shard, spans) in &by_shard {
        let mut durs: Vec<u64> = spans.iter().map(|s| s.dur_us).collect();
        durs.sort_unstable();
        let median = durs[(durs.len() - 1) / 2];
        for span in spans {
            if span.dur_us as f64 > factor * median as f64 {
                out.push(Straggler {
                    shard: shard.clone(),
                    name: span.name.clone(),
                    track: span.track,
                    dur_us: span.dur_us,
                    median_us: median,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanEvent;
    use crate::{chrome_trace_json, Telemetry};

    fn span(
        category: &'static str,
        name: &str,
        track: u32,
        start_us: u64,
        dur_us: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> SpanEvent {
        SpanEvent {
            category,
            name: name.to_string(),
            track,
            start_us,
            dur_us,
            args,
        }
    }

    fn sample_snapshot() -> Snapshot {
        let (tel, rec) = Telemetry::recording();
        tel.name_track(0, "allocations");
        tel.name_track(1, "machine");
        tel.name_track(2, "g/a-0");
        // queue wait 0..10, alloc 10..100 with a failed then a good attempt
        tel.span(span(
            "allocation",
            "alloc-0",
            0,
            10,
            90,
            vec![("completed", 1u64.into())],
        ));
        tel.span(span(
            "attempt",
            "g/a-0",
            2,
            10,
            30,
            vec![("outcome", "run-error".into())],
        ));
        tel.span(span(
            "attempt",
            "g/a-0",
            2,
            50,
            50,
            vec![("outcome", "completed".into())],
        ));
        tel.span(span("fs-stall", "stall", 1, 60, 10, vec![]));
        rec.snapshot()
    }

    #[test]
    fn parse_round_trips_from_snapshot() {
        let snap = sample_snapshot();
        let parsed = TraceModel::parse(&chrome_trace_json(&snap)).expect("parses");
        assert_eq!(parsed, TraceModel::from_snapshot(&snap));
    }

    #[test]
    fn parse_rejects_other_schemas() {
        assert!(TraceModel::parse("{\"traceEvents\": []}").is_err());
    }

    #[test]
    fn critical_path_attributes_phases() {
        let model = TraceModel::from_snapshot(&sample_snapshot());
        let path = critical_path(&model);
        assert_eq!(path.shard, "");
        assert_eq!(path.total_us, 100);
        assert_eq!(path.phase_us["queue_wait"], 10);
        assert_eq!(path.phase_us["retry"], 30);
        // alloc idle 40..50, completed attempt 50..100 minus 10us stall
        assert_eq!(path.phase_us["alloc_idle"], 10);
        assert_eq!(path.phase_us["fs_stall"], 10);
        assert_eq!(path.phase_us["compute"], 40);
        let sum: u64 = path.phase_us.values().sum();
        assert_eq!(sum, path.total_us, "phases partition the path");
    }

    #[test]
    fn folded_stacks_are_sorted_and_aggregated() {
        let model = TraceModel::from_snapshot(&sample_snapshot());
        let folded = folded_stacks(&model);
        let lines: Vec<&str> = folded.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        assert!(folded.contains("campaign;g/a-0;attempt;g/a-0 80\n"));
    }

    #[test]
    fn shard_keys_parse_merged_prefixes() {
        assert_eq!(shard_key("shard3/allocations"), "shard3");
        assert_eq!(shard_key("allocations"), "");
        assert_eq!(shard_key("shardX/allocations"), "");
        assert_eq!(shard_key("shard/allocations"), "");
    }

    #[test]
    fn stragglers_use_the_shard_median() {
        let (tel, rec) = Telemetry::recording();
        tel.name_track(0, "runs");
        for (i, dur) in [100u64, 110, 105, 400].iter().enumerate() {
            tel.span(span("attempt", &format!("r-{i}"), 0, 0, *dur, vec![]));
        }
        let model = TraceModel::from_snapshot(&rec.snapshot());
        let flagged = stragglers(&model, "attempt", 2.0);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].name, "r-3");
        assert_eq!(flagged[0].median_us, 105);
    }

    #[test]
    fn utilization_series_extracts_sampled_points() {
        let (tel, rec) = Telemetry::recording();
        tel.name_track(0, "machine");
        for (t, v) in [(0u64, 0.0f64), (10, 6.0), (25, 2.0)] {
            tel.instant(crate::InstantEvent {
                category: "util",
                name: "busy_nodes".to_string(),
                track: 0,
                at_us: t,
                args: vec![("value", v.into())],
            });
        }
        let model = TraceModel::from_snapshot(&rec.snapshot());
        let series = utilization_points(&model, "busy_nodes");
        assert_eq!(series["machine"], vec![(0, 0.0), (10, 6.0), (25, 2.0)]);
        assert_eq!(utilization_metrics(&model), vec!["busy_nodes".to_string()]);
        let csv = utilization_csv(&model, "busy_nodes");
        assert!(csv.starts_with("lane,time_s,value\n"));
        assert!(csv.contains("machine,0.00001,6\n"));
    }
}
