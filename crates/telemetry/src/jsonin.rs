//! Minimal JSON parsing for the analysis layer (and other offline
//! tooling).
//!
//! The exports this crate writes (`fair-telemetry-trace/1`,
//! `fair-telemetry-metrics/1`) are consumed back by
//! [`crate::analysis`] and [`crate::report`]. Parsing is done here with
//! a ~150-line recursive-descent reader instead of an external crate so
//! the telemetry crate stays dependency-free and `fair-report` runs in
//! stub-only offline builds. The module is public because other
//! dependency-free tools in the workspace (notably the `fair-lint` CLI)
//! reuse it to read their own JSON inputs under the same constraint.
//!
//! This is a general JSON reader (any well-formed document parses), but
//! it is tuned for our own writer's output: object key order is
//! preserved, numbers become `f64`, and `\uXXXX` escapes decode basic
//! code points (unpaired surrogates map to U+FFFD).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64` (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(doc: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: doc.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn hex4(&mut self) -> Result<u16, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let code =
            u16::from_str_radix(text, 16).map_err(|_| format!("invalid \\u escape '{text}'"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".to_string());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                0x10000
                                    + (u32::from(hi - 0xD800) << 10)
                                    + u32::from(lo.wrapping_sub(0xDC00) & 0x3FF)
                            } else {
                                u32::from(hi)
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // copy a full UTF-8 scalar
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = text.chars().next().unwrap_or('\u{FFFD}');
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_writer_output() {
        let doc = "{\n  \"a\": [1, 2.5, -3],\n  \"b\": {\"c\": \"x\\\"y\\u0041\", \"d\": null, \"e\": true}\n}\n";
        let v = parse(doc).expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x\"yA")
        );
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nulll", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn numbers_and_u64_coercion() {
        let v = parse("[5, 5.5, -1]").expect("parses");
        let items = v.as_arr().expect("array");
        assert_eq!(items[0].as_u64(), Some(5));
        assert_eq!(items[1].as_u64(), None);
        assert_eq!(items[2].as_u64(), None);
    }
}
