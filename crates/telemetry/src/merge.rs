//! Deterministic merge of per-shard telemetry snapshots.
//!
//! The sharded campaign drivers (`savanna::shard`) give every shard its
//! own [`Recorder`](crate::Recorder) so recording needs no cross-thread
//! coordination, then fold the shard snapshots into one campaign-level
//! snapshot here. The merge is a *pure function of the parts and their
//! track offsets*: spans and instants are concatenated in part order
//! with each event's track shifted by the part's offset, counters are
//! summed, and track names land at their offset position. Nothing
//! depends on which thread produced a part or when it finished, so the
//! merged snapshot — and every export derived from it — is byte-identical
//! however the shards were scheduled.

use crate::sink::Snapshot;
use crate::Telemetry;

/// Merges per-shard snapshots into one snapshot.
///
/// Each part is `(track_offset, snapshot)`: every span, instant, and
/// track name in the snapshot is shifted up by `track_offset` so shard
/// lanes occupy disjoint track ranges in the merged timeline. The caller
/// computes offsets from its shard plan (they are a function of the plan
/// alone, not of execution), which is what keeps the merge deterministic.
///
/// Counters are summed across parts; parts are processed in slice order,
/// but because addition over per-shard disjoint event streams commutes
/// (and counters are totals), slice order only dictates the event
/// ordering within the merged vectors — and callers pass parts in plan
/// order, so that ordering is itself deterministic.
pub fn merge_snapshots(parts: &[(u32, &Snapshot)]) -> Snapshot {
    let mut merged = Snapshot::default();
    for (offset, part) in parts {
        for span in &part.spans {
            let mut span = span.clone();
            span.track += offset;
            merged.spans.push(span);
        }
        for instant in &part.instants {
            let mut instant = instant.clone();
            instant.track += offset;
            merged.instants.push(instant);
        }
        for (name, delta) in &part.counters {
            *merged.counters.entry(name.clone()).or_insert(0.0) += delta;
        }
        for (track, name) in &part.track_names {
            merged.track_names.insert(track + offset, name.clone());
        }
    }
    merged
}

/// A half-open telemetry track range `[offset, offset + width)` one
/// merge part claims in the merged timeline.
///
/// [`merge_snapshots`] itself never checks lanes — it shifts blindly —
/// so a planner that *computes* offsets (e.g. `savanna`'s sharded
/// drivers, or a schedule linter) uses [`lane_collisions`] to prove the
/// claimed lanes are disjoint before any event is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackLane {
    /// First track of the lane (the part's merge offset).
    pub offset: u32,
    /// Number of tracks the part records on.
    pub width: u32,
}

impl TrackLane {
    /// A lane starting at `offset`, `width` tracks wide.
    pub fn new(offset: u32, width: u32) -> Self {
        Self { offset, width }
    }

    /// True when the two half-open track ranges share any track.
    /// Zero-width lanes claim nothing and never overlap.
    pub fn overlaps(&self, other: &TrackLane) -> bool {
        let end = u64::from(self.offset) + u64::from(self.width);
        let other_end = u64::from(other.offset) + u64::from(other.width);
        self.width > 0
            && other.width > 0
            && u64::from(self.offset) < other_end
            && u64::from(other.offset) < end
    }
}

/// All pairs of lanes (by slice index, `i < j`) whose track ranges
/// overlap. An empty result proves the lanes partition the merged
/// timeline and [`merge_snapshots`] cannot land two parts' events on the
/// same track.
pub fn lane_collisions(lanes: &[TrackLane]) -> Vec<(usize, usize)> {
    let mut collisions = Vec::new();
    for i in 0..lanes.len() {
        for j in i + 1..lanes.len() {
            if lanes[i].overlaps(&lanes[j]) {
                collisions.push((i, j));
            }
        }
    }
    collisions
}

/// Replays a snapshot into a live [`Telemetry`] handle: track names
/// first, then spans, instants, and counters, all in snapshot order.
///
/// The sharded drivers use this to forward the merged campaign snapshot
/// into whatever sink the caller supplied, so a caller-provided recorder
/// sees exactly the same stream whether the campaign ran serially or
/// sharded. A disabled handle makes this a no-op.
pub fn replay(snapshot: &Snapshot, tel: &Telemetry) {
    if !tel.is_enabled() {
        return;
    }
    for (track, name) in &snapshot.track_names {
        tel.name_track(*track, name);
    }
    for span in &snapshot.spans {
        tel.span(span.clone());
    }
    for instant in &snapshot.instants {
        tel.instant(instant.clone());
    }
    for (name, total) in &snapshot.counters {
        tel.count(name, *total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{InstantEvent, SpanEvent};
    use crate::{chrome_trace_json, metrics_json};

    fn span(track: u32, start: u64) -> SpanEvent {
        SpanEvent {
            category: "attempt",
            name: format!("s{track}@{start}"),
            track,
            start_us: start,
            dur_us: 10,
            args: vec![],
        }
    }

    fn part(track_name: &str, starts: &[u64], counter: f64) -> Snapshot {
        let mut snap = Snapshot::default();
        snap.track_names.insert(0, track_name.to_string());
        for &s in starts {
            snap.spans.push(span(0, s));
        }
        snap.instants.push(InstantEvent {
            category: "mark",
            name: track_name.to_string(),
            track: 0,
            at_us: 1,
            args: vec![],
        });
        snap.counters.insert("runs".to_string(), counter);
        snap
    }

    #[test]
    fn merge_shifts_tracks_and_sums_counters() {
        let a = part("shard0", &[0, 20], 2.0);
        let b = part("shard1", &[5], 1.0);
        let merged = merge_snapshots(&[(0, &a), (1, &b)]);
        assert_eq!(merged.spans.len(), 3);
        assert_eq!(merged.spans[2].track, 1);
        assert_eq!(merged.instants[1].track, 1);
        assert_eq!(merged.counters["runs"], 3.0);
        assert_eq!(merged.track_names[&0], "shard0");
        assert_eq!(merged.track_names[&1], "shard1");
    }

    #[test]
    fn merge_is_deterministic_in_part_order() {
        let a = part("shard0", &[0], 1.0);
        let b = part("shard1", &[5], 1.0);
        let m1 = merge_snapshots(&[(0, &a), (1, &b)]);
        let m2 = merge_snapshots(&[(0, &a), (1, &b)]);
        assert_eq!(chrome_trace_json(&m1), chrome_trace_json(&m2));
        assert_eq!(metrics_json(&m1), metrics_json(&m2));
    }

    #[test]
    fn lane_collisions_finds_exactly_the_overlapping_pairs() {
        // [0,3) [3,5) [5,6): disjoint
        let disjoint = [
            TrackLane::new(0, 3),
            TrackLane::new(3, 2),
            TrackLane::new(5, 1),
        ];
        assert!(lane_collisions(&disjoint).is_empty());
        // [0,3) [2,4) overlap at track 2; [4,5) is clear of both
        let colliding = [
            TrackLane::new(0, 3),
            TrackLane::new(2, 2),
            TrackLane::new(4, 1),
        ];
        assert_eq!(lane_collisions(&colliding), vec![(0, 1)]);
        // zero-width lanes claim nothing
        let empty = [TrackLane::new(1, 0), TrackLane::new(1, 0)];
        assert!(lane_collisions(&empty).is_empty());
    }

    #[test]
    fn replay_reproduces_the_snapshot() {
        let a = part("shard0", &[0, 20], 2.0);
        let b = part("shard1", &[5], 1.5);
        let merged = merge_snapshots(&[(0, &a), (2, &b)]);
        let (tel, rec) = Telemetry::recording();
        replay(&merged, &tel);
        assert_eq!(rec.snapshot(), merged);
        // replaying into a disabled handle is a no-op
        replay(&merged, &Telemetry::disabled());
    }
}
