//! Shared binary framing primitives: the IEEE CRC-32 used by every
//! append-only artifact in the workspace.
//!
//! Both durable log formats — `cheetah::journal`'s `FAIRJNL1` StatusBoard
//! journal and [`crate::stream`]'s `fair-telemetry-stream/1` live
//! telemetry stream — frame records as `len:u32le crc:u32le payload` and
//! checksum payloads with the same polynomial. The table lives here once
//! so the two formats can never drift apart; `cheetah` re-exports
//! [`crc32`] for backwards compatibility.

/// Slice-by-8 lookup tables: `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[t]` advances a CRC over a byte followed by `t` zero
/// bytes, letting the hot loop fold eight input bytes per iteration
/// with no loop-carried dependency between table lookups.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC32_TABLES: [[u32; 256]; 8] = crc32_tables();

/// IEEE CRC-32 of `bytes` (the polynomial used by gzip/PNG/zlib).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frame header size shared by the framed formats: `len:u32le` +
/// `crc:u32le`.
pub const FRAME_HEADER: u64 = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // the classic IEEE check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // incremental property sanity: crc depends on every byte
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    /// The slice-by-8 fold must agree with the byte-at-a-time reference
    /// on every input length around the 8-byte chunk boundary.
    #[test]
    fn crc32_slice_by_8_matches_bytewise_reference() {
        fn reference(bytes: &[u8]) -> u32 {
            let mut c = 0xFFFF_FFFFu32;
            for &b in bytes {
                c = CRC32_TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
            }
            c ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(31) ^ 0xA5) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }
}
