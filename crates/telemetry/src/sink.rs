//! Where events go: the [`Sink`] trait and the in-memory [`Recorder`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::{InstantEvent, SpanEvent};

/// Receives telemetry events.
///
/// Implementations must be cheap and non-blocking from the producer's
/// perspective; the built-in [`Recorder`] buffers everything in memory
/// behind a mutex. The *disabled* path never constructs events at all
/// (see [`crate::Telemetry`]), so a sink is only ever called when
/// recording is on.
pub trait Sink: Send + Sync {
    /// Records a completed span.
    fn record_span(&self, span: SpanEvent);
    /// Records a point event.
    fn record_instant(&self, event: InstantEvent);
    /// Adds `delta` to the named counter (created at zero on first use).
    fn add_to_counter(&self, name: &str, delta: f64);
    /// Names a timeline track (Chrome-trace thread lane).
    fn name_track(&self, track: u32, name: &str);
}

/// Everything a [`Recorder`] has accumulated, in recording order.
///
/// Snapshots are plain data: exports ([`crate::chrome_trace_json`],
/// [`crate::metrics_json`]) and assertions in tests both work from here.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Completed spans, in recording order.
    pub spans: Vec<SpanEvent>,
    /// Point events, in recording order.
    pub instants: Vec<InstantEvent>,
    /// Counter totals, keyed by name (sorted).
    pub counters: BTreeMap<String, f64>,
    /// Track names, keyed by track id (sorted).
    pub track_names: BTreeMap<u32, String>,
}

/// The in-memory sink: buffers events for later export.
///
/// Clone the [`Arc`] freely; all methods take `&self`.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Mutex<Snapshot>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Copies out everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .spans
            .len()
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> f64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .counters
            .get(name)
            .copied()
            .unwrap_or(0.0)
    }
}

impl Sink for Recorder {
    fn record_span(&self, span: SpanEvent) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .spans
            .push(span);
    }

    fn record_instant(&self, event: InstantEvent) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .instants
            .push(event);
    }

    fn add_to_counter(&self, name: &str, delta: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        *inner.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    fn name_track(&self, track: u32, name: &str) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .track_names
            .insert(track, name.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates() {
        let rec = Recorder::new();
        rec.add_to_counter("x", 1.0);
        rec.add_to_counter("x", 2.0);
        rec.record_span(SpanEvent {
            category: "c",
            name: "s".into(),
            track: 0,
            start_us: 1,
            dur_us: 2,
            args: vec![],
        });
        rec.name_track(0, "lane");
        assert_eq!(rec.counter("x"), 3.0);
        assert_eq!(rec.counter("missing"), 0.0);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.track_names[&0], "lane");
    }
}
