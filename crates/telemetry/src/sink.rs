//! Where events go: the [`Sink`] trait and the in-memory [`Recorder`].
//!
//! The recorder is *log-structured*: every sink call appends one
//! [`StreamRecord`] to an ordered in-memory log, and a [`Snapshot`] is
//! a fold over that log. That single decision buys two properties the
//! rest of the workspace leans on:
//!
//! * **Live streaming is free for producers.** `stream::StreamSink`
//!   exports the recorder's log to disk from a writer thread, by
//!   cursor — it never intercepts producer calls, so a campaign with a
//!   stream attached records at exactly the cost of one without.
//! * **Replay equality is structural.** Replaying a completed stream
//!   and snapshotting the recorder run the *same fold* over the *same
//!   record sequence* ([`fold_event`]), so the differential tests
//!   compare two applications of one function, not two
//!   implementations.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::{InstantEvent, SpanEvent};
use crate::stream::StreamRecord;

/// Receives telemetry events.
///
/// Implementations must be cheap and non-blocking from the producer's
/// perspective; the built-in [`Recorder`] buffers everything in memory
/// behind a mutex. The *disabled* path never constructs events at all
/// (see [`crate::Telemetry`]), so a sink is only ever called when
/// recording is on.
///
/// # Poison tolerance
///
/// Sinks are shared across producer threads, and a producer may panic
/// at any point — including while a sink method is on its stack. The
/// contract is that a panicking producer **must not wedge or corrupt
/// the sink for the surviving threads**:
///
/// * a sink method must never panic itself (so it can never poison its
///   own locks mid-mutation);
/// * internal mutexes must be recovered with
///   [`PoisonError::into_inner`] rather than unwrapped, because a
///   producer can panic *between* sink calls while holding no sink
///   state at all yet still poison a lock it shares via `catch_unwind`
///   boundaries elsewhere;
/// * every mutation must be applied atomically from the lock's point
///   of view: build the full event/frame first, then publish it under
///   the lock in one step, so a recovered-from-poison state never
///   contains a half-written record.
///
/// [`Recorder`] follows this contract, and the stream tap
/// (`stream::StreamSink`) recovers the recorder's lock the same way on
/// its writer thread; the regression tests in this module pin it.
///
/// [`PoisonError::into_inner`]: std::sync::PoisonError::into_inner
pub trait Sink: Send + Sync {
    /// Records a completed span.
    fn record_span(&self, span: SpanEvent);
    /// Records a point event.
    fn record_instant(&self, event: InstantEvent);
    /// Adds `delta` to the named counter (created at zero on first use).
    fn add_to_counter(&self, name: &str, delta: f64);
    /// Names a timeline track (Chrome-trace thread lane).
    fn name_track(&self, track: u32, name: &str);
}

/// Everything a [`Recorder`] has accumulated, in recording order.
///
/// Snapshots are plain data: exports ([`crate::chrome_trace_json`],
/// [`crate::metrics_json`]) and assertions in tests both work from here.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Completed spans, in recording order.
    pub spans: Vec<SpanEvent>,
    /// Point events, in recording order.
    pub instants: Vec<InstantEvent>,
    /// Counter totals, keyed by name (sorted).
    pub counters: BTreeMap<String, f64>,
    /// Track names, keyed by track id (sorted).
    pub track_names: BTreeMap<u32, String>,
}

/// Applies one event record to a snapshot, exactly as the recorder
/// does: spans and instants append in order, counter deltas sum in
/// arrival order (bit-exact `f64` accumulation), track namings upsert.
/// Stream control records (`Meta`/`Complete`) are ignored — they carry
/// no snapshot state. Both [`Recorder::snapshot`] and
/// `stream::replay_stream` are folds of this function, which is what
/// makes "replay a complete stream" and "snapshot the recorder"
/// provably the same computation.
pub(crate) fn fold_event(snap: &mut Snapshot, record: &StreamRecord) {
    match record {
        StreamRecord::Meta { .. } | StreamRecord::Complete => {}
        StreamRecord::Span(span) => snap.spans.push(span.clone()),
        StreamRecord::Instant(event) => snap.instants.push(event.clone()),
        StreamRecord::Count { name, delta } => {
            *snap.counters.entry(name.clone()).or_insert(0.0) += delta;
        }
        StreamRecord::Track { track, name } => {
            snap.track_names.insert(*track, name.clone());
        }
    }
}

/// The in-memory sink: an ordered event log, folded into a
/// [`Snapshot`] on demand.
///
/// Clone the [`Arc`] freely; all methods take `&self`. The log only
/// ever holds event records ([`StreamRecord::Span`] / `Instant` /
/// `Count` / `Track`) — stream control records are written by the
/// stream tap itself, never recorded.
#[derive(Debug, Default)]
pub struct Recorder {
    log: Mutex<Vec<StreamRecord>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Folds everything recorded so far into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
        let mut snap = Snapshot::default();
        for record in log.iter() {
            fold_event(&mut snap, record);
        }
        snap
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|r| matches!(r, StreamRecord::Span(_)))
            .count()
    }

    /// Current value of a counter (0 if never touched). Deltas are
    /// summed in arrival order, so this agrees bit-for-bit with
    /// [`snapshot`](Self::snapshot).
    pub fn counter(&self, name: &str) -> f64 {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter_map(|r| match r {
                StreamRecord::Count { name: n, delta } if n == name => Some(*delta),
                _ => None,
            })
            .fold(0.0, |acc, d| acc + d)
    }

    /// Runs `f` over the log entries at index `from` onward (possibly
    /// empty) and returns the log length it observed. This is the
    /// stream tap's drain primitive: the writer thread encodes new
    /// records under the recorder's lock — briefly stalling producers
    /// rather than cloning — and advances its cursor to the returned
    /// length.
    pub(crate) fn with_log_from<R>(
        &self,
        from: usize,
        f: impl FnOnce(&[StreamRecord]) -> R,
    ) -> (usize, R) {
        let log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
        let upto = log.len();
        let out = f(&log[from.min(upto)..]);
        (upto, out)
    }
}

impl Sink for Recorder {
    fn record_span(&self, span: SpanEvent) {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(StreamRecord::Span(span));
    }

    fn record_instant(&self, event: InstantEvent) {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(StreamRecord::Instant(event));
    }

    fn add_to_counter(&self, name: &str, delta: f64) {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(StreamRecord::Count {
                name: name.to_string(),
                delta,
            });
    }

    fn name_track(&self, track: u32, name: &str) {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(StreamRecord::Track {
                track,
                name: name.to_string(),
            });
    }
}

/// Broadcasts every event to each of a set of sinks, in order.
///
/// The generic fan-out combinator behind [`crate::Telemetry::tee`]:
/// every sink observes the identical call sequence, so two recorders
/// fed through one fanout end with equal snapshots. (Live streaming
/// does *not* go through a fanout — the stream taps the recorder's log
/// directly, see `stream::StreamSink` — so a tee is only ever paid for
/// when a caller explicitly asks for a second sink.)
pub struct Fanout {
    sinks: Vec<Arc<dyn Sink>>,
}

impl Fanout {
    /// A fanout over `sinks`; events are delivered in the given order.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Arc<Self> {
        Arc::new(Self { sinks })
    }
}

impl Sink for Fanout {
    fn record_span(&self, span: SpanEvent) {
        if let Some((last, rest)) = self.sinks.split_last() {
            for sink in rest {
                sink.record_span(span.clone());
            }
            last.record_span(span);
        }
    }

    fn record_instant(&self, event: InstantEvent) {
        if let Some((last, rest)) = self.sinks.split_last() {
            for sink in rest {
                sink.record_instant(event.clone());
            }
            last.record_instant(event);
        }
    }

    fn add_to_counter(&self, name: &str, delta: f64) {
        for sink in &self.sinks {
            sink.add_to_counter(name, delta);
        }
    }

    fn name_track(&self, track: u32, name: &str) {
        for sink in &self.sinks {
            sink.name_track(track, name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates() {
        let rec = Recorder::new();
        rec.add_to_counter("x", 1.0);
        rec.add_to_counter("x", 2.0);
        rec.record_span(SpanEvent {
            category: "c",
            name: "s".into(),
            track: 0,
            start_us: 1,
            dur_us: 2,
            args: vec![],
        });
        rec.name_track(0, "lane");
        assert_eq!(rec.counter("x"), 3.0);
        assert_eq!(rec.counter("missing"), 0.0);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.track_names[&0], "lane");
    }

    fn span(name: &str, start_us: u64) -> SpanEvent {
        SpanEvent {
            category: "attempt",
            name: name.into(),
            track: 0,
            start_us,
            dur_us: 10,
            args: vec![],
        }
    }

    /// Poison-tolerance regression (the `Sink` contract): a producer
    /// thread that panics while holding the recorder's lock must not
    /// wedge recording for surviving threads, and the snapshot must not
    /// contain a half-written record.
    #[test]
    fn panicking_producer_does_not_wedge_recorder() {
        let rec = Recorder::new();
        rec.record_span(span("before", 1));
        rec.add_to_counter("ok", 1.0);

        let poisoner = Arc::clone(&rec);
        let handle = std::thread::spawn(move || {
            // Take the lock directly and panic while holding it — the
            // worst case a panicking producer can inflict on the sink.
            let _guard = poisoner.log.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("producer dies mid-recording");
        });
        assert!(handle.join().is_err(), "poisoner thread must panic");

        // Every sink method still works after the poison.
        rec.record_span(span("after", 2));
        rec.record_instant(InstantEvent {
            category: "fault",
            name: "survivor".into(),
            track: 0,
            at_us: 3,
            args: vec![],
        });
        rec.add_to_counter("ok", 2.0);
        rec.name_track(1, "post-poison");

        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].name, "before");
        assert_eq!(snap.spans[1].name, "after");
        assert_eq!(snap.instants.len(), 1);
        assert_eq!(snap.counters["ok"], 3.0);
        assert_eq!(snap.track_names[&1], "post-poison");
        assert_eq!(rec.counter("ok"), 3.0);
        assert_eq!(rec.span_count(), 2);
    }

    #[test]
    fn fanout_delivers_to_every_sink_in_order() {
        let a = Recorder::new();
        let b = Recorder::new();
        let fan = Fanout::new(vec![
            Arc::clone(&a) as Arc<dyn Sink>,
            Arc::clone(&b) as Arc<dyn Sink>,
        ]);
        fan.record_span(span("s", 5));
        fan.add_to_counter("n", 2.5);
        fan.name_track(0, "lane");
        fan.record_instant(InstantEvent {
            category: "util",
            name: "queue_depth".into(),
            track: 0,
            at_us: 6,
            args: vec![],
        });
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.snapshot().spans.len(), 1);
        assert_eq!(a.counter("n"), 2.5);
    }
}
