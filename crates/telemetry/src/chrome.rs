//! Chrome-trace JSON export.
//!
//! Produces the [Trace Event Format] object form: `{"traceEvents": [...]}`
//! with complete (`"X"`), instant (`"i"`), and thread-name metadata
//! (`"M"`) events. Load the file in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see the campaign timeline.
//!
//! The output is deterministic: events appear in recording order, track
//! names in track order, and every number/string uses the canonical
//! rendering of [`crate::json`]. Two runs of a seeded simulation export
//! byte-identical traces.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write;

use crate::event::ArgValue;
use crate::sink::Snapshot;

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::json::write_str(out, key);
        out.push(':');
        value.write_json(out);
    }
    out.push('}');
}

/// Renders a snapshot as a Chrome-trace JSON document (trailing newline
/// included).
pub fn chrome_trace_json(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n");
    out.push_str("  \"otherData\": {\"schema\": \"fair-telemetry-trace/1\"},\n");
    out.push_str("  \"traceEvents\": [\n");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str("    ");
    };
    for (&track, name) in &snapshot.track_names {
        sep(&mut out, &mut first);
        out.push_str("{\"ph\":\"M\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{track}");
        out.push_str(",\"name\":\"thread_name\",\"args\":{\"name\":");
        crate::json::write_str(&mut out, name);
        out.push_str("}}");
    }
    for span in &snapshot.spans {
        sep(&mut out, &mut first);
        out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{}", span.track);
        out.push_str(",\"ts\":");
        let _ = write!(out, "{}", span.start_us);
        out.push_str(",\"dur\":");
        let _ = write!(out, "{}", span.dur_us);
        out.push_str(",\"cat\":");
        crate::json::write_str(&mut out, span.category);
        out.push_str(",\"name\":");
        crate::json::write_str(&mut out, &span.name);
        out.push_str(",\"args\":");
        write_args(&mut out, &span.args);
        out.push('}');
    }
    for inst in &snapshot.instants {
        sep(&mut out, &mut first);
        out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{}", inst.track);
        out.push_str(",\"ts\":");
        let _ = write!(out, "{}", inst.at_us);
        out.push_str(",\"cat\":");
        crate::json::write_str(&mut out, inst.category);
        out.push_str(",\"name\":");
        crate::json::write_str(&mut out, &inst.name);
        out.push_str(",\"args\":");
        write_args(&mut out, &inst.args);
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanEvent;

    #[test]
    fn trace_shape_and_determinism() {
        let mut snap = Snapshot::default();
        snap.track_names.insert(0, "campaign".to_string());
        snap.spans.push(SpanEvent {
            category: "attempt",
            name: "g/i-0".into(),
            track: 0,
            start_us: 10,
            dur_us: 90,
            args: vec![("attempt", 1u64.into())],
        });
        let a = chrome_trace_json(&snap);
        let b = chrome_trace_json(&snap);
        assert_eq!(a, b);
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"M\""));
        assert!(a.contains("\"tid\":0,\"ts\":10,\"dur\":90"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let out = chrome_trace_json(&Snapshot::default());
        assert!(out.contains("\"traceEvents\": [\n\n  ]"));
    }
}
