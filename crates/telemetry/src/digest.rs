//! Deterministic, mergeable quantile digests.
//!
//! A [`Digest`] is a log-bucketed histogram over `u64` observations
//! (microsecond durations, counter deltas). Bucket boundaries are
//! **fixed** — pure bit arithmetic on the observed value, no adaptive
//! centroids — so merging shard digests is exact bucket-count addition:
//! associative, commutative, and byte-stable regardless of merge order
//! or sharding. That is the property the sharded campaign drivers need
//! for thread-count-invariant exports.
//!
//! ## Bucket layout
//!
//! With `SUB_BITS = 4` (16 sub-buckets per octave):
//!
//! * `0` has its own bucket,
//! * values `1..32` map to exact singleton buckets (index = value),
//! * values `>= 32` map octave-by-octave: each power-of-two range
//!   `[2^m, 2^{m+1})` splits into 16 equal-width buckets keyed by the
//!   four bits below the leading one.
//!
//! Bucket width over bucket lower bound is at most `1/16`, so any
//! in-bucket representative is within **6.25 % relative error** of the
//! true value — the documented rank-error guarantee: for any quantile,
//! the reported value `est` and the exact order statistic `v` satisfy
//! `|est - v| <= v / 16` (exact for `v < 32`).
//!
//! Exports use the `fair-telemetry-digest/1` schema via [`digest_json`].

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::sink::Snapshot;

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 4;
/// Documented relative-error bound: `2^-SUB_BITS`.
pub const RELATIVE_ERROR: f64 = 1.0 / (1 << SUB_BITS) as f64;

/// Fixed bucket index of a non-zero value (monotone in `v`).
fn bucket_index(v: u64) -> u32 {
    debug_assert!(v > 0);
    let msb = 63 - v.leading_zeros(); // floor(log2 v)
    if msb <= SUB_BITS {
        // exact region: v < 2^(SUB_BITS+1) = 32
        v as u32
    } else {
        let sub = ((v >> (msb - SUB_BITS)) as u32) & ((1 << SUB_BITS) - 1);
        ((msb - SUB_BITS) << SUB_BITS) + (1 << SUB_BITS) + sub
    }
}

/// Inclusive `[lower, upper]` value range of a non-zero bucket.
fn bucket_bounds(index: u32) -> (u64, u64) {
    if index < (2 << SUB_BITS) {
        return (u64::from(index), u64::from(index));
    }
    let e = (index - (1 << SUB_BITS)) >> SUB_BITS; // msb - SUB_BITS
    let sub = u64::from((index - (1 << SUB_BITS)) & ((1 << SUB_BITS) - 1));
    let width = 1u64 << e;
    let lower = (1u64 << (e + SUB_BITS)) + sub * width;
    (lower, lower + width - 1)
}

/// Deterministic representative of a bucket: the integer midpoint.
fn bucket_midpoint(index: u32) -> u64 {
    let (lo, hi) = bucket_bounds(index);
    lo + (hi - lo) / 2
}

/// A mergeable log-bucketed histogram over `u64` observations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Digest {
    /// Observations equal to zero (zero has no log bucket).
    zero: u64,
    /// Sparse non-zero buckets: fixed index → count.
    buckets: BTreeMap<u32, u64>,
    /// Total observation count.
    count: u64,
    /// Exact sum of all observations.
    sum: u128,
    /// Smallest observation (meaningless when `count == 0`).
    min: u64,
    /// Largest observation (meaningless when `count == 0`).
    max: u64,
}

impl Digest {
    /// An empty digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += u128::from(v);
        if v == 0 {
            self.zero += 1;
        } else {
            *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        }
    }

    /// Folds another digest into this one. Exact: merging is bucket-count
    /// addition, so the result is independent of merge order and of how
    /// observations were partitioned across shards.
    pub fn merge_from(&mut self, other: &Digest) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.zero += other.zero;
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The value at quantile `q` (clamped to `[0, 1]`), within the
    /// documented [`RELATIVE_ERROR`] of the exact order statistic.
    ///
    /// Deterministic: the rank is `ceil(q * count)` (at least 1) and the
    /// representative is the integer midpoint of the selected bucket,
    /// clamped to the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zero;
        if seen >= rank {
            return Some(0);
        }
        for (&index, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_midpoint(index).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Sparse `(bucket index, count)` pairs, zero bucket first as index 0.
    fn sparse_buckets(&self) -> Vec<(u32, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len() + 1);
        if self.zero > 0 {
            out.push((0, self.zero));
        }
        out.extend(self.buckets.iter().map(|(&i, &n)| (i, n)));
        out
    }
}

/// A keyed family of digests: one per span category and counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DigestSet {
    digests: BTreeMap<String, Digest>,
}

impl DigestSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `v` under `key`, creating the digest on first use.
    pub fn observe(&mut self, key: &str, v: u64) {
        self.digests.entry(key.to_string()).or_default().observe(v);
    }

    /// Folds another set into this one (exact, order-independent).
    pub fn merge_from(&mut self, other: &DigestSet) {
        for (key, digest) in &other.digests {
            self.digests
                .entry(key.clone())
                .or_default()
                .merge_from(digest);
        }
    }

    /// The digest recorded under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Digest> {
        self.digests.get(key)
    }

    /// Iterates digests in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Digest)> {
        self.digests.iter().map(|(k, d)| (k.as_str(), d))
    }

    /// True when no digest has been recorded.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }

    /// Builds digests from shard snapshots: every span duration is one
    /// observation under `span_us.<category>`, and every per-part counter
    /// total is one *delta* observation under `counter.<name>`.
    ///
    /// Feeding each shard snapshot separately and merging yields exactly
    /// the same set as feeding all parts here — the byte-identity the
    /// sharded drivers rely on.
    pub fn from_parts(parts: &[&Snapshot]) -> Self {
        let mut set = DigestSet::new();
        for part in parts {
            for span in &part.spans {
                set.observe(&format!("span_us.{}", span.category), span.dur_us);
            }
            for (name, &value) in &part.counters {
                // counters in this workspace are counts and microsecond
                // totals; quantize to the nearest non-negative integer
                let v = if value >= 0.0 {
                    value.round() as u64
                } else {
                    0
                };
                set.observe(&format!("counter.{name}"), v);
            }
        }
        set
    }

    /// Builds digests from one (possibly pre-merged) snapshot.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        Self::from_parts(&[snapshot])
    }
}

/// Renders a digest set as a `fair-telemetry-digest/1` JSON document
/// (trailing newline included). Keys sorted, buckets sparse; every
/// number is an integer except the schema-level error bound, so the
/// bytes are identical across serializers and rand implementations.
pub fn digest_json(set: &DigestSet) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"fair-telemetry-digest/1\",\n");
    out.push_str("  \"relative_error\": ");
    crate::json::write_f64(&mut out, RELATIVE_ERROR);
    out.push_str(",\n  \"digests\": {");
    let mut first = true;
    for (key, digest) in set.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        crate::json::write_str(&mut out, key);
        let _ = write!(
            out,
            ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}",
            digest.count(),
            digest.sum(),
            digest.min().unwrap_or(0),
            digest.max().unwrap_or(0)
        );
        for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            let _ = write!(out, ", \"{label}\": {}", digest.quantile(q).unwrap_or(0));
        }
        out.push_str(", \"buckets\": [");
        for (i, (index, n)) in digest.sparse_buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{index},{n}]");
        }
        out.push_str("]}");
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_exact_below_32() {
        for v in 1..32u64 {
            assert_eq!(bucket_index(v), v as u32);
            assert_eq!(bucket_bounds(v as u32), (v, v));
        }
        let mut last = 0;
        for v in [
            1u64,
            2,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotone at {v}");
            last = i;
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside bucket [{lo}, {hi}]");
            // width/lower bounds the relative error
            assert!(hi - lo < lo.div_euclid(1 << SUB_BITS).max(1));
        }
    }

    #[test]
    fn quantiles_within_documented_error() {
        let mut d = Digest::new();
        let values: Vec<u64> = (0..500).map(|i| i * i * 7 + 3).collect();
        for &v in &values {
            d.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = d.quantile(q).expect("non-empty");
            assert!(
                est.abs_diff(exact) as f64 <= exact as f64 * RELATIVE_ERROR,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_matches_single_feed() {
        let mut a = Digest::new();
        let mut b = Digest::new();
        let mut whole = Digest::new();
        for v in 0..100u64 {
            whole.observe(v * 31);
            if v % 2 == 0 {
                a.observe(v * 31);
            } else {
                b.observe(v * 31);
            }
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn digest_json_is_deterministic_and_carries_schema() {
        let mut set = DigestSet::new();
        set.observe("span_us.attempt", 120);
        set.observe("span_us.attempt", 0);
        set.observe("counter.allocations", 4);
        let a = digest_json(&set);
        assert_eq!(a, digest_json(&set));
        assert!(a.contains("\"schema\": \"fair-telemetry-digest/1\""));
        assert!(a.contains("\"span_us.attempt\""));
        assert!(a.contains("[0,1]"), "zero bucket exported: {a}");
        assert!(a.ends_with("}\n"));
        // empty set still renders a valid document
        assert!(digest_json(&DigestSet::new()).contains("\"digests\": {}"));
    }
}
