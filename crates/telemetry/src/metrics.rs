//! Flat metrics JSON export.
//!
//! The second stable format: counters plus per-category span aggregates,
//! all keys sorted, suitable for committing as `BENCH_*.json` baselines
//! and diffing across PRs. Where the Chrome trace answers "what happened
//! when", this answers "how much, in total".

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::sink::Snapshot;

/// Aggregate of every span in one category.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanAggregate {
    /// Number of spans recorded.
    pub count: u64,
    /// Sum of span durations, microseconds.
    pub total_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

/// Folds a snapshot's spans into per-category aggregates (sorted by
/// category).
pub fn span_aggregates(snapshot: &Snapshot) -> BTreeMap<&'static str, SpanAggregate> {
    let mut out: BTreeMap<&'static str, SpanAggregate> = BTreeMap::new();
    for span in &snapshot.spans {
        let agg = out.entry(span.category).or_default();
        agg.count += 1;
        agg.total_us = agg.total_us.saturating_add(span.dur_us);
        agg.max_us = agg.max_us.max(span.dur_us);
    }
    out
}

/// Renders a snapshot as the flat metrics JSON document (2-space indent,
/// sorted keys, trailing newline).
///
/// ```json
/// {
///   "schema": "fair-telemetry-metrics/1",
///   "counters": { "name": value, ... },
///   "spans": { "category": {"count": N, "total_us": T, "max_us": M}, ... }
/// }
/// ```
pub fn metrics_json(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"fair-telemetry-metrics/1\",\n");
    out.push_str("  \"counters\": {");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        crate::json::write_str(&mut out, name);
        out.push_str(": ");
        crate::json::write_f64(&mut out, *value);
    }
    if !snapshot.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"spans\": {");
    let aggregates = span_aggregates(snapshot);
    for (i, (category, agg)) in aggregates.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        crate::json::write_str(&mut out, category);
        let _ = write!(
            out,
            ": {{\"count\": {}, \"total_us\": {}, \"max_us\": {}}}",
            agg.count, agg.total_us, agg.max_us
        );
    }
    if !aggregates.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// Extracts the top-level key paths of a metrics document produced by
/// [`metrics_json`] — `counters.<name>` and `spans.<category>` — without
/// a JSON parser, for baseline key-diffing in CI.
///
/// Only understands the exact format this module writes (one key per
/// indented line), which is all a baseline diff needs.
pub fn metrics_keys(doc: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut section: Option<&str> = None;
    for line in doc.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("\"counters\"") {
            section = Some("counters");
            continue;
        }
        if trimmed.starts_with("\"spans\"") {
            section = Some("spans");
            continue;
        }
        if trimmed.starts_with('}') {
            continue;
        }
        if let Some(section) = section {
            if let Some(rest) = trimmed.strip_prefix('"') {
                if let Some(end) = rest.find('"') {
                    keys.push(format!("{section}.{}", &rest[..end]));
                }
            }
        }
    }
    keys.sort();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanEvent;

    fn snap() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("attempts".into(), 3.0);
        snap.counters.insert("rework_lost_node_hours".into(), 0.25);
        for dur in [5u64, 10] {
            snap.spans.push(SpanEvent {
                category: "attempt",
                name: "r".into(),
                track: 0,
                start_us: 0,
                dur_us: dur,
                args: vec![],
            });
        }
        snap
    }

    #[test]
    fn metrics_document_is_canonical() {
        let doc = metrics_json(&snap());
        assert_eq!(doc, metrics_json(&snap()));
        assert!(doc.contains("\"attempts\": 3"));
        assert!(doc.contains("\"rework_lost_node_hours\": 0.25"));
        assert!(doc.contains("\"attempt\": {\"count\": 2, \"total_us\": 15, \"max_us\": 10}"));
    }

    #[test]
    fn keys_extraction_matches_document() {
        let doc = metrics_json(&snap());
        assert_eq!(
            metrics_keys(&doc),
            vec![
                "counters.attempts".to_string(),
                "counters.rework_lost_node_hours".to_string(),
                "spans.attempt".to_string(),
            ]
        );
    }

    #[test]
    fn empty_snapshot_renders() {
        let doc = metrics_json(&Snapshot::default());
        assert!(doc.contains("\"counters\": {}"));
        assert!(doc.contains("\"spans\": {}"));
        assert!(metrics_keys(&doc).is_empty());
    }
}
