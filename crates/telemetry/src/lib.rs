//! **telemetry**: structured execution telemetry for campaign runs.
//!
//! The paper's reusability argument rests on being able to *compare*
//! campaign executions (checkpoint overhead, staging throughput, iRF-LOOP
//! speedup). Comparison needs machine-readable execution metadata — the
//! provenance tier FAIR-workflow ecosystems treat as a first-class
//! service. This crate is that layer for the workspace: a lightweight
//! spans + counters API with two stable, deterministic export formats:
//!
//! * **Chrome-trace JSON** ([`chrome_trace_json`]) — a per-campaign
//!   timeline loadable in `chrome://tracing` / Perfetto,
//! * **flat metrics JSON** ([`metrics_json`]) — sorted counters and
//!   per-category span aggregates, the format `crates/bench` commits as
//!   `BENCH_*.json` baselines.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** [`Telemetry::disabled`] carries no
//!    sink; every recording method checks one `Option` and returns. The
//!    lazy variants ([`Telemetry::span_with`], [`Telemetry::instant_with`])
//!    don't even build the event.
//! 2. **Deterministic.** Telemetry never reads a clock or generates ids;
//!    producers supply timestamps (virtual time for simulations). A seeded
//!    campaign therefore exports byte-identical documents on every run —
//!    telemetry output is itself replayable and diffable across PRs.
//! 3. **No external dependencies.** JSON is written by [`json`], a
//!    ~60-line canonical writer, so export bytes can never drift with a
//!    serializer upgrade.
//!
//! Producers in this workspace: `savanna`'s simulated drivers (per-attempt
//! spans with failure causes, backoff waits, rework counters), its
//! `LocalExecutor` (wall-clock attempt spans, pool statistics), and
//! `hpcsim`'s engine/fault models (event counts, stall windows, crash
//! instants).

#![deny(missing_docs)]

pub mod analysis;
pub mod chrome;
pub mod digest;
pub mod event;
pub mod framing;
pub(crate) mod json;
pub mod jsonin;
pub mod merge;
pub mod metrics;
pub mod render;
pub mod report;
pub mod sink;
pub mod snapjson;
pub mod stream;

use std::sync::Arc;

pub use analysis::{
    critical_path, folded_stacks, stragglers, utilization_csv, utilization_points, CriticalPath,
    Phase, Straggler, TraceModel,
};
pub use chrome::chrome_trace_json;
pub use digest::{digest_json, Digest, DigestSet};
pub use event::{ArgValue, InstantEvent, SpanEvent};
pub use merge::{lane_collisions, merge_snapshots, replay, TrackLane};
pub use metrics::{metrics_json, metrics_keys, span_aggregates, SpanAggregate};
pub use render::{OutputMode, RenderMode, Theme};
pub use report::{
    compare_metrics, digests_from_model, parse_metrics, render_summary, render_summary_with_theme,
    CompareReport, MetricsDoc, SummaryOptions,
};
pub use sink::{Fanout, Recorder, Sink, Snapshot};
pub use snapjson::{snapshot_from_json, snapshot_json, SNAPSHOT_SCHEMA};
pub use stream::{
    read_stream, replay_stream, scan_stream_bytes, LiveModel, StreamError, StreamOptions,
    StreamReader, StreamRecord, StreamScan, StreamSink, StreamStats, StreamWriter, STREAM_SCHEMA,
};

/// The recording handle threaded through executors.
///
/// Cloning is cheap (an `Option<Arc>`); a disabled handle is a no-op
/// sink. Producers hold a `Telemetry` and call [`Telemetry::span`],
/// [`Telemetry::instant`], and [`Telemetry::count`]; whoever wants the
/// data creates the handle with [`Telemetry::recording`] and exports the
/// recorder's snapshot afterwards.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn Sink>>,
    /// Present when the handle is backed by (or tees through) the
    /// built-in [`Recorder`] — the hook live streaming taps.
    recorder: Option<Arc<Recorder>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl Telemetry {
    /// A no-op handle: nothing is recorded, nothing is allocated.
    pub fn disabled() -> Self {
        Self {
            sink: None,
            recorder: None,
        }
    }

    /// An enabled handle backed by a fresh in-memory [`Recorder`];
    /// returns both so the caller can export after the run.
    pub fn recording() -> (Self, Arc<Recorder>) {
        let recorder = Recorder::new();
        (
            Self {
                sink: Some(recorder.clone()),
                recorder: Some(recorder.clone()),
            },
            recorder,
        )
    }

    /// An enabled handle backed by a caller-provided sink.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        Self {
            sink: Some(sink),
            recorder: None,
        }
    }

    /// The [`Recorder`] behind this handle, when it was created by
    /// [`Telemetry::recording`] (tees preserve it). Live streaming
    /// ([`stream::StreamSink`]) attaches here: the stream exports the
    /// recorder's event log rather than intercepting producer calls, so
    /// recording stays exactly as cheap with a stream attached as
    /// without.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// A handle that records to this handle's sink **and** `other`, in
    /// that order (a [`Fanout`]); both sinks observe the identical call
    /// sequence. On a disabled handle the result records to `other`
    /// alone. The [`Recorder`] association (if any) is preserved.
    pub fn tee(&self, other: Arc<dyn Sink>) -> Telemetry {
        let sink = match &self.sink {
            Some(existing) => Fanout::new(vec![existing.clone(), other]) as Arc<dyn Sink>,
            None => other,
        };
        Telemetry {
            sink: Some(sink),
            recorder: self.recorder.clone(),
        }
    }

    /// True when events are actually recorded. Use to guard expensive
    /// argument construction at call sites (or use the `_with` variants).
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records a completed span.
    pub fn span(&self, span: SpanEvent) {
        if let Some(sink) = &self.sink {
            sink.record_span(span);
        }
    }

    /// Records the span built by `f` — `f` runs only when enabled.
    pub fn span_with(&self, f: impl FnOnce() -> SpanEvent) {
        if let Some(sink) = &self.sink {
            sink.record_span(f());
        }
    }

    /// Records a point event.
    pub fn instant(&self, event: InstantEvent) {
        if let Some(sink) = &self.sink {
            sink.record_instant(event);
        }
    }

    /// Records the point event built by `f` — `f` runs only when enabled.
    pub fn instant_with(&self, f: impl FnOnce() -> InstantEvent) {
        if let Some(sink) = &self.sink {
            sink.record_instant(f());
        }
    }

    /// Adds `delta` to the named counter.
    pub fn count(&self, name: &str, delta: f64) {
        if let Some(sink) = &self.sink {
            sink.add_to_counter(name, delta);
        }
    }

    /// Names a timeline track (Chrome-trace lane).
    pub fn name_track(&self, track: u32, name: &str) {
        if let Some(sink) = &self.sink {
            sink.name_track(track, name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_skips_closures() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.count("x", 1.0);
        tel.span_with(|| unreachable!("closure must not run when disabled"));
        tel.instant_with(|| unreachable!("closure must not run when disabled"));
    }

    #[test]
    fn recording_round_trip() {
        let (tel, rec) = Telemetry::recording();
        assert!(tel.is_enabled());
        tel.name_track(0, "campaign");
        tel.span(SpanEvent {
            category: "attempt",
            name: "g/i-0".into(),
            track: 0,
            start_us: 100,
            dur_us: 50,
            args: vec![("attempt", 1u64.into())],
        });
        tel.instant(InstantEvent {
            category: "fault",
            name: "node-crash".into(),
            track: 0,
            at_us: 120,
            args: vec![("node", 3u64.into())],
        });
        tel.count("failed_attempts", 1.0);
        tel.count("failed_attempts", 1.0);

        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.instants.len(), 1);
        assert_eq!(snap.counters["failed_attempts"], 2.0);

        // both exports are deterministic
        assert_eq!(chrome_trace_json(&snap), chrome_trace_json(&snap));
        assert_eq!(metrics_json(&snap), metrics_json(&snap));
    }

    #[test]
    fn clones_share_the_sink() {
        let (tel, rec) = Telemetry::recording();
        let clone = tel.clone();
        clone.count("shared", 2.0);
        tel.count("shared", 3.0);
        assert_eq!(rec.counter("shared"), 5.0);
    }
}
