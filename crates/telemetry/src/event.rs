//! The event model: spans, instants, and argument values.
//!
//! All timestamps are **microseconds** on whatever timebase the producer
//! uses — simulated campaigns record `hpcsim` virtual time, the local
//! executor records wall-clock time since its own epoch. Telemetry never
//! reads a clock itself; that is what keeps recordings of seeded
//! simulations byte-identical across runs.

use std::fmt;

/// A typed argument value attached to an event.
///
/// Rendering is deterministic: integers print exactly, floats use Rust's
/// shortest-roundtrip `Display`, and text is JSON-escaped. That matters
/// because exported telemetry is diffed byte-for-byte across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    UInt(u64),
    /// Signed integer argument.
    Int(i64),
    /// Floating-point argument.
    Float(f64),
    /// Text argument.
    Text(String),
    /// Boolean argument.
    Flag(bool),
}

impl ArgValue {
    /// Renders the value as a JSON fragment.
    pub(crate) fn write_json(&self, out: &mut String) {
        match self {
            ArgValue::UInt(v) => {
                use fmt::Write;
                let _ = write!(out, "{v}");
            }
            ArgValue::Int(v) => {
                use fmt::Write;
                let _ = write!(out, "{v}");
            }
            ArgValue::Float(v) => crate::json::write_f64(out, *v),
            ArgValue::Text(v) => crate::json::write_str(out, v),
            ArgValue::Flag(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::UInt(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::UInt(u64::from(v))
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Flag(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Text(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Text(v)
    }
}

/// A completed span: something that happened over `[start_us,
/// start_us + dur_us]` on a track.
///
/// Tracks map to Chrome-trace thread lanes; producers use them for
/// whatever axis makes the timeline readable (allocations, nodes, worker
/// threads). Track 0 is the conventional "campaign" lane.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Grouping category (Chrome-trace `cat`), e.g. `"attempt"`,
    /// `"allocation"`, `"stall"`.
    pub category: &'static str,
    /// Span name (Chrome-trace `name`), e.g. a run id.
    pub name: String,
    /// Timeline lane the span renders on.
    pub track: u32,
    /// Span start, microseconds on the producer's timebase.
    pub start_us: u64,
    /// Span length in microseconds.
    pub dur_us: u64,
    /// Structured arguments, in recording order.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A point event: something that happened at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantEvent {
    /// Grouping category, e.g. `"fault"`.
    pub category: &'static str,
    /// Event name, e.g. `"node-crash"`.
    pub name: String,
    /// Timeline lane the marker renders on.
    pub track: u32,
    /// Event instant, microseconds on the producer's timebase.
    pub at_us: u64,
    /// Structured arguments, in recording order.
    pub args: Vec<(&'static str, ArgValue)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_values_render_deterministically() {
        let mut out = String::new();
        ArgValue::from(5u64).write_json(&mut out);
        out.push(',');
        ArgValue::from(-3i64).write_json(&mut out);
        out.push(',');
        ArgValue::from(2.5f64).write_json(&mut out);
        out.push(',');
        ArgValue::from(true).write_json(&mut out);
        out.push(',');
        ArgValue::from("a\"b").write_json(&mut out);
        assert_eq!(out, "5,-3,2.5,true,\"a\\\"b\"");
    }
}
