//! Output modes and themes for CLI rendering.
//!
//! Every CLI in this workspace that writes for humans routes through
//! this module's three-way mode switch:
//!
//! * [`OutputMode::Text`] — plain bytes, no escape sequences, **byte
//!   stable**: the same model renders to the same bytes on every
//!   machine, which is what goldens and CI compare against;
//! * [`OutputMode::Term`] — ANSI-styled output using a named
//!   [`Theme`];
//! * [`OutputMode::Auto`] — resolves to `Term` only when stdout is a
//!   terminal, `TERM` is set to something other than `dumb`, and
//!   `NO_COLOR` is unset; otherwise `Text`. Piping a themed command
//!   into a file can therefore never leak escape bytes into a golden.
//!
//! Styling is additive-only by construction: a [`Theme`] wraps
//! *existing* text in escape sequences and the plain theme wraps in
//! nothing, so for any renderer written against [`Theme::paint`],
//! `Text` output is byte-identical to the pre-theme rendering.

use std::collections::BTreeMap;

use std::fmt::Write as _;

use crate::stream::LiveModel;

/// User-facing output mode selection (the `--mode` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Detect: `Term` on an interactive terminal, `Text` otherwise.
    Auto,
    /// Force ANSI-styled terminal output.
    Term,
    /// Force plain byte-stable output.
    Text,
}

/// A resolved mode: what actually gets rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenderMode {
    /// ANSI-styled output.
    Term,
    /// Plain byte-stable output.
    Text,
}

impl OutputMode {
    /// Parses a `--mode` argument value.
    pub fn parse(s: &str) -> Option<OutputMode> {
        match s {
            "auto" => Some(OutputMode::Auto),
            "term" => Some(OutputMode::Term),
            "text" => Some(OutputMode::Text),
            _ => None,
        }
    }

    /// Resolves `Auto` against the ambient terminal capabilities.
    pub fn resolve(self) -> RenderMode {
        match self {
            OutputMode::Term => RenderMode::Term,
            OutputMode::Text => RenderMode::Text,
            OutputMode::Auto => {
                use std::io::IsTerminal as _;
                let tty = std::io::stdout().is_terminal();
                let term_ok = match std::env::var("TERM") {
                    Ok(t) => !t.is_empty() && t != "dumb",
                    Err(_) => false,
                };
                let no_color = std::env::var_os("NO_COLOR").is_some();
                if tty && term_ok && !no_color {
                    RenderMode::Term
                } else {
                    RenderMode::Text
                }
            }
        }
    }
}

/// One ANSI style: the escape sequence that turns it on (empty = no
/// styling, and [`Theme::paint`] emits the text bytes unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Style(pub &'static str);

impl Style {
    /// No styling at all.
    pub const NONE: Style = Style("");
}

const RESET: &str = "\x1b[0m";

/// A named set of styles. Built-ins: `plain` (no escapes), `savanna`
/// (the default color theme), `mono` (bold/dim only, for monochrome
/// terminals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Theme {
    /// Theme name as selectable via `--theme`.
    pub name: &'static str,
    /// Top-level `== .. ==` titles.
    pub header: Style,
    /// `-- .. --` section headings.
    pub section: Style,
    /// Emphasized values (progress numbers, throughput).
    pub value: Style,
    /// Good news (completed runs, PASS).
    pub good: Style,
    /// Worth attention (stragglers, retries).
    pub warn: Style,
    /// Bad news (failed runs, corruption).
    pub bad: Style,
    /// De-emphasized detail.
    pub dim: Style,
}

impl Theme {
    /// The no-escape theme: painting with it is the identity on bytes.
    pub fn plain() -> Theme {
        Theme {
            name: "plain",
            header: Style::NONE,
            section: Style::NONE,
            value: Style::NONE,
            good: Style::NONE,
            warn: Style::NONE,
            bad: Style::NONE,
            dim: Style::NONE,
        }
    }

    /// The default color theme.
    pub fn savanna() -> Theme {
        Theme {
            name: "savanna",
            header: Style("\x1b[1;36m"), // bold cyan
            section: Style("\x1b[36m"),  // cyan
            value: Style("\x1b[1m"),     // bold
            good: Style("\x1b[32m"),     // green
            warn: Style("\x1b[33m"),     // yellow
            bad: Style("\x1b[1;31m"),    // bold red
            dim: Style("\x1b[2m"),       // faint
        }
    }

    /// Bold/faint only — for terminals without color.
    pub fn mono() -> Theme {
        Theme {
            name: "mono",
            header: Style("\x1b[1m"),
            section: Style("\x1b[4m"), // underline
            value: Style("\x1b[1m"),
            good: Style("\x1b[1m"),
            warn: Style("\x1b[7m"), // reverse video
            bad: Style("\x1b[1;7m"),
            dim: Style("\x1b[2m"),
        }
    }

    /// Looks a theme up by name.
    pub fn named(name: &str) -> Option<Theme> {
        match name {
            "plain" => Some(Theme::plain()),
            "savanna" => Some(Theme::savanna()),
            "mono" => Some(Theme::mono()),
            _ => None,
        }
    }

    /// The theme a resolved mode uses when none was named explicitly:
    /// `savanna` for terminals, `plain` for text.
    pub fn for_mode(mode: RenderMode) -> Theme {
        match mode {
            RenderMode::Term => Theme::savanna(),
            RenderMode::Text => Theme::plain(),
        }
    }

    /// True when painting with this theme emits no escape bytes.
    pub fn is_plain(&self) -> bool {
        [
            self.header,
            self.section,
            self.value,
            self.good,
            self.warn,
            self.bad,
            self.dim,
        ]
        .iter()
        .all(|s| s.0.is_empty())
    }

    /// Appends `text` to `out`, wrapped in `style` (identity when the
    /// style is empty — the byte-stability guarantee).
    pub fn paint(&self, style: Style, text: &str, out: &mut String) {
        if style.0.is_empty() {
            out.push_str(text);
        } else {
            out.push_str(style.0);
            out.push_str(text);
            out.push_str(RESET);
        }
    }
}

/// ANSI sequence that clears the screen and homes the cursor — what
/// `fair-top --follow` prints between frames in `Term` mode.
pub const CLEAR_SCREEN: &str = "\x1b[2J\x1b[H";

// ---------------------------------------------------------------------
// Live view rendering
// ---------------------------------------------------------------------

fn fmt_us(us: u64) -> String {
    let mut out = format!("{us} us");
    if us >= 1_000_000 {
        let secs = us / 1_000_000;
        let _ = write!(
            out,
            " ({}h {:02}m {:02}s)",
            secs / 3600,
            (secs % 3600) / 60,
            secs % 60
        );
    }
    out
}

fn fmt_f64(v: f64) -> String {
    let mut out = String::new();
    crate::json::write_f64(&mut out, v);
    out
}

fn fmt_gauge_mean(mean_x10: Option<u64>) -> String {
    match mean_x10 {
        Some(m) => format!("{}.{}", m / 10, m % 10),
        None => "-".to_string(),
    }
}

/// Straggler threshold used by [`render_live`], in tenths (20 = 2.0×
/// the running median attempt duration).
pub const LIVE_STRAGGLER_FACTOR_X10: u64 = 20;

/// Renders a [`LiveModel`] as the `fair-top` status page.
///
/// Pure function of the model and theme: with the plain theme the
/// output is byte-stable across machines and runs, which is what the
/// committed goldens pin.
pub fn render_live(model: &LiveModel, theme: &Theme) -> String {
    let mut out = String::new();
    let campaign = model.campaign.as_deref().unwrap_or("(no meta)");
    theme.paint(
        theme.header,
        &format!("== fair-top: {campaign} =="),
        &mut out,
    );
    out.push('\n');

    // state line
    out.push_str("state: ");
    if model.complete {
        theme.paint(theme.good, "complete", &mut out);
    } else {
        theme.paint(theme.warn, "running", &mut out);
    }
    let _ = write!(
        out,
        "  records: {}  tracks: {}",
        model.records,
        model.tracks.len()
    );
    out.push('\n');

    // progress bar
    let done = model.runs_done();
    out.push_str("progress: ");
    match (model.total_runs, model.progress_pct10()) {
        (Some(total), Some(pct10)) => {
            const WIDTH: u64 = 40;
            let filled = (pct10 * WIDTH / 1000).min(WIDTH) as usize;
            out.push('[');
            theme.paint(theme.good, &"#".repeat(filled), &mut out);
            theme.paint(theme.dim, &".".repeat(WIDTH as usize - filled), &mut out);
            out.push(']');
            theme.paint(
                theme.value,
                &format!(" {done}/{total} runs {}.{}%", pct10 / 10, pct10 % 10),
                &mut out,
            );
        }
        _ => theme.paint(theme.dim, "(campaign size unknown)", &mut out),
    }
    out.push('\n');

    // pace line
    out.push_str("virtual now: ");
    out.push_str(&fmt_us(model.last_event_us));
    let tp = model.throughput_milli();
    theme.paint(
        theme.value,
        &format!("   throughput: {}.{:03} runs/s", tp / 1000, tp % 1000),
        &mut out,
    );
    match model.eta_us() {
        Some(eta) => {
            out.push_str("   eta: ~");
            out.push_str(&fmt_us(eta));
        }
        None => out.push_str("   eta: -"),
    }
    out.push('\n');

    // runs line
    out.push_str("runs: ");
    theme.paint(theme.good, &format!("done={done}"), &mut out);
    let _ = write!(out, " timed_out={}", model.runs_timed_out());
    let failed = model.runs_failed();
    out.push(' ');
    if failed > 0 {
        theme.paint(theme.bad, &format!("failed={failed}"), &mut out);
    } else {
        let _ = write!(out, "failed={failed}");
    }
    let retried = model.retried_attempts();
    out.push(' ');
    if retried > 0 {
        theme.paint(theme.warn, &format!("retried={retried}"), &mut out);
    } else {
        let _ = write!(out, "retried={retried}");
    }
    out.push('\n');

    // allocations
    let _ = write!(
        out,
        "allocations: {}  completed={} timed_out={}",
        model.epochs.count, model.epochs.completed, model.epochs.timed_out
    );
    if let Some((name, end_us)) = &model.epochs.last {
        let _ = write!(out, "  last {name} @ {end_us} us");
    }
    out.push('\n');

    // utilization gauges
    out.push_str("utilization: ");
    if model.busy_nodes.samples == 0 && model.queue_depth.samples == 0 {
        theme.paint(theme.dim, "(no samples)", &mut out);
    } else {
        let _ = write!(
            out,
            "busy_nodes last={} mean={} ({} samples)   queue_depth last={} mean={} ({} samples)",
            fmt_f64(model.busy_nodes.last),
            fmt_gauge_mean(model.busy_nodes.mean_x10()),
            model.busy_nodes.samples,
            fmt_f64(model.queue_depth.last),
            fmt_gauge_mean(model.queue_depth.mean_x10()),
            model.queue_depth.samples
        );
    }
    out.push('\n');

    // span categories
    out.push('\n');
    theme.paint(theme.section, "-- span categories --", &mut out);
    out.push('\n');
    if model.span_stats.is_empty() {
        out.push_str("  (none)\n");
    }
    for (cat, stats) in &model.span_stats {
        let _ = writeln!(
            out,
            "  {cat}: count={} total={} max={}",
            stats.count,
            fmt_us(stats.total_us),
            fmt_us(stats.max_us)
        );
    }

    // counters
    out.push('\n');
    theme.paint(theme.section, "-- counters --", &mut out);
    out.push('\n');
    if model.counters.is_empty() {
        out.push_str("  (none)\n");
    }
    for (name, value) in &model.counters {
        let _ = writeln!(out, "  {name}: {}", fmt_f64(*value));
    }

    // stragglers
    out.push('\n');
    theme.paint(
        theme.section,
        &format!(
            "-- straggler candidates (attempt >= {}.{}x p50) --",
            LIVE_STRAGGLER_FACTOR_X10 / 10,
            LIVE_STRAGGLER_FACTOR_X10 % 10
        ),
        &mut out,
    );
    out.push('\n');
    let p50 = model.attempt_p50_us().unwrap_or(0);
    let candidates = model.straggler_candidates(LIVE_STRAGGLER_FACTOR_X10);
    if candidates.is_empty() {
        out.push_str("  none\n");
    }
    for (name, dur_us) in &candidates {
        out.push_str("  ");
        theme.paint(theme.warn, name, &mut out);
        let _ = writeln!(out, ": {} vs p50 {}", fmt_us(*dur_us), fmt_us(p50));
    }
    out
}

/// Renders only the counters of a model as `name value` lines — a
/// machine-greppable variant some tools want alongside the page.
pub fn render_counters(counters: &BTreeMap<String, f64>) -> String {
    let mut out = String::new();
    for (name, value) in counters {
        let _ = writeln!(out, "{name} {}", fmt_f64(*value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamRecord;

    fn model() -> LiveModel {
        let mut m = LiveModel::new();
        m.fold(&StreamRecord::Meta {
            campaign: "unit".into(),
            total_runs: 10,
        });
        m.fold(&StreamRecord::Track {
            track: 0,
            name: "allocations".into(),
        });
        m.fold(&StreamRecord::Span(crate::SpanEvent {
            category: "allocation",
            name: "alloc-0".into(),
            track: 0,
            start_us: 0,
            dur_us: 1_000_000,
            args: vec![
                ("completed", crate::ArgValue::UInt(4)),
                ("timed_out", crate::ArgValue::UInt(1)),
            ],
        }));
        m.fold(&StreamRecord::Count {
            name: "completed_runs".into(),
            delta: 4.0,
        });
        m
    }

    #[test]
    fn text_mode_is_byte_stable_and_escape_free() {
        let m = model();
        let plain = Theme::plain();
        let a = render_live(&m, &plain);
        let b = render_live(&m, &plain);
        assert_eq!(a, b);
        assert!(!a.contains('\x1b'), "plain theme must emit no escapes");
        assert!(a.contains("== fair-top: unit =="));
        assert!(a.contains("4/10 runs 40.0%"));
    }

    #[test]
    fn term_theme_adds_only_escapes() {
        let m = model();
        let plain = render_live(&m, &Theme::plain());
        let themed = render_live(&m, &Theme::savanna());
        assert!(themed.contains('\x1b'));
        // stripping escape sequences recovers the plain bytes exactly
        let stripped = strip_ansi(&themed);
        assert_eq!(stripped, plain);
    }

    fn strip_ansi(s: &str) -> String {
        let mut out = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c == '\x1b' {
                for c2 in chars.by_ref() {
                    if c2.is_ascii_alphabetic() {
                        break;
                    }
                }
            } else {
                out.push(c);
            }
        }
        out
    }

    #[test]
    fn mode_parse_and_forced_resolution() {
        assert_eq!(OutputMode::parse("auto"), Some(OutputMode::Auto));
        assert_eq!(OutputMode::parse("term"), Some(OutputMode::Term));
        assert_eq!(OutputMode::parse("text"), Some(OutputMode::Text));
        assert_eq!(OutputMode::parse("fancy"), None);
        assert_eq!(OutputMode::Term.resolve(), RenderMode::Term);
        assert_eq!(OutputMode::Text.resolve(), RenderMode::Text);
        // Auto in a test harness (stdout not a tty) resolves to Text
        assert_eq!(OutputMode::Auto.resolve(), RenderMode::Text);
    }

    #[test]
    fn themes_are_nameable() {
        for name in ["plain", "savanna", "mono"] {
            let theme = Theme::named(name).expect("known theme");
            assert_eq!(theme.name, name);
        }
        assert!(Theme::named("disco").is_none());
        assert!(Theme::plain().is_plain());
        assert!(!Theme::savanna().is_plain());
        assert_eq!(Theme::for_mode(RenderMode::Text).name, "plain");
        assert_eq!(Theme::for_mode(RenderMode::Term).name, "savanna");
    }
}
