//! Report rendering and regression comparison over telemetry exports.
//!
//! This module is the library behind the `fair-report` CLI: a
//! deterministic human-readable summary of a trace ([`render_summary`]),
//! a parser for `fair-telemetry-metrics/1` documents
//! ([`parse_metrics`]), and a threshold-based regression diff
//! ([`compare_metrics`]) used against committed `results/BENCH_*.json`
//! baselines. Everything renders byte-identically for a given input:
//! integer math for percentages, sorted orderings, canonical float
//! formatting from [`crate::json`].

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::analysis::{critical_path, stragglers, utilization_metrics, Phase, TraceModel};
use crate::digest::DigestSet;
use crate::jsonin::{self, Value};

/// Builds span-duration digests from a trace model (one observation per
/// span under `span_us.<category>`). Counter digests require a live
/// [`crate::Snapshot`] — a trace document does not carry counters.
pub fn digests_from_model(model: &TraceModel) -> DigestSet {
    let mut set = DigestSet::new();
    for span in &model.spans {
        set.observe(&format!("span_us.{}", span.category), span.dur_us);
    }
    set
}

fn write_us(out: &mut String, us: u64) {
    let _ = write!(out, "{us} us");
    if us >= 1000 {
        // integer milli-second rendering: no float formatting involved
        let ms10 = us / 100;
        let _ = write!(out, " ({}.{} ms)", ms10 / 10, ms10 % 10);
    }
}

/// Tenths of a percent of `part` in `total`, via integer math.
fn pct10(part: u64, total: u64) -> u64 {
    part.saturating_mul(1000).checked_div(total).unwrap_or(0)
}

/// Options for [`render_summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryOptions {
    /// Span category scanned for stragglers.
    pub straggler_category: String,
    /// A span is a straggler beyond this multiple of the shard median.
    pub straggler_factor: f64,
    /// Maximum critical-path segments listed (the phase totals always
    /// cover the full path).
    pub max_segments: usize,
}

impl Default for SummaryOptions {
    fn default() -> Self {
        SummaryOptions {
            straggler_category: "attempt".to_string(),
            straggler_factor: 2.0,
            max_segments: 40,
        }
    }
}

/// Renders the deterministic human-readable summary of a trace.
///
/// Equivalent to [`render_summary_with_theme`] with the plain theme —
/// goldens pin these bytes.
pub fn render_summary(model: &TraceModel, options: &SummaryOptions) -> String {
    render_summary_with_theme(model, options, &crate::render::Theme::plain())
}

/// [`render_summary`] with themed headings. The plain theme paints
/// nothing, so `render_summary_with_theme(m, o, &Theme::plain())` is
/// byte-identical to the historical un-themed output.
pub fn render_summary_with_theme(
    model: &TraceModel,
    options: &SummaryOptions,
    theme: &crate::render::Theme,
) -> String {
    let mut out = String::new();
    theme.paint(
        theme.header,
        "== fair-report: campaign trace summary ==",
        &mut out,
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "tracks: {}  spans: {}  instants: {}",
        model.track_names.len(),
        model.spans.len(),
        model.instants.len()
    );

    // span categories
    let mut cats: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for span in &model.spans {
        let entry = cats.entry(span.category.as_str()).or_insert((0, 0, 0));
        entry.0 += 1;
        entry.1 += span.dur_us;
        entry.2 = entry.2.max(span.dur_us);
    }
    out.push('\n');
    theme.paint(theme.section, "-- span categories --", &mut out);
    out.push('\n');
    if cats.is_empty() {
        out.push_str("  (none)\n");
    }
    for (cat, (count, total, max)) in &cats {
        let _ = write!(out, "  {cat}: count={count} total=");
        write_us(&mut out, *total);
        out.push_str(" max=");
        write_us(&mut out, *max);
        out.push('\n');
    }

    // critical path
    let path = critical_path(model);
    let shard_label = if path.shard.is_empty() {
        "serial".to_string()
    } else {
        path.shard.clone()
    };
    out.push('\n');
    theme.paint(
        theme.section,
        &format!("-- critical path ({shard_label}) --"),
        &mut out,
    );
    out.push_str("\n  total: ");
    write_us(&mut out, path.total_us);
    out.push('\n');
    for phase in Phase::ALL {
        let us = path.phase_us.get(phase.key()).copied().unwrap_or(0);
        if us == 0 {
            continue;
        }
        let p = pct10(us, path.total_us);
        let _ = write!(out, "  {}: ", phase.key());
        write_us(&mut out, us);
        let _ = writeln!(out, " [{}.{}%]", p / 10, p % 10);
    }
    let shown = path.segments.len().min(options.max_segments);
    let _ = writeln!(out, "  segments ({} of {}):", shown, path.segments.len());
    for seg in path.segments.iter().take(options.max_segments) {
        let _ = write!(
            out,
            "    {:>12} {} @{} ",
            seg.phase.key(),
            seg.label,
            seg.start_us
        );
        write_us(&mut out, seg.dur_us);
        out.push('\n');
    }
    if path.segments.len() > options.max_segments {
        let _ = writeln!(
            out,
            "    ... {} more",
            path.segments.len() - options.max_segments
        );
    }

    // span-duration digests
    let digests = digests_from_model(model);
    out.push('\n');
    theme.paint(theme.section, "-- span duration digests --", &mut out);
    out.push('\n');
    if digests.is_empty() {
        out.push_str("  (none)\n");
    }
    for (key, digest) in digests.iter() {
        let _ = writeln!(
            out,
            "  {key}: count={} p50={} p90={} p99={} max={}",
            digest.count(),
            digest.quantile(0.50).unwrap_or(0),
            digest.quantile(0.90).unwrap_or(0),
            digest.quantile(0.99).unwrap_or(0),
            digest.max().unwrap_or(0)
        );
    }

    // sampled utilization
    let metrics = utilization_metrics(model);
    if !metrics.is_empty() {
        out.push('\n');
        theme.paint(theme.section, "-- sampled utilization metrics --", &mut out);
        out.push('\n');
        for metric in &metrics {
            let samples = model
                .instants
                .iter()
                .filter(|i| i.category == "util" && &i.name == metric)
                .count();
            let _ = writeln!(out, "  {metric}: {samples} samples");
        }
    }

    // stragglers
    let flagged = stragglers(model, &options.straggler_category, options.straggler_factor);
    out.push('\n');
    theme.paint(
        theme.section,
        &format!(
            "-- stragglers ({} > {}x shard median) --",
            options.straggler_category, options.straggler_factor
        ),
        &mut out,
    );
    out.push('\n');
    if flagged.is_empty() {
        out.push_str("  none\n");
    }
    for s in &flagged {
        let shard = if s.shard.is_empty() {
            "serial"
        } else {
            &s.shard
        };
        let _ = write!(out, "  {} [{}]: ", s.name, shard);
        write_us(&mut out, s.dur_us);
        out.push_str(" vs median ");
        write_us(&mut out, s.median_us);
        out.push('\n');
    }
    out
}

/// Per-category span aggregate from a metrics document.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanStats {
    /// Number of spans.
    pub count: f64,
    /// Summed duration, microseconds.
    pub total_us: f64,
    /// Longest span, microseconds.
    pub max_us: f64,
}

/// A parsed `fair-telemetry-metrics/1` document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsDoc {
    /// Counter totals by name.
    pub counters: BTreeMap<String, f64>,
    /// Span aggregates by category.
    pub spans: BTreeMap<String, SpanStats>,
}

/// Parses a `fair-telemetry-metrics/1` document (the format
/// [`crate::metrics_json`] writes and `results/BENCH_*.json` commits).
pub fn parse_metrics(doc: &str) -> Result<MetricsDoc, String> {
    let root = jsonin::parse(doc)?;
    let schema = root.get("schema").and_then(Value::as_str).unwrap_or("");
    if schema != "fair-telemetry-metrics/1" {
        return Err(format!(
            "not a fair-telemetry-metrics/1 document (schema: {schema:?})"
        ));
    }
    let mut parsed = MetricsDoc::default();
    if let Some(counters) = root.get("counters").and_then(Value::as_obj) {
        for (name, value) in counters {
            parsed
                .counters
                .insert(name.clone(), value.as_f64().unwrap_or(f64::NAN));
        }
    }
    if let Some(spans) = root.get("spans").and_then(Value::as_obj) {
        for (category, agg) in spans {
            let field = |key: &str| agg.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
            parsed.spans.insert(
                category.clone(),
                SpanStats {
                    count: field("count"),
                    total_us: field("total_us"),
                    max_us: field("max_us"),
                },
            );
        }
    }
    Ok(parsed)
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareLine {
    /// Metric key (`counter.<name>` or `span.<category>.<field>`).
    pub key: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// Relative change (`(new - old) / |old|`; infinite when the
    /// baseline is zero and the candidate is not).
    pub rel: f64,
    /// True when `|rel|` exceeded the threshold.
    pub breach: bool,
}

/// Result of a regression comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareReport {
    /// Every compared metric, in key order.
    pub lines: Vec<CompareLine>,
    /// Keys present on only one side (`-key` removed, `+key` added) —
    /// reported but not a breach.
    pub drift: Vec<String>,
    /// The threshold the comparison ran with.
    pub threshold: f64,
}

impl CompareReport {
    /// True when no metric moved beyond the threshold.
    pub fn passed(&self) -> bool {
        self.lines.iter().all(|l| !l.breach)
    }

    /// Renders the deterministic diff report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== fair-report: regression diff (threshold {}%) ==",
            fmt_pct(self.threshold)
        );
        for line in &self.lines {
            let marker = if line.breach { "BREACH" } else { "ok" };
            let _ = writeln!(
                out,
                "  [{marker}] {}: {} -> {} ({}{}%)",
                line.key,
                fmt_num(line.old),
                fmt_num(line.new),
                if line.rel >= 0.0 { "+" } else { "" },
                fmt_pct(line.rel)
            );
        }
        for key in &self.drift {
            let _ = writeln!(out, "  [drift] {key}");
        }
        let breaches = self.lines.iter().filter(|l| l.breach).count();
        let _ = writeln!(
            out,
            "result: {} ({} compared, {} breached, {} drifted)",
            if self.passed() { "PASS" } else { "FAIL" },
            self.lines.len(),
            breaches,
            self.drift.len()
        );
        out
    }
}

fn fmt_num(v: f64) -> String {
    let mut out = String::new();
    crate::json::write_f64(&mut out, v);
    out
}

fn fmt_pct(rel: f64) -> String {
    if !rel.is_finite() {
        return "inf".to_string();
    }
    // integer tenths of a percent, deterministic
    let tenths = (rel.abs() * 1000.0).round() as u64;
    format!(
        "{}{}.{}",
        if rel < 0.0 { "-" } else { "" },
        tenths / 10,
        tenths % 10
    )
}

fn compare_one(key: &str, old: f64, new: f64, threshold: f64) -> CompareLine {
    let rel = if old == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new - old) / old.abs()
    };
    CompareLine {
        key: key.to_string(),
        old,
        new,
        rel,
        // NaN-safe: an incomparable ratio counts as a breach
        breach: rel.is_nan() || rel.abs() > threshold,
    }
}

/// Diffs two metrics documents. Every key present in both documents is
/// compared; a relative change beyond `threshold` (e.g. `0.2` = 20 %)
/// is a breach. Keys on one side only are reported as drift, not
/// breaches, so baselines regenerated under a different `rand`
/// implementation fail only on real regressions.
pub fn compare_metrics(old: &MetricsDoc, new: &MetricsDoc, threshold: f64) -> CompareReport {
    let mut report = CompareReport {
        threshold,
        ..CompareReport::default()
    };
    for (name, &old_v) in &old.counters {
        match new.counters.get(name) {
            Some(&new_v) => report.lines.push(compare_one(
                &format!("counter.{name}"),
                old_v,
                new_v,
                threshold,
            )),
            None => report.drift.push(format!("-counter.{name}")),
        }
    }
    for name in new.counters.keys() {
        if !old.counters.contains_key(name) {
            report.drift.push(format!("+counter.{name}"));
        }
    }
    for (category, old_s) in &old.spans {
        match new.spans.get(category) {
            Some(new_s) => {
                for (field, o, n) in [
                    ("count", old_s.count, new_s.count),
                    ("total_us", old_s.total_us, new_s.total_us),
                    ("max_us", old_s.max_us, new_s.max_us),
                ] {
                    report.lines.push(compare_one(
                        &format!("span.{category}.{field}"),
                        o,
                        n,
                        threshold,
                    ));
                }
            }
            None => report.drift.push(format!("-span.{category}")),
        }
    }
    for category in new.spans.keys() {
        if !old.spans.contains_key(category) {
            report.drift.push(format!("+span.{category}"));
        }
    }
    report.drift.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics_json;
    use crate::{SpanEvent, Telemetry};

    fn doc(queue: f64, attempts: f64) -> MetricsDoc {
        let (tel, rec) = Telemetry::recording();
        tel.count("queue_wait_us", queue);
        tel.count("attempts", attempts);
        tel.span(SpanEvent {
            category: "attempt",
            name: "r-0".into(),
            track: 0,
            start_us: 0,
            dur_us: 100,
            args: vec![],
        });
        parse_metrics(&metrics_json(&rec.snapshot())).expect("parses")
    }

    #[test]
    fn parse_metrics_reads_writer_output() {
        let parsed = doc(1500.0, 3.0);
        assert_eq!(parsed.counters["queue_wait_us"], 1500.0);
        assert_eq!(parsed.spans["attempt"].count, 1.0);
        assert_eq!(parsed.spans["attempt"].total_us, 100.0);
        assert!(parse_metrics("{\"schema\": \"other\"}").is_err());
    }

    #[test]
    fn compare_flags_threshold_breaches_only() {
        let old = doc(1000.0, 4.0);
        let new = doc(1100.0, 8.0);
        let report = compare_metrics(&old, &new, 0.2);
        assert!(!report.passed());
        let breached: Vec<&str> = report
            .lines
            .iter()
            .filter(|l| l.breach)
            .map(|l| l.key.as_str())
            .collect();
        assert_eq!(breached, ["counter.attempts"]);
        assert!(compare_metrics(&old, &old, 0.0).passed());
        let rendered = report.render();
        assert!(rendered.contains("[BREACH] counter.attempts: 4 -> 8 (+100.0%)"));
        assert!(rendered.contains("result: FAIL"));
        assert_eq!(rendered, report.render());
    }

    #[test]
    fn summary_renders_deterministically() {
        let (tel, rec) = Telemetry::recording();
        tel.name_track(0, "allocations");
        tel.span(SpanEvent {
            category: "allocation",
            name: "alloc-0".into(),
            track: 0,
            start_us: 5,
            dur_us: 95,
            args: vec![],
        });
        let model = TraceModel::from_snapshot(&rec.snapshot());
        let options = SummaryOptions::default();
        let a = render_summary(&model, &options);
        assert_eq!(a, render_summary(&model, &options));
        // the plain theme is the identity on bytes; a color theme only
        // ever adds escape sequences around existing text
        assert_eq!(
            a,
            render_summary_with_theme(&model, &options, &crate::render::Theme::plain())
        );
        let themed = render_summary_with_theme(&model, &options, &crate::render::Theme::savanna());
        assert!(themed.contains('\x1b'));
        assert!(a.contains("critical path (serial)"));
        assert!(a.contains("total: 100 us"));
        assert!(a.contains("queue_wait: 5 us [5.0%]"));
        assert!(a.contains("span_us.allocation"));
        assert!(a.contains("none"), "no stragglers expected:\n{a}");
    }
}
