//! Live telemetry streaming: `fair-telemetry-stream/1`.
//!
//! Everything else this crate exports is *post-hoc*: the [`Recorder`]
//! buffers in memory and nothing is visible until the campaign ends. A
//! campaign that hangs, stalls, or is killed is a black box while it
//! runs. This module closes that gap with three pieces:
//!
//! * [`StreamSink`] — a *tap* on a [`Recorder`]: a writer thread
//!   follows the recorder's event log by cursor and appends every
//!   record to disk as a CRC32-framed append-only file, so a reader in
//!   another process can follow the campaign while it executes.
//!   Producers pay nothing — they record into the same log with or
//!   without a stream attached — so streaming never gates the
//!   campaign;
//! * [`StreamReader`] — tails a live stream file: complete frames are
//!   returned, a partial frame at the tail means "wait, the writer may
//!   still be appending", and a torn tail never panics;
//! * [`LiveModel`] — folds records incrementally into the headline
//!   numbers an operator wants (runs done/failed, throughput, ETA,
//!   utilization, queue depth, straggler candidates) without holding
//!   the whole stream in memory.
//!
//! # File format
//!
//! The framing discipline is `cheetah::journal`'s `FAIRJNL1` layout
//! with a different magic: an 8-byte magic (`FAIRTLS1`) followed by
//! frames of `len: u32 LE | crc32: u32 LE | payload`, the CRC covering
//! the payload only (shared table in [`crate::framing`]). Payloads are
//! one JSON record each, encoded with the **exact** codec from
//! [`crate::snapjson`] (`u64` as decimal strings, `f64` as shortest-
//! roundtrip strings), so replaying a complete stream reconstructs a
//! [`Snapshot`] equal to the recorder's — bit for bit.
//!
//! Torn-tail semantics also mirror the journal: a defect that touches
//! the end of the file (short header, short payload, CRC mismatch on
//! the final frame) is a *torn tail* — expected after a crash or while
//! a writer is mid-append — while a defect strictly before the final
//! frame is hard [`StreamError::Corrupt`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use crate::event::{ArgValue, InstantEvent, SpanEvent};
use crate::framing::{crc32, FRAME_HEADER};
use crate::json::write_str;
use crate::jsonin::{parse, Value};
use crate::sink::{fold_event, Recorder, Snapshot};
use crate::snapjson;

/// Schema id stamped into every stream's `Meta` record.
pub const STREAM_SCHEMA: &str = "fair-telemetry-stream/1";

/// File magic: 8 bytes at offset 0.
pub const STREAM_MAGIC: &[u8; 8] = b"FAIRTLS1";

/// Upper bound on one record's payload, mirroring the journal: a frame
/// claiming more is corruption even if the bytes are present.
const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a stream could not be written or read.
#[derive(Debug)]
pub enum StreamError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Structural damage strictly before the final frame (or an
    /// impossible frame) — not a torn tail.
    Corrupt {
        /// Byte offset of the damaged frame.
        offset: u64,
        /// Human-readable description of the defect.
        detail: String,
    },
    /// A frame whose CRC verified but whose payload does not decode —
    /// a writer bug, not wire damage.
    BadRecord {
        /// Byte offset of the offending frame.
        offset: u64,
        /// Human-readable description of the decode failure.
        detail: String,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream I/O error: {e}"),
            StreamError::Corrupt { offset, detail } => {
                write!(f, "stream corrupt at byte {offset}: {detail}")
            }
            StreamError::BadRecord { offset, detail } => {
                write!(f, "stream record at byte {offset} undecodable: {detail}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// One frame's payload: a telemetry event or a stream control record.
///
/// `Span`/`Instant`/`Count`/`Track` mirror the four [`Sink`] methods
/// one-to-one — they are the [`Recorder`]'s log entry type, in call
/// order, which is what makes a complete stream replayable into a
/// [`Snapshot`] equal to a recorder's (see [`replay_stream`]).
///
/// [`Sink`]: crate::sink::Sink
#[derive(Debug, Clone, PartialEq)]
pub enum StreamRecord {
    /// First record of every stream: campaign identity and the run
    /// total the ETA is computed against.
    Meta {
        /// Campaign (manifest) name.
        campaign: String,
        /// Total runs in the campaign manifest.
        total_runs: u64,
    },
    /// A completed span ([`Sink::record_span`]).
    Span(SpanEvent),
    /// A point event ([`Sink::record_instant`]).
    Instant(InstantEvent),
    /// A counter increment ([`Sink::add_to_counter`]) — the *delta*,
    /// not the running total, so folds sum in the recorder's order.
    Count {
        /// Counter name.
        name: String,
        /// Increment applied.
        delta: f64,
    },
    /// A track naming ([`Sink::name_track`]).
    Track {
        /// Track id.
        track: u32,
        /// Track (lane) name.
        name: String,
    },
    /// Terminal record: the writer finished cleanly.
    Complete,
}

impl StreamRecord {
    /// Appends the canonical JSON encoding of this record to `out`.
    pub fn encode(&self, out: &mut String) {
        match self {
            StreamRecord::Meta {
                campaign,
                total_runs,
            } => {
                out.push_str("{\"t\":\"m\",\"schema\":\"");
                out.push_str(STREAM_SCHEMA);
                out.push_str("\",\"campaign\":");
                write_str(out, campaign);
                out.push_str(",\"total_runs\":");
                snapjson::write_u64_str(out, *total_runs);
                out.push('}');
            }
            StreamRecord::Span(span) => {
                out.push_str("{\"t\":\"s\",\"e\":");
                snapjson::write_span_tuple(out, span);
                out.push('}');
            }
            StreamRecord::Instant(event) => {
                out.push_str("{\"t\":\"i\",\"e\":");
                snapjson::write_instant_tuple(out, event);
                out.push('}');
            }
            StreamRecord::Count { name, delta } => {
                out.push_str("{\"t\":\"c\",\"n\":");
                write_str(out, name);
                out.push_str(",\"d\":");
                snapjson::write_f64_str(out, *delta);
                out.push('}');
            }
            StreamRecord::Track { track, name } => {
                out.push_str("{\"t\":\"k\",\"track\":");
                let _ = write!(out, "{track}");
                out.push_str(",\"n\":");
                write_str(out, name);
                out.push('}');
            }
            StreamRecord::Complete => out.push_str("{\"t\":\"e\"}"),
        }
    }

    /// Decodes one record from its JSON payload.
    pub fn decode(text: &str) -> Result<Self, String> {
        let root = parse(text)?;
        let tag = root
            .get("t")
            .and_then(Value::as_str)
            .ok_or("stream: record missing \"t\" tag")?;
        match tag {
            "m" => {
                match root.get("schema").and_then(Value::as_str) {
                    Some(STREAM_SCHEMA) => {}
                    Some(other) => return Err(format!("stream: unsupported schema {other:?}")),
                    None => return Err("stream: meta record missing schema id".into()),
                }
                Ok(StreamRecord::Meta {
                    campaign: snapjson::need_str(
                        root.get("campaign")
                            .ok_or("stream: meta missing campaign")?,
                        "campaign",
                    )?,
                    total_runs: snapjson::need_u64_str(
                        root.get("total_runs")
                            .ok_or("stream: meta missing total_runs")?,
                        "total_runs",
                    )?,
                })
            }
            "s" => Ok(StreamRecord::Span(snapjson::parse_span_tuple(
                root.get("e").ok_or("stream: span record missing event")?,
            )?)),
            "i" => Ok(StreamRecord::Instant(snapjson::parse_instant_tuple(
                root.get("e")
                    .ok_or("stream: instant record missing event")?,
            )?)),
            "c" => Ok(StreamRecord::Count {
                name: snapjson::need_str(
                    root.get("n").ok_or("stream: count record missing name")?,
                    "counter name",
                )?,
                delta: snapjson::need_f64_str(
                    root.get("d").ok_or("stream: count record missing delta")?,
                    "counter delta",
                )?,
            }),
            "k" => Ok(StreamRecord::Track {
                track: snapjson::need_u32(
                    root.get("track")
                        .ok_or("stream: track record missing track id")?,
                    "track id",
                )?,
                name: snapjson::need_str(
                    root.get("n").ok_or("stream: track record missing name")?,
                    "track name",
                )?,
            }),
            "e" => Ok(StreamRecord::Complete),
            other => Err(format!("stream: unknown record tag {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Writer tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Flush the in-process buffer to the file once it holds at least
    /// this many bytes. `0` means write-through: every record reaches
    /// the file (and any tailing reader) immediately.
    pub flush_threshold: usize,
    /// When non-zero, `fsync` the file each time at least this many
    /// bytes have been flushed since the last sync, and once more at
    /// [`finish`]. When zero (the default) the stream never syncs:
    /// flushed frames survive process death via the page cache, and
    /// power-loss durability is the campaign journal's job, not the
    /// observability stream's.
    ///
    /// [`finish`]: StreamSink::finish
    pub sync_every_bytes: u64,
}

impl Default for StreamOptions {
    fn default() -> Self {
        // Tail responsiveness comes from the tap's flush-per-drain, not
        // from this threshold — it only bounds buffer growth inside one
        // large drain, so it can be generous to batch write syscalls.
        Self {
            flush_threshold: 64 * 1024,
            sync_every_bytes: 0,
        }
    }
}

impl StreamOptions {
    /// Write-through options: every record is flushed as it is
    /// appended. This is what crash tests use — after a `kill -9`, the
    /// file holds every record the producer got to append.
    pub fn write_through() -> Self {
        Self {
            flush_threshold: 0,
            sync_every_bytes: 0,
        }
    }
}

/// Cumulative writer statistics, returned by [`StreamSink::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Records appended (including `Meta` and `Complete`).
    pub records: u64,
    /// File length in bytes after the final flush.
    pub bytes: u64,
}

/// Low-level buffered frame writer. Most callers want [`StreamSink`];
/// this is the single-threaded core it wraps.
#[derive(Debug)]
pub struct StreamWriter {
    file: File,
    buf: Vec<u8>,
    scratch: String,
    /// File length including buffered-but-unflushed bytes.
    len: u64,
    flushed_len: u64,
    synced_len: u64,
    records: u64,
    options: StreamOptions,
}

impl StreamWriter {
    /// Creates (truncating) the stream at `path` and writes the magic.
    pub fn create(path: &Path, options: StreamOptions) -> Result<Self, StreamError> {
        let mut file = File::create(path)?;
        file.write_all(STREAM_MAGIC)?;
        Ok(Self {
            file,
            buf: Vec::with_capacity(options.flush_threshold.max(256)),
            scratch: String::with_capacity(256),
            len: STREAM_MAGIC.len() as u64,
            flushed_len: STREAM_MAGIC.len() as u64,
            synced_len: 0,
            records: 0,
            options,
        })
    }

    /// Appends one record as a complete frame.
    ///
    /// The frame (header + payload) is built in full before anything is
    /// published, and this method contains no unwinding operations — so
    /// a panicking caller thread can never leave a half-frame in the
    /// buffer (the `Sink` poison contract).
    pub fn append(&mut self, record: &StreamRecord) -> Result<(), StreamError> {
        self.scratch.clear();
        record.encode(&mut self.scratch);
        let payload = self.scratch.as_bytes();
        let payload_len = u32::try_from(payload.len())
            .ok()
            .filter(|&n| n <= MAX_PAYLOAD)
            .ok_or_else(|| StreamError::Corrupt {
                offset: self.len,
                detail: format!(
                    "record payload of {} bytes exceeds frame limit",
                    payload.len()
                ),
            })?;
        self.buf.extend_from_slice(&payload_len.to_le_bytes());
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.len += FRAME_HEADER + u64::from(payload_len);
        self.records += 1;
        if self.buf.len() >= self.options.flush_threshold {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes any buffered frames to the file (and syncs if the
    /// periodic-sync threshold has been crossed).
    pub fn flush(&mut self) -> Result<(), StreamError> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
            self.flushed_len = self.len;
        }
        if self.options.sync_every_bytes > 0
            && self.flushed_len - self.synced_len >= self.options.sync_every_bytes
        {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces file contents to stable storage.
    pub fn sync(&mut self) -> Result<(), StreamError> {
        self.file.sync_data()?;
        self.synced_len = self.flushed_len;
        Ok(())
    }

    /// Appends the terminal [`StreamRecord::Complete`] and flushes.
    /// The writer is consumed: a finished stream is immutable.
    ///
    /// Syncs to stable storage only when periodic sync was requested
    /// (`sync_every_bytes > 0`). The stream is an observability
    /// artifact, not the durability layer — a flush survives process
    /// death, readers tolerate torn tails by construction, and
    /// power-loss durability belongs to the campaign journal.
    pub fn finish(mut self) -> Result<StreamStats, StreamError> {
        self.complete_in_place()
    }

    /// [`finish`](Self::finish) without consuming the writer, for
    /// callers that own it behind a loop.
    fn complete_in_place(&mut self) -> Result<StreamStats, StreamError> {
        self.append(&StreamRecord::Complete)?;
        self.flush()?;
        if self.options.sync_every_bytes > 0 {
            self.sync()?;
        }
        Ok(StreamStats {
            records: self.records,
            bytes: self.len,
        })
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// File length in bytes, counting buffered-but-unflushed frames.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True until the first record is appended.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }
}

// ---------------------------------------------------------------------
// Sink (recorder tap)
// ---------------------------------------------------------------------

/// Control requests from the owning handle to the writer thread. At
/// most one is outstanding at a time by construction: `finish` (or
/// drop) runs after producers stop.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Control {
    /// Nothing requested; the writer drains on its poll cadence.
    Idle,
    /// Drain, append `Complete`, finish the writer, reply, exit.
    Finish,
    /// Drain, flush best-effort, exit without `Complete` (drop path).
    Shutdown,
}

/// State shared between the owning handle and the writer thread.
struct TapState {
    control: Control,
    /// Totals from a completed `Finish`.
    finish_stats: Option<StreamStats>,
    /// First I/O failure; once latched, the tap stops draining.
    error: Option<StreamError>,
    /// True once the writer thread has exited.
    exited: bool,
}

struct TapShared {
    state: Mutex<TapState>,
    /// Wakes the writer early for control requests.
    work: Condvar,
    /// Wakes the handle waiting on `Finish`.
    ack: Condvar,
}

impl TapShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, TapState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn latch(&self, e: StreamError) {
        let mut st = self.lock();
        if st.error.is_none() {
            st.error = Some(e);
        }
    }
}

/// How long the writer thread sleeps between drains. Bounds how far a
/// tailing reader lags the producer. `fair-top` refreshes a few times
/// per second, so 5 ms is invisible to a tail, while on a single-core
/// host it keeps drains large and infrequent — fewer context switches
/// stealing time from the campaign.
const DRAIN_INTERVAL: Duration = Duration::from_millis(5);

/// A live stream of a [`Recorder`]'s event log.
///
/// This is a *tap*, not an interposed sink: producers keep recording
/// into the recorder exactly as they would without a stream, and a
/// dedicated writer thread follows the recorder's log by cursor —
/// encoding, checksumming, and appending each new record to the stream
/// file every [`DRAIN_INTERVAL`]. The campaign therefore pays nothing
/// on its hot path for being observable: the dashboard keeps up with
/// the science, not the other way around. Records are written in log
/// order, and [`Recorder::snapshot`] folds that same log — so a
/// complete stream's replay equals the end-of-run snapshot by
/// construction.
///
/// The stream's `Meta` record (campaign identity + run total) is
/// written synchronously by [`StreamSink::attach`] before the writer
/// thread starts, so a tailing reader learns the run total
/// immediately.
///
/// I/O failures *latch*: the first failure is stored, draining stops,
/// and the error surfaces from [`StreamSink::finish`] (or
/// [`StreamSink::take_error`]). A full disk degrades the stream —
/// never the campaign.
///
/// Honors the [`Sink`] poison contract from the tap side: the writer
/// thread recovers the recorder's lock from poison the same way the
/// recorder itself does, and builds each frame completely before
/// publishing it, so the file holds only whole frames plus at most one
/// torn tail after a crash.
///
/// [`Sink`]: crate::sink::Sink
pub struct StreamSink {
    shared: Arc<TapShared>,
    /// Totals from a completed `finish`, for idempotence.
    finished: Mutex<Option<StreamStats>>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl StreamSink {
    /// Creates the stream file at `path`, writes the `Meta` record
    /// (campaign identity + run total, for readers' ETAs), and spawns
    /// the writer thread tapping `recorder`'s log from its start.
    pub fn attach(
        path: &Path,
        options: StreamOptions,
        recorder: Arc<Recorder>,
        campaign: &str,
        total_runs: u64,
    ) -> Result<Arc<Self>, StreamError> {
        let mut writer = StreamWriter::create(path, options)?;
        writer.append(&StreamRecord::Meta {
            campaign: campaign.to_string(),
            total_runs,
        })?;
        writer.flush()?;
        let shared = Arc::new(TapShared {
            state: Mutex::new(TapState {
                control: Control::Idle,
                finish_stats: None,
                error: None,
                exited: false,
            }),
            work: Condvar::new(),
            ack: Condvar::new(),
        });
        let for_thread = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("fair-stream-writer".to_string())
            .spawn(move || tap_loop(writer, &recorder, &for_thread))?;
        Ok(Arc::new(Self {
            shared,
            finished: Mutex::new(None),
            thread: Mutex::new(Some(thread)),
        }))
    }

    /// Drains the log, appends `Complete`, and returns the totals.
    /// Idempotent; returns the latched error if any write failed. Call
    /// after producers stop — events recorded later stay in the
    /// recorder but are not streamed (a finished stream is immutable).
    pub fn finish(&self) -> Result<StreamStats, StreamError> {
        {
            let done = self.finished.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(stats) = *done {
                return Ok(stats);
            }
        }
        let (stats, error) = {
            let mut st = self.shared.lock();
            if !st.exited {
                st.control = Control::Finish;
                self.shared.work.notify_one();
                while !st.exited {
                    st = self
                        .shared
                        .ack
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            (st.finish_stats, st.error.take())
        };
        if let Some(handle) = self
            .thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = handle.join();
        }
        if let Some(e) = error {
            return Err(e);
        }
        match stats {
            Some(stats) => {
                *self.finished.lock().unwrap_or_else(PoisonError::into_inner) = Some(stats);
                Ok(stats)
            }
            None => Err(StreamError::Io(std::io::Error::other(
                "stream writer exited before finish",
            ))),
        }
    }

    /// Removes and returns the latched I/O error, if any.
    pub fn take_error(&self) -> Option<StreamError> {
        self.shared.lock().error.take()
    }
}

impl Drop for StreamSink {
    /// An unfinished tap drains on drop: frames for every record in
    /// the log reach the file (without a `Complete`, so readers see an
    /// ongoing stream), mirroring what a crash would leave behind.
    fn drop(&mut self) {
        if let Some(handle) = self
            .thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            {
                let mut st = self.shared.lock();
                if !st.exited {
                    st.control = Control::Shutdown;
                    self.shared.work.notify_one();
                }
            }
            let _ = handle.join();
        }
    }
}

/// The writer thread: every [`DRAIN_INTERVAL`] (or immediately on a
/// control request) it encodes the recorder's new log records into
/// frames — under the recorder's lock, which is cheaper than cloning
/// them out — then flushes outside the drain so tailing readers see
/// progress promptly. A drain always precedes control handling, so
/// `Finish` and `Shutdown` both observe the full log as of the
/// request.
fn tap_loop(mut writer: StreamWriter, recorder: &Recorder, shared: &TapShared) {
    let mut cursor = 0usize;
    let mut errored = false;
    loop {
        let control = {
            let mut st = shared.lock();
            if st.control == Control::Idle {
                let (guard, _) = shared
                    .work
                    .wait_timeout(st, DRAIN_INTERVAL)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
            std::mem::replace(&mut st.control, Control::Idle)
        };
        if !errored {
            let (upto, result) = recorder.with_log_from(cursor, |records| {
                for record in records {
                    writer.append(record)?;
                }
                Ok::<(), StreamError>(())
            });
            let result = result.and_then(|()| {
                cursor = upto;
                // keep the live tail fresh: every drained batch becomes
                // visible to readers before the next sleep
                writer.flush()
            });
            if let Err(e) = result {
                shared.latch(e);
                errored = true;
            }
        }
        match control {
            Control::Idle => {}
            Control::Finish => {
                let mut st = shared.lock();
                if !errored {
                    match writer.complete_in_place() {
                        Ok(stats) => st.finish_stats = Some(stats),
                        Err(e) => {
                            if st.error.is_none() {
                                st.error = Some(e);
                            }
                        }
                    }
                }
                st.exited = true;
                shared.ack.notify_all();
                return;
            }
            Control::Shutdown => {
                let mut st = shared.lock();
                st.exited = true;
                shared.ack.notify_all();
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Scan (whole file, post-hoc)
// ---------------------------------------------------------------------

/// Result of scanning stream bytes: the valid record prefix plus how
/// much (if anything) was torn off the tail.
#[derive(Debug)]
pub struct StreamScan {
    /// Every fully-framed, CRC-valid record, in order.
    pub records: Vec<StreamRecord>,
    /// Bytes of valid prefix (magic + whole frames).
    pub valid_len: u64,
    /// Bytes of torn tail after the valid prefix (0 = clean).
    pub torn_bytes: u64,
    /// True when the last record is [`StreamRecord::Complete`].
    pub complete: bool,
}

/// Scans an in-memory stream image. Torn tails are reported, not
/// errors; damage strictly before the final frame is
/// [`StreamError::Corrupt`]; an undecodable CRC-valid payload is
/// [`StreamError::BadRecord`].
pub fn scan_stream_bytes(bytes: &[u8]) -> Result<StreamScan, StreamError> {
    let magic_len = STREAM_MAGIC.len();
    if bytes.len() < magic_len {
        if STREAM_MAGIC.starts_with(bytes) {
            // prefix of the magic: torn before the header finished
            return Ok(StreamScan {
                records: Vec::new(),
                valid_len: 0,
                torn_bytes: bytes.len() as u64,
                complete: false,
            });
        }
        return Err(StreamError::Corrupt {
            offset: 0,
            detail: "bad magic".to_string(),
        });
    }
    if &bytes[..magic_len] != STREAM_MAGIC {
        return Err(StreamError::Corrupt {
            offset: 0,
            detail: "bad magic".to_string(),
        });
    }

    let mut records = Vec::new();
    let mut offset = magic_len as u64;
    let total = bytes.len() as u64;
    while offset < total {
        let remaining = total - offset;
        if remaining < FRAME_HEADER {
            return Ok(StreamScan {
                complete: matches!(records.last(), Some(StreamRecord::Complete)),
                records,
                valid_len: offset,
                torn_bytes: remaining,
            });
        }
        let at = offset as usize;
        let len_bytes: [u8; 4] = bytes[at..at + 4].try_into().unwrap_or([0; 4]);
        let crc_bytes: [u8; 4] = bytes[at + 4..at + 8].try_into().unwrap_or([0; 4]);
        let payload_len = u32::from_le_bytes(len_bytes);
        let stored_crc = u32::from_le_bytes(crc_bytes);
        if payload_len > MAX_PAYLOAD {
            return Err(StreamError::Corrupt {
                offset,
                detail: format!("frame claims {payload_len} payload bytes"),
            });
        }
        if u64::from(payload_len) > remaining - FRAME_HEADER {
            return Ok(StreamScan {
                complete: matches!(records.last(), Some(StreamRecord::Complete)),
                records,
                valid_len: offset,
                torn_bytes: remaining,
            });
        }
        let payload_start = at + FRAME_HEADER as usize;
        let payload = &bytes[payload_start..payload_start + payload_len as usize];
        let frame_end = offset + FRAME_HEADER + u64::from(payload_len);
        if crc32(payload) != stored_crc {
            if frame_end == total {
                return Ok(StreamScan {
                    complete: matches!(records.last(), Some(StreamRecord::Complete)),
                    records,
                    valid_len: offset,
                    torn_bytes: remaining,
                });
            }
            return Err(StreamError::Corrupt {
                offset,
                detail: "CRC mismatch before the final frame".to_string(),
            });
        }
        let text = std::str::from_utf8(payload).map_err(|e| StreamError::BadRecord {
            offset,
            detail: format!("payload is not UTF-8: {e}"),
        })?;
        let record = StreamRecord::decode(text)
            .map_err(|detail| StreamError::BadRecord { offset, detail })?;
        records.push(record);
        offset = frame_end;
    }
    Ok(StreamScan {
        complete: matches!(records.last(), Some(StreamRecord::Complete)),
        records,
        valid_len: offset,
        torn_bytes: 0,
    })
}

/// Reads and scans the stream at `path`.
pub fn read_stream(path: &Path) -> Result<StreamScan, StreamError> {
    let bytes = std::fs::read(path)?;
    scan_stream_bytes(&bytes)
}

// ---------------------------------------------------------------------
// Reader (live tail)
// ---------------------------------------------------------------------

/// Tails a stream file that may still be growing.
///
/// [`StreamReader::poll`] returns every *complete* record appended
/// since the previous poll. A partial frame at the tail — short header,
/// short payload, or a CRC mismatch on the very last frame — is treated
/// as "the writer is mid-append": the reader keeps its position and
/// will retry it on the next poll. Only damage strictly *before* the
/// tail is a hard error. The reader never panics on torn input (pinned
/// by the fuzz suite).
#[derive(Debug)]
pub struct StreamReader {
    file: File,
    path: PathBuf,
    /// Byte offset of the first not-yet-consumed byte.
    offset: u64,
    magic_ok: bool,
    complete: bool,
}

impl StreamReader {
    /// Opens the stream at `path` for tailing. The file must exist
    /// (drivers create it before producing events).
    pub fn open(path: &Path) -> Result<Self, StreamError> {
        Ok(Self {
            file: File::open(path)?,
            path: path.to_path_buf(),
            offset: 0,
            magic_ok: false,
            complete: false,
        })
    }

    /// Path this reader is tailing.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offset of the first unconsumed byte (magic + whole frames).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// True once the terminal [`StreamRecord::Complete`] was consumed.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Returns all complete records appended since the last poll
    /// (empty when the writer hasn't produced a full frame yet).
    pub fn poll(&mut self) -> Result<Vec<StreamRecord>, StreamError> {
        self.file.seek(SeekFrom::Start(self.offset))?;
        let mut tail = Vec::new();
        self.file.read_to_end(&mut tail)?;

        let mut pos: usize = 0;
        if !self.magic_ok {
            if tail.len() < STREAM_MAGIC.len() {
                if STREAM_MAGIC.starts_with(&tail) {
                    return Ok(Vec::new()); // wait for the rest of the magic
                }
                return Err(StreamError::Corrupt {
                    offset: 0,
                    detail: "bad magic".to_string(),
                });
            }
            if &tail[..STREAM_MAGIC.len()] != STREAM_MAGIC {
                return Err(StreamError::Corrupt {
                    offset: 0,
                    detail: "bad magic".to_string(),
                });
            }
            self.magic_ok = true;
            pos = STREAM_MAGIC.len();
        }

        let mut records = Vec::new();
        loop {
            let remaining = tail.len() - pos;
            if remaining < FRAME_HEADER as usize {
                break; // torn/pending header: wait
            }
            let len_bytes: [u8; 4] = tail[pos..pos + 4].try_into().unwrap_or([0; 4]);
            let crc_bytes: [u8; 4] = tail[pos + 4..pos + 8].try_into().unwrap_or([0; 4]);
            let payload_len = u32::from_le_bytes(len_bytes);
            let stored_crc = u32::from_le_bytes(crc_bytes);
            let frame_offset = self.offset + pos as u64;
            if payload_len > MAX_PAYLOAD {
                return Err(StreamError::Corrupt {
                    offset: frame_offset,
                    detail: format!("frame claims {payload_len} payload bytes"),
                });
            }
            if payload_len as usize > remaining - FRAME_HEADER as usize {
                break; // payload still being written: wait
            }
            let payload_start = pos + FRAME_HEADER as usize;
            let payload = &tail[payload_start..payload_start + payload_len as usize];
            let frame_end = payload_start + payload_len as usize;
            if crc32(payload) != stored_crc {
                if frame_end == tail.len() {
                    break; // final frame short on durable bytes: wait
                }
                return Err(StreamError::Corrupt {
                    offset: frame_offset,
                    detail: "CRC mismatch before the final frame".to_string(),
                });
            }
            let text = std::str::from_utf8(payload).map_err(|e| StreamError::BadRecord {
                offset: frame_offset,
                detail: format!("payload is not UTF-8: {e}"),
            })?;
            let record = StreamRecord::decode(text).map_err(|detail| StreamError::BadRecord {
                offset: frame_offset,
                detail,
            })?;
            if matches!(record, StreamRecord::Complete) {
                self.complete = true;
            }
            records.push(record);
            pos = frame_end;
        }
        // `tail` was read starting at `self.offset`; `pos` bytes of it
        // (magic + whole frames) were consumed.
        self.offset += pos as u64;
        Ok(records)
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// Replays stream records into a fresh [`Snapshot`] — the *same* fold
/// a [`Recorder`] applies to its own log (counter deltas summed in
/// arrival order, bit-exact f64 accumulation). `Meta`/`Complete`
/// control records fold to nothing, so the result of replaying a
/// complete stream equals the end-of-run recorder snapshot not by
/// coincidence but because both are one function applied to one record
/// sequence.
pub fn replay_stream(records: &[StreamRecord]) -> Snapshot {
    let mut snap = Snapshot::default();
    for record in records {
        fold_event(&mut snap, record);
    }
    snap
}

// ---------------------------------------------------------------------
// LiveModel
// ---------------------------------------------------------------------

/// Per-category span aggregate maintained by [`LiveModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanCatStats {
    /// Spans folded.
    pub count: u64,
    /// Sum of durations, µs.
    pub total_us: u64,
    /// Longest single span, µs.
    pub max_us: u64,
}

/// Bounded aggregate over the `"allocation"` epoch spans the savanna
/// drivers emit (one per allocation, with `completed` / `timed_out`
/// args).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochSummary {
    /// Allocation spans folded.
    pub count: u64,
    /// Sum of per-allocation `completed` args.
    pub completed: u64,
    /// Sum of per-allocation `timed_out` args.
    pub timed_out: u64,
    /// Name and end time of the most recent allocation span.
    pub last: Option<(String, u64)>,
}

/// Time-weighted gauge fold (for `"util"` instants such as
/// `busy_nodes` / `queue_depth`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GaugeStats {
    /// Most recent sample value.
    pub last: f64,
    /// Timestamp of the first sample, µs.
    pub first_at_us: u64,
    /// Timestamp of the most recent sample, µs.
    pub last_at_us: u64,
    /// Samples folded.
    pub samples: u64,
    weighted_sum: f64,
}

impl GaugeStats {
    fn observe(&mut self, at_us: u64, value: f64) {
        if self.samples == 0 {
            self.first_at_us = at_us;
        } else if at_us > self.last_at_us {
            self.weighted_sum += self.last * (at_us - self.last_at_us) as f64;
        }
        self.last = value;
        self.last_at_us = at_us;
        self.samples += 1;
    }

    /// Time-weighted mean over the sampled window, in tenths (so the
    /// render layer can format `x.y` with pure integer math). `None`
    /// until two samples span a non-empty window.
    pub fn mean_x10(&self) -> Option<u64> {
        if self.samples == 0 {
            return None;
        }
        let window = self.last_at_us - self.first_at_us;
        if window == 0 {
            // IEEE rounding of a f64 product is deterministic
            return Some((self.last * 10.0).round() as u64);
        }
        Some((self.weighted_sum * 10.0 / window as f64).round() as u64)
    }
}

/// How many straggler candidates the model retains.
const STRAGGLER_CANDIDATES: usize = 8;

/// Incremental fold of a telemetry stream into operator-facing
/// headline numbers.
///
/// Memory is bounded regardless of stream length: counters and
/// per-category aggregates grow with the number of distinct *names*
/// (tiny and fixed), utilization folds are O(1), attempt durations go
/// into a fixed-bucket [`Digest`], and only the top
/// [`STRAGGLER_CANDIDATES`] longest attempts are kept by name.
///
/// [`Digest`]: crate::digest::Digest
#[derive(Debug, Clone, Default)]
pub struct LiveModel {
    /// Campaign name from the `Meta` record.
    pub campaign: Option<String>,
    /// Manifest run total from the `Meta` record (drives ETA).
    pub total_runs: Option<u64>,
    /// Records folded so far.
    pub records: u64,
    /// True once the terminal `Complete` record was folded.
    pub complete: bool,
    /// Counter totals (deltas summed in arrival order).
    pub counters: BTreeMap<String, f64>,
    /// Per-category span aggregates.
    pub span_stats: BTreeMap<&'static str, SpanCatStats>,
    /// Distinct track ids named so far.
    pub tracks: BTreeSet<u32>,
    /// Largest event timestamp seen (virtual "now"), µs.
    pub last_event_us: u64,
    /// Allocation-epoch aggregate.
    pub epochs: EpochSummary,
    /// Busy-node gauge (`"util"` instants named `busy_nodes`).
    pub busy_nodes: GaugeStats,
    /// Batch-queue-depth gauge (`"util"` instants named `queue_depth`).
    pub queue_depth: GaugeStats,
    /// Longest attempt spans seen, `(name, dur_us)`, descending.
    pub stragglers: Vec<(String, u64)>,
    attempt_durs: crate::digest::Digest,
}

impl LiveModel {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record.
    pub fn fold(&mut self, record: &StreamRecord) {
        self.records += 1;
        match record {
            StreamRecord::Meta {
                campaign,
                total_runs,
            } => {
                self.campaign = Some(campaign.clone());
                self.total_runs = Some(*total_runs);
            }
            StreamRecord::Complete => self.complete = true,
            StreamRecord::Count { name, delta } => {
                *self.counters.entry(name.clone()).or_insert(0.0) += delta;
            }
            StreamRecord::Track { track, .. } => {
                self.tracks.insert(*track);
            }
            StreamRecord::Span(span) => {
                let stats = self.span_stats.entry(span.category).or_default();
                stats.count += 1;
                stats.total_us += span.dur_us;
                stats.max_us = stats.max_us.max(span.dur_us);
                let end = span.start_us.saturating_add(span.dur_us);
                self.last_event_us = self.last_event_us.max(end);
                match span.category {
                    "allocation" => {
                        self.epochs.count += 1;
                        self.epochs.completed += arg_u64(span, "completed").unwrap_or(0);
                        self.epochs.timed_out += arg_u64(span, "timed_out").unwrap_or(0);
                        self.epochs.last = Some((span.name.clone(), end));
                    }
                    "attempt" => {
                        self.attempt_durs.observe(span.dur_us);
                        self.note_straggler(&span.name, span.dur_us);
                    }
                    _ => {}
                }
            }
            StreamRecord::Instant(event) => {
                self.last_event_us = self.last_event_us.max(event.at_us);
                if event.category == "util" {
                    if let Some(value) = instant_value(event) {
                        match event.name.as_str() {
                            "busy_nodes" => self.busy_nodes.observe(event.at_us, value),
                            "queue_depth" => self.queue_depth.observe(event.at_us, value),
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    /// Folds every record in `records`.
    pub fn fold_all(&mut self, records: &[StreamRecord]) {
        for record in records {
            self.fold(record);
        }
    }

    fn note_straggler(&mut self, name: &str, dur_us: u64) {
        if self.stragglers.len() >= STRAGGLER_CANDIDATES {
            // list is sorted descending; the last entry is the floor
            match self.stragglers.last() {
                Some((_, floor)) if dur_us <= *floor => return,
                _ => {}
            }
            self.stragglers.pop();
        }
        let at = self.stragglers.partition_point(|(_, d)| *d >= dur_us);
        self.stragglers.insert(at, (name.to_string(), dur_us));
    }

    fn counter_u64(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0.0).max(0.0) as u64
    }

    /// Runs completed so far.
    ///
    /// Serial drivers bump `completed_runs` per allocation, but the
    /// resilient driver records counters only at campaign end — so the
    /// fold also sums the per-allocation `completed` span args and
    /// takes whichever source has seen more. On a complete stream the
    /// two agree.
    pub fn runs_done(&self) -> u64 {
        self.counter_u64("completed_runs")
            .max(self.epochs.completed)
    }

    /// Runs timed out so far (same dual-source rule as [`runs_done`]).
    ///
    /// [`runs_done`]: LiveModel::runs_done
    pub fn runs_timed_out(&self) -> u64 {
        self.counter_u64("timed_out_runs")
            .max(self.epochs.timed_out)
    }

    /// Runs that exhausted their retry budget (resilient campaigns).
    pub fn runs_failed(&self) -> u64 {
        self.counter_u64("exhausted_runs")
    }

    /// Attempts beyond each run's first — the retry load.
    pub fn retried_attempts(&self) -> u64 {
        let attempts = self.counter_u64("attempts");
        let span_attempts = self.span_stats.get("attempt").map(|s| s.count).unwrap_or(0);
        attempts
            .max(span_attempts)
            .saturating_sub(self.runs_done() + self.runs_failed() + self.runs_timed_out())
    }

    /// Completed-run throughput in milli-runs per virtual second
    /// (integer, so renders are byte-stable).
    pub fn throughput_milli(&self) -> u64 {
        if self.last_event_us == 0 {
            return 0;
        }
        let done = u128::from(self.runs_done());
        (done * 1_000_000_000 / u128::from(self.last_event_us)) as u64
    }

    /// Progress in tenths of a percent, when the run total is known.
    pub fn progress_pct10(&self) -> Option<u64> {
        let total = self.total_runs?;
        if total == 0 {
            return None;
        }
        Some((u128::from(self.runs_done()) * 1000 / u128::from(total)) as u64)
    }

    /// Naive ETA in virtual µs: remaining runs at the observed pace.
    /// `None` until at least one run finished, or once complete.
    pub fn eta_us(&self) -> Option<u64> {
        if self.complete {
            return None;
        }
        let total = self.total_runs?;
        let done = self.runs_done();
        let settled = done + self.runs_failed();
        if done == 0 || settled >= total {
            return None;
        }
        let remaining = total - settled;
        Some((u128::from(self.last_event_us) * u128::from(remaining) / u128::from(done)) as u64)
    }

    /// Median attempt duration so far, µs (from the fixed-bucket
    /// digest; `None` before the first attempt span).
    pub fn attempt_p50_us(&self) -> Option<u64> {
        self.attempt_durs.quantile(0.5)
    }

    /// Straggler candidates: retained longest attempts at least
    /// `factor_x10/10` times the current median, `(name, dur_us)`
    /// descending.
    pub fn straggler_candidates(&self, factor_x10: u64) -> Vec<(String, u64)> {
        let Some(p50) = self.attempt_p50_us() else {
            return Vec::new();
        };
        let threshold = p50.saturating_mul(factor_x10) / 10;
        self.stragglers
            .iter()
            .filter(|(_, d)| *d >= threshold.max(1))
            .cloned()
            .collect()
    }
}

fn arg_u64(span: &SpanEvent, name: &str) -> Option<u64> {
    span.args.iter().find_map(|(n, v)| match v {
        ArgValue::UInt(u) if *n == name => Some(*u),
        _ => None,
    })
}

fn instant_value(event: &InstantEvent) -> Option<f64> {
    event.args.iter().find_map(|(n, v)| match v {
        ArgValue::Float(f) if *n == "value" => Some(*f),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let mut p = std::env::temp_dir();
        p.push(format!(
            "fair-stream-{}-{}-{n}-{name}",
            std::process::id(),
            name.len()
        ));
        p
    }

    fn span(name: &str, start_us: u64, dur_us: u64) -> SpanEvent {
        SpanEvent {
            category: "attempt",
            name: name.into(),
            track: 2,
            start_us,
            dur_us,
            args: vec![("attempt", ArgValue::UInt(1))],
        }
    }

    fn sample_records() -> Vec<StreamRecord> {
        vec![
            StreamRecord::Meta {
                campaign: "acs \"quoted\"".into(),
                total_runs: u64::MAX,
            },
            StreamRecord::Track {
                track: 0,
                name: "allocations".into(),
            },
            StreamRecord::Span(span("g/p-0", 100, (1u64 << 54) + 1)),
            StreamRecord::Instant(InstantEvent {
                category: "util",
                name: "queue_depth".into(),
                track: 0,
                at_us: 9_007_199_254_740_993,
                args: vec![("value", ArgValue::Float(0.1 + 0.2))],
            }),
            StreamRecord::Count {
                name: "completed_runs".into(),
                delta: 3.5,
            },
            StreamRecord::Complete,
        ]
    }

    #[test]
    fn records_round_trip_exactly() {
        for record in sample_records() {
            let mut doc = String::new();
            record.encode(&mut doc);
            let back = StreamRecord::decode(&doc).expect("decodes");
            assert_eq!(back, record, "{doc}");
            // canonical: re-encode is byte-identical
            let mut doc2 = String::new();
            back.encode(&mut doc2);
            assert_eq!(doc2, doc);
        }
    }

    #[test]
    fn write_scan_round_trip() {
        let path = scratch("round");
        let mut w = StreamWriter::create(&path, StreamOptions::default()).expect("create");
        let records = sample_records();
        for r in &records[..records.len() - 1] {
            w.append(r).expect("append");
        }
        let stats = w.finish().expect("finish");
        assert_eq!(stats.records, records.len() as u64);

        let scan = read_stream(&path).expect("scan");
        assert_eq!(scan.records, records);
        assert_eq!(scan.torn_bytes, 0);
        assert!(scan.complete);
        assert_eq!(scan.valid_len, stats.bytes);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reader_tails_incremental_appends() {
        let path = scratch("tail");
        let mut w = StreamWriter::create(&path, StreamOptions::write_through()).expect("create");
        let mut reader = StreamReader::open(&path).expect("open");

        assert!(reader.poll().expect("poll magic-only").is_empty());
        w.append(&StreamRecord::Track {
            track: 0,
            name: "allocations".into(),
        })
        .expect("append");
        let got = reader.poll().expect("poll one");
        assert_eq!(got.len(), 1);

        // nothing new → empty poll, position keeps
        assert!(reader.poll().expect("poll idle").is_empty());

        w.append(&StreamRecord::Span(span("g/p-1", 5, 10)))
            .expect("append");
        w.append(&StreamRecord::Count {
            name: "completed_runs".into(),
            delta: 1.0,
        })
        .expect("append");
        let got = reader.poll().expect("poll two");
        assert_eq!(got.len(), 2);
        assert!(!reader.is_complete());

        drop(w);
        let mut w2 = {
            // simulate a writer finishing: append Complete via a fresh
            // append-mode handle is not supported; re-create is — so
            // instead finish through the normal path on a new file is
            // unnecessary: just append Complete with the low-level API.
            use std::fs::OpenOptions;
            OpenOptions::new().append(true).open(&path).expect("reopen")
        };
        let mut payload = String::new();
        StreamRecord::Complete.encode(&mut payload);
        let bytes = payload.as_bytes();
        let mut frame = Vec::new();
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        w2.write_all(&frame).expect("append complete");
        let got = reader.poll().expect("poll complete");
        assert_eq!(got, vec![StreamRecord::Complete]);
        assert!(reader.is_complete());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reader_waits_on_partial_frame_then_resumes() {
        let path = scratch("partial");
        let mut w = StreamWriter::create(&path, StreamOptions::write_through()).expect("create");
        w.append(&StreamRecord::Track {
            track: 1,
            name: "machine".into(),
        })
        .expect("append");
        drop(w);

        // hand-append a frame in two halves, polling in between
        let mut payload = String::new();
        StreamRecord::Count {
            name: "attempts".into(),
            delta: 2.0,
        }
        .encode(&mut payload);
        let bytes = payload.as_bytes();
        let mut frame = Vec::new();
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        let split = frame.len() / 2;

        let mut reader = StreamReader::open(&path).expect("open");
        assert_eq!(reader.poll().expect("poll full frame").len(), 1);

        use std::fs::OpenOptions;
        let mut f = OpenOptions::new().append(true).open(&path).expect("reopen");
        f.write_all(&frame[..split]).expect("half");
        // partial frame: reader waits, does not error, does not advance
        assert!(reader.poll().expect("poll torn").is_empty());
        assert!(reader.poll().expect("poll torn again").is_empty());
        f.write_all(&frame[split..]).expect("rest");
        let got = reader.poll().expect("poll resumed");
        assert_eq!(
            got,
            vec![StreamRecord::Count {
                name: "attempts".into(),
                delta: 2.0,
            }]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stream_sink_matches_recorder_byte_for_byte() {
        let path = scratch("sink");
        let (tel, rec) = crate::Telemetry::recording();
        let sink = StreamSink::attach(&path, StreamOptions::default(), Arc::clone(&rec), "unit", 4)
            .expect("attach");

        tel.name_track(0, "allocations");
        tel.span(span("g/p-0", 0, 50));
        tel.instant(InstantEvent {
            category: "util",
            name: "queue_depth".into(),
            track: 0,
            at_us: 10,
            args: vec![("value", ArgValue::Float(3.0))],
        });
        tel.count("completed_runs", 1.0);
        tel.count("completed_runs", 1.0);
        sink.finish().expect("finish");

        let scan = read_stream(&path).expect("scan");
        assert!(scan.complete);
        assert_eq!(
            scan.records.first(),
            Some(&StreamRecord::Meta {
                campaign: "unit".into(),
                total_runs: 4,
            })
        );
        let replayed = replay_stream(&scan.records);
        assert_eq!(
            crate::snapshot_json(&replayed),
            crate::snapshot_json(&rec.snapshot())
        );
        let _ = std::fs::remove_file(&path);
    }

    /// The `Sink` poison contract from the tap side: a producer thread
    /// that panics mid-campaign must not wedge streaming — the tap
    /// recovers the recorder's lock like the recorder itself does —
    /// and the file must contain only whole frames.
    #[test]
    fn panicking_producer_does_not_wedge_stream_sink() {
        let path = scratch("poison");
        let (tel, rec) = crate::Telemetry::recording();
        let sink = StreamSink::attach(
            &path,
            StreamOptions::write_through(),
            Arc::clone(&rec),
            "poison",
            3,
        )
        .expect("attach");
        tel.span(span("before", 1, 2));

        let dying = tel.clone();
        let handle = std::thread::spawn(move || {
            dying.span(span("dying", 2, 3));
            panic!("producer dies mid-recording");
        });
        assert!(handle.join().is_err());

        tel.span(span("after", 3, 4));
        tel.count("ok", 1.0);
        let stats = sink.finish().expect("finish survives a dead producer");
        assert_eq!(stats.records, 6); // meta + 4 events + complete

        let scan = read_stream(&path).expect("scan");
        assert_eq!(scan.torn_bytes, 0, "no half-frames after a panic");
        assert!(scan.complete);
        assert_eq!(scan.records.len(), 6);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn finish_is_idempotent_and_post_finish_events_stay_out() {
        let path = scratch("finish");
        let (tel, rec) = crate::Telemetry::recording();
        let sink = StreamSink::attach(&path, StreamOptions::default(), Arc::clone(&rec), "f", 1)
            .expect("attach");
        tel.count("x", 1.0);
        let a = sink.finish().expect("finish");
        let b = sink.finish().expect("finish again");
        assert_eq!(a, b);
        // events after finish keep recording but are not streamed
        tel.count("x", 1.0);
        assert!(sink.take_error().is_none());
        let scan = read_stream(&path).expect("scan");
        assert_eq!(scan.records.len(), 3); // meta + count + complete
        assert!(scan.complete);
        assert_eq!(rec.counter("x"), 2.0);
        let _ = std::fs::remove_file(&path);
    }
}
