//! Failure injection.
//!
//! Checkpoint frequency "is determined beforehand and depends on the
//! failure rate of the underlying system" (§V-B). We model node/system
//! failures as a Poisson process (exponential inter-failure times), the
//! standard assumption behind mean-time-to-failure reasoning.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dist::Exponential;
use crate::time::{SimDuration, SimTime};

/// A Poisson failure process with a given mean time to failure.
#[derive(Debug)]
pub struct FailureModel {
    mttf: SimDuration,
    rng: StdRng,
}

impl FailureModel {
    /// Creates a failure model with the given MTTF and seed.
    pub fn new(mttf: SimDuration, seed: u64) -> Self {
        assert!(mttf > SimDuration::ZERO, "MTTF must be positive");
        Self {
            mttf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Configured mean time to failure.
    pub fn mttf(&self) -> SimDuration {
        self.mttf
    }

    /// Samples the next failure instant strictly after `now`.
    pub fn next_failure_after(&mut self, now: SimTime) -> SimTime {
        let d = Exponential::from_mean(self.mttf.as_secs_f64()).sample(&mut self.rng);
        now + SimDuration::from_secs_f64(d.max(1e-6))
    }

    /// Samples a full failure schedule covering `[start, end)`.
    pub fn schedule(&mut self, start: SimTime, end: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = self.next_failure_after(start);
        while t < end {
            out.push(t);
            t = self.next_failure_after(t);
        }
        out
    }
}

/// Expected amount of work lost per failure when checkpointing every
/// `interval` (the classic half-interval approximation). Useful for
/// comparing policies analytically in tests and ablations.
pub fn expected_rework_per_failure(interval: SimDuration) -> SimDuration {
    interval / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_failure_times_average_to_mttf() {
        let mttf = SimDuration::from_hours(6);
        let mut fm = FailureModel::new(mttf, 42);
        let horizon = SimTime::ZERO + SimDuration::from_hours(6 * 2000);
        let schedule = fm.schedule(SimTime::ZERO, horizon);
        assert!(!schedule.is_empty());
        let mean_gap_hours = horizon.as_hours_f64() / schedule.len() as f64;
        assert!(
            (mean_gap_hours - 6.0).abs() < 0.5,
            "mean inter-failure gap {mean_gap_hours}h, expected ~6h"
        );
    }

    #[test]
    fn schedule_is_sorted_and_in_range() {
        let mut fm = FailureModel::new(SimDuration::from_hours(1), 7);
        let end = SimTime::ZERO + SimDuration::from_hours(100);
        let schedule = fm.schedule(SimTime::ZERO, end);
        assert!(schedule.windows(2).all(|w| w[0] < w[1]));
        assert!(schedule.iter().all(|&t| t > SimTime::ZERO && t < end));
    }

    #[test]
    fn deterministic_per_seed() {
        let make = |seed| {
            FailureModel::new(SimDuration::from_hours(2), seed)
                .schedule(SimTime::ZERO, SimTime::ZERO + SimDuration::from_hours(50))
        };
        assert_eq!(make(1), make(1));
        assert_ne!(make(1), make(2));
    }

    #[test]
    fn rework_is_half_interval() {
        assert_eq!(
            expected_rework_per_failure(SimDuration::from_mins(30)),
            SimDuration::from_mins(15)
        );
    }
}
