//! Failure injection.
//!
//! Checkpoint frequency "is determined beforehand and depends on the
//! failure rate of the underlying system" (§V-B). We model node/system
//! failures as a Poisson process (exponential inter-failure times), the
//! standard assumption behind mean-time-to-failure reasoning.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::batch::Allocation;
use crate::cluster::NodeId;
use crate::dist::Exponential;
use crate::time::{SimDuration, SimTime};

/// A Poisson failure process with a given mean time to failure.
#[derive(Debug)]
pub struct FailureModel {
    mttf: SimDuration,
    rng: StdRng,
}

impl FailureModel {
    /// Creates a failure model with the given MTTF and seed.
    pub fn new(mttf: SimDuration, seed: u64) -> Self {
        assert!(mttf > SimDuration::ZERO, "MTTF must be positive");
        Self {
            mttf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Configured mean time to failure.
    pub fn mttf(&self) -> SimDuration {
        self.mttf
    }

    /// Samples the next failure instant strictly after `now`.
    pub fn next_failure_after(&mut self, now: SimTime) -> SimTime {
        let d = Exponential::from_mean(self.mttf.as_secs_f64()).sample(&mut self.rng);
        now + SimDuration::from_secs_f64(d.max(1e-6))
    }

    /// Samples a full failure schedule covering `[start, end)`.
    pub fn schedule(&mut self, start: SimTime, end: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = self.next_failure_after(start);
        while t < end {
            out.push(t);
            t = self.next_failure_after(t);
        }
        out
    }
}

/// Expected amount of work lost per failure when checkpointing every
/// `interval` (the classic half-interval approximation). Useful for
/// comparing policies analytically in tests and ablations.
pub fn expected_rework_per_failure(interval: SimDuration) -> SimDuration {
    interval / 2
}

/// One node crash inside an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCrash {
    /// Crash instant (strictly inside the allocation window).
    pub at: SimTime,
    /// The node that goes down (and stays down for the rest of the
    /// allocation).
    pub node: NodeId,
}

/// The node crashes hitting one allocation, time-ordered.
///
/// Produced by [`NodeFaultInjector::crashes_for`]; consumed by
/// fault-aware schedulers, which kill whatever run occupies the crashed
/// node and shrink the allocation's capacity by one node per crash.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashPlan {
    crashes: Vec<NodeCrash>,
}

impl CrashPlan {
    /// A plan with no crashes (healthy allocation).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from explicit crashes (sorted by time internally).
    pub fn from_crashes(mut crashes: Vec<NodeCrash>) -> Self {
        crashes.sort_by_key(|c| (c.at, c.node.0));
        Self { crashes }
    }

    /// The crashes, in time order.
    pub fn crashes(&self) -> &[NodeCrash] {
        &self.crashes
    }

    /// Number of crashes in the plan.
    pub fn len(&self) -> usize {
        self.crashes.len()
    }

    /// True when no node crashes during the allocation.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
    }
}

/// Samples node crashes for allocations: the fleet-level failure process
/// of an N-node allocation is Poisson with rate `N / MTTF_node`, and each
/// arrival takes down one uniformly drawn node.
///
/// This is the piece that turns [`FailureModel`]'s schedules into
/// something campaign execution actually experiences: a run occupying the
/// crashed node is killed mid-flight, and the allocation continues with
/// one fewer node. Node identity is job-local (`0..nodes`), matching
/// [`crate::batch::Allocation`]; an injector held across a whole
/// allocation series models the *same* physical nodes being granted each
/// time, which is what makes per-node failure counts (and quarantine
/// decisions built on them) meaningful.
#[derive(Debug)]
pub struct NodeFaultInjector {
    mttf_per_node: SimDuration,
    rng: StdRng,
}

impl NodeFaultInjector {
    /// Creates an injector with the given *per-node* MTTF and seed.
    pub fn new(mttf_per_node: SimDuration, seed: u64) -> Self {
        assert!(
            mttf_per_node > SimDuration::ZERO,
            "per-node MTTF must be positive"
        );
        Self {
            mttf_per_node,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Configured per-node mean time to failure.
    pub fn mttf_per_node(&self) -> SimDuration {
        self.mttf_per_node
    }

    /// Samples the crash plan for one allocation. Consumes RNG state, so
    /// successive allocations see fresh (but seed-reproducible) schedules.
    pub fn crashes_for(&mut self, alloc: &Allocation) -> CrashPlan {
        let n = alloc.nodes.len();
        if n == 0 {
            return CrashPlan::none();
        }
        // Aggregate exponential inter-arrival: mean = MTTF_node / N.
        let mean_gap = self.mttf_per_node.as_secs_f64() / n as f64;
        let gap_dist = Exponential::from_mean(mean_gap);
        let mut crashes = Vec::new();
        let mut t = alloc.start;
        loop {
            let gap = gap_dist.sample(&mut self.rng).max(1e-6);
            t += SimDuration::from_secs_f64(gap);
            if t >= alloc.end {
                break;
            }
            let pick: f64 = self.rng.random();
            let idx = ((pick * n as f64) as usize).min(n - 1);
            crashes.push(NodeCrash {
                at: t,
                node: alloc.nodes[idx],
            });
        }
        CrashPlan::from_crashes(crashes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_failure_times_average_to_mttf() {
        let mttf = SimDuration::from_hours(6);
        let mut fm = FailureModel::new(mttf, 42);
        let horizon = SimTime::ZERO + SimDuration::from_hours(6 * 2000);
        let schedule = fm.schedule(SimTime::ZERO, horizon);
        assert!(!schedule.is_empty());
        let mean_gap_hours = horizon.as_hours_f64() / schedule.len() as f64;
        assert!(
            (mean_gap_hours - 6.0).abs() < 0.5,
            "mean inter-failure gap {mean_gap_hours}h, expected ~6h"
        );
    }

    #[test]
    fn schedule_is_sorted_and_in_range() {
        let mut fm = FailureModel::new(SimDuration::from_hours(1), 7);
        let end = SimTime::ZERO + SimDuration::from_hours(100);
        let schedule = fm.schedule(SimTime::ZERO, end);
        assert!(schedule.windows(2).all(|w| w[0] < w[1]));
        assert!(schedule.iter().all(|&t| t > SimTime::ZERO && t < end));
    }

    #[test]
    fn deterministic_per_seed() {
        let make = |seed| {
            FailureModel::new(SimDuration::from_hours(2), seed)
                .schedule(SimTime::ZERO, SimTime::ZERO + SimDuration::from_hours(50))
        };
        assert_eq!(make(1), make(1));
        assert_ne!(make(1), make(2));
    }

    #[test]
    fn rework_is_half_interval() {
        assert_eq!(
            expected_rework_per_failure(SimDuration::from_mins(30)),
            SimDuration::from_mins(15)
        );
    }

    fn alloc(nodes: u32, hours: u64) -> Allocation {
        crate::batch::BatchQueue::instant(1).submit(crate::batch::BatchJob::new(
            nodes,
            SimDuration::from_hours(hours),
        ))
    }

    #[test]
    fn crash_plan_is_sorted_in_window_and_on_granted_nodes() {
        let a = alloc(16, 12);
        let mut inj = NodeFaultInjector::new(SimDuration::from_hours(24), 3);
        let plan = inj.crashes_for(&a);
        assert!(!plan.is_empty(), "16 nodes × 12 h at 24 h MTTF must crash");
        assert!(plan.crashes().windows(2).all(|w| w[0].at <= w[1].at));
        assert!(plan
            .crashes()
            .iter()
            .all(|c| c.at > a.start && c.at < a.end && (c.node.0 as usize) < a.nodes.len()));
    }

    #[test]
    fn crash_rate_scales_with_node_count() {
        let count = |nodes: u32| {
            let a = alloc(nodes, 24);
            let mut inj = NodeFaultInjector::new(SimDuration::from_hours(12), 7);
            (0..50).map(|_| inj.crashes_for(&a).len()).sum::<usize>()
        };
        let narrow = count(2);
        let wide = count(32);
        assert!(
            wide > narrow * 4,
            "32-node allocations must crash far more often than 2-node ones ({wide} vs {narrow})"
        );
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let a = alloc(8, 6);
        let run = |seed| NodeFaultInjector::new(SimDuration::from_hours(8), seed).crashes_for(&a);
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn astronomical_mttf_never_crashes() {
        let a = alloc(4, 2);
        let mut inj = NodeFaultInjector::new(SimDuration::from_hours(10_000_000), 1);
        assert!(inj.crashes_for(&a).is_empty());
    }
}
