//! Distribution samplers for workload modeling.
//!
//! Only `rand`'s core RNG machinery is an allowed dependency, so the
//! distributions themselves (normal, lognormal, exponential) are
//! implemented here. Lognormal matters most: per-feature iRF run times are
//! heavy-tailed, and that tail is what makes set-synchronized execution
//! waste nodes (Fig. 6).

use rand::{Rng, RngExt};

/// Standard-normal sample via the Box–Muller transform.
///
/// The transform yields pairs; we deliberately discard the second value to
/// keep the sampler stateless (determinism is easier to reason about and
/// sampling is nowhere near a hot path here).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 so ln is finite.
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::EPSILON {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean of the distribution.
    pub mean: f64,
    /// Standard deviation (must be non-negative).
    pub std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    /// If `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0);
        Self { mean, std_dev }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// A lognormal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Location parameter of the underlying normal.
    pub mu: f64,
    /// Scale parameter of the underlying normal (non-negative).
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from the underlying normal's parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        Self { mu, sigma }
    }

    /// Creates a lognormal with the given *arithmetic* mean and coefficient
    /// of variation (`cv = std/mean`). This is the natural way to say "mean
    /// task time 90 s, heavy tail cv=0.8".
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(
            mean > 0.0 && cv >= 0.0,
            "mean must be positive, cv non-negative"
        );
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Self::new(mu, sigma2.sqrt())
    }

    /// Arithmetic mean of the distribution.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Draws one sample (always positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// An exponential distribution with the given rate (`1/mean`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter λ (positive).
    pub rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate λ.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Self { rate }
    }

    /// Creates an exponential distribution with the given mean.
    pub fn from_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }

    /// Draws one sample via inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = loop {
            let u: f64 = rng.random();
            if u > f64::EPSILON {
                break u;
            }
        };
        -u.ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_and_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments_converge() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Normal::new(5.0, 2.0);
        let samples: Vec<f64> = (0..40_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 5.0).abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std={}", var.sqrt());
    }

    #[test]
    fn lognormal_from_mean_cv_matches_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = LogNormal::from_mean_cv(90.0, 0.8);
        assert!((d.mean() - 90.0).abs() < 1e-9);
        let samples: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 90.0).abs() / 90.0 < 0.02, "mean={mean}");
        let cv = var.sqrt() / mean;
        assert!((cv - 0.8).abs() < 0.05, "cv={cv}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = Exponential::from_mean(42.0);
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, _) = mean_and_var(&samples);
        assert!((mean - 42.0).abs() / 42.0 < 0.02, "mean={mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = LogNormal::from_mean_cv(10.0, 0.5);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        Exponential::new(0.0);
    }
}
