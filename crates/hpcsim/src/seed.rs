//! Deterministic seed splitting for parallel execution.
//!
//! A campaign that fans out over shards needs one independent RNG stream
//! per shard, all derived from a single campaign seed, such that
//!
//! * the derived seed for child `i` depends only on `(root, path to i)` —
//!   never on execution order, thread count, or how many siblings exist,
//! * distinct children get (with overwhelming probability) distinct
//!   seeds, and
//! * repeated derivation is stable: the same `(root, index)` always
//!   yields the same child.
//!
//! Those three properties are exactly what makes seeded parallel output
//! byte-identical to serial output: every shard's stochastic inputs are a
//! pure function of the campaign seed and the shard's position in the
//! plan, so the merge step only has to put results back in plan order.
//!
//! The mixing function is the SplitMix64 finalizer (Steele et al.,
//! "Fast splittable pseudorandom number generators", OOPSLA 2014) applied
//! to the parent state combined with the child index. It is a bijection
//! on 64-bit words with full avalanche, so nearby indices (0, 1, 2, …)
//! map to statistically unrelated seeds.

/// A splittable stream of deterministic seeds.
///
/// `SeedStream::new(campaign_seed).child(i).seed()` is the seed for the
/// `i`-th shard; children can be split again (`child(i).child(j)`) for
/// nested derivation, e.g. per-shard fault schedules.
///
/// # Example
///
/// ```
/// use hpcsim::seed::SeedStream;
///
/// let root = SeedStream::new(42);
/// let a = root.child(0).seed();
/// let b = root.child(1).seed();
/// assert_ne!(a, b);
/// // stable: re-deriving gives the same value
/// assert_eq!(a, SeedStream::new(42).child(0).seed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedStream {
    state: u64,
}

/// Golden-ratio increment used by SplitMix64 to decorrelate the root
/// seed from the raw user value (so `new(0)` and `new(1)` differ in
/// every derived child, not just the low bit).
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedStream {
    /// Creates the root stream for a campaign seed.
    pub fn new(root: u64) -> Self {
        Self {
            state: mix(root.wrapping_add(GOLDEN_GAMMA)),
        }
    }

    /// Derives the `index`-th child stream. Pure: depends only on this
    /// stream's state and `index`.
    #[must_use]
    pub fn child(&self, index: u64) -> Self {
        // Offset the index by a gamma multiple before mixing so that
        // `child(0)` is not the identity on `state` and sibling indices
        // land far apart in the mix input space.
        Self {
            state: mix(self
                .state
                .wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA))),
        }
    }

    /// The 64-bit seed value of this stream, suitable for
    /// `StdRng::seed_from_u64` and friends.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// Convenience: derives a seed along a path of child indices,
    /// `derive(root, &[a, b])` ≡ `new(root).child(a).child(b).seed()`.
    pub fn derive(root: u64, path: &[u64]) -> u64 {
        path.iter().fold(Self::new(root), |s, &i| s.child(i)).seed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn children_are_stable() {
        let s = SeedStream::new(7);
        assert_eq!(s.child(3).seed(), s.child(3).seed());
        assert_eq!(s.child(3).seed(), SeedStream::new(7).child(3).seed());
    }

    #[test]
    fn children_are_pairwise_distinct() {
        let s = SeedStream::new(99);
        let seeds: BTreeSet<u64> = (0..4096).map(|i| s.child(i).seed()).collect();
        assert_eq!(seeds.len(), 4096);
    }

    #[test]
    fn roots_decorrelate() {
        // child(i) under root r must differ from child(i) under root r+1
        for i in 0..64 {
            assert_ne!(
                SeedStream::new(0).child(i).seed(),
                SeedStream::new(1).child(i).seed()
            );
        }
    }

    #[test]
    fn nested_derivation_differs_from_flat() {
        let s = SeedStream::new(5);
        assert_ne!(s.child(0).child(1).seed(), s.child(1).seed());
        assert_eq!(SeedStream::derive(5, &[0, 1]), s.child(0).child(1).seed());
    }

    #[test]
    fn child_does_not_collide_with_parent() {
        let s = SeedStream::new(11);
        for i in 0..64 {
            assert_ne!(s.child(i).seed(), s.seed());
        }
    }
}
