//! Batch queue and allocation model.
//!
//! Campaigns on shared machines run as a *sequence of allocations*: submit
//! a job asking for N nodes × walltime, wait in the queue, run, and if the
//! campaign is not finished, resubmit (the paper's iRF-LOOP workflow
//! "simply re-submits" a partially completed SweepGroup, §V-D). The model
//! here provides allocation handles and a stochastic queue-wait process so
//! total-campaign-runtime comparisons include resubmission cost.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cluster::NodeId;
use crate::dist::LogNormal;
use crate::time::{SimDuration, SimTime};

/// A request for `nodes` nodes for at most `walltime`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchJob {
    /// Requested node count.
    pub nodes: u32,
    /// Requested walltime limit.
    pub walltime: SimDuration,
}

impl BatchJob {
    /// Creates a batch job request.
    pub fn new(nodes: u32, walltime: SimDuration) -> Self {
        assert!(nodes > 0, "must request at least one node");
        assert!(walltime > SimDuration::ZERO, "walltime must be positive");
        Self { nodes, walltime }
    }
}

/// A granted allocation: a set of nodes usable from `start` until `end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Dense allocation index within its series (0-based).
    pub index: u32,
    /// Nodes granted (always `0..nodes` — node identity is job-local).
    pub nodes: Vec<NodeId>,
    /// Allocation start time.
    pub start: SimTime,
    /// Hard end (start + walltime).
    pub end: SimTime,
}

impl Allocation {
    /// Walltime span of this allocation.
    pub fn walltime(&self) -> SimDuration {
        self.end - self.start
    }

    /// Node-hours contained in the allocation.
    pub fn node_hours(&self) -> f64 {
        self.nodes.len() as f64 * self.walltime().as_hours_f64()
    }
}

/// The machine-level batch queue: grants allocations one at a time with a
/// sampled queue wait before each.
#[derive(Debug)]
pub struct BatchQueue {
    wait_dist: Option<LogNormal>,
    rng: StdRng,
    clock: SimTime,
    granted: u32,
}

impl BatchQueue {
    /// Creates a queue whose waits are lognormal with the given mean and
    /// coefficient of variation.
    pub fn new(mean_wait: SimDuration, cv: f64, seed: u64) -> Self {
        Self {
            wait_dist: Some(LogNormal::from_mean_cv(
                mean_wait.as_secs_f64().max(1e-6),
                cv,
            )),
            rng: StdRng::seed_from_u64(seed),
            clock: SimTime::ZERO,
            granted: 0,
        }
    }

    /// A queue that grants instantly (for unit tests and quick examples).
    pub fn instant(seed: u64) -> Self {
        Self {
            wait_dist: None,
            rng: StdRng::seed_from_u64(seed),
            clock: SimTime::ZERO,
            granted: 0,
        }
    }

    /// Current queue-clock (end of the last granted allocation, or the
    /// submission front).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Submits a job and returns the allocation it eventually receives.
    /// The queue clock advances past the allocation, so successive calls
    /// model back-to-back resubmission.
    pub fn submit(&mut self, job: BatchJob) -> Allocation {
        let wait = match &self.wait_dist {
            Some(dist) => SimDuration::from_secs_f64(dist.sample(&mut self.rng)),
            None => SimDuration::ZERO,
        };
        let start = self.clock + wait;
        let end = start + job.walltime;
        let alloc = Allocation {
            index: self.granted,
            nodes: (0..job.nodes).map(NodeId).collect(),
            start,
            end,
        };
        self.granted += 1;
        self.clock = end;
        alloc
    }

    /// Notifies the queue that the job released its allocation early, at
    /// `at`. Subsequent submissions queue from that point instead of the
    /// walltime end.
    pub fn release_early(&mut self, at: SimTime) {
        assert!(at <= self.clock, "cannot release after the allocation end");
        self.clock = at;
    }

    /// Inserts a dead period before the next submission — e.g. the human
    /// turnaround of manually curating failures and rewriting a submit
    /// script.
    pub fn advance(&mut self, delay: SimDuration) {
        self.clock += delay;
    }
}

/// Convenience: an unbounded series of identical allocations with queue
/// waits in between.
#[derive(Debug)]
pub struct AllocationSeries {
    queue: BatchQueue,
    job: BatchJob,
}

impl AllocationSeries {
    /// Creates a series for repeated submissions of `job`.
    pub fn new(job: BatchJob, mean_wait: SimDuration, cv: f64, seed: u64) -> Self {
        Self {
            queue: BatchQueue::new(mean_wait, cv, seed),
            job,
        }
    }

    /// A series whose allocations are granted instantly, with no queue
    /// wait and — crucially — no RNG draws. Golden fixtures use this so
    /// their committed expectations are independent of the `rand`
    /// implementation the workspace was built against.
    pub fn instant(job: BatchJob, seed: u64) -> Self {
        Self {
            queue: BatchQueue::instant(seed),
            job,
        }
    }

    /// Grants the next allocation in the series.
    pub fn next_allocation(&mut self) -> Allocation {
        self.queue.submit(self.job)
    }

    /// Ends the current allocation early (job finished before walltime).
    pub fn release_early(&mut self, at: SimTime) {
        self.queue.release_early(at);
    }

    /// Inserts a dead period (human turnaround) before the next
    /// allocation.
    pub fn advance(&mut self, delay: SimDuration) {
        self.queue.advance(delay);
    }

    /// Current series clock.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_queue_grants_back_to_back() {
        let mut q = BatchQueue::instant(1);
        let job = BatchJob::new(4, SimDuration::from_hours(2));
        let a = q.submit(job);
        let b = q.submit(job);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(a.end, SimTime::ZERO + SimDuration::from_hours(2));
        assert_eq!(b.start, a.end);
        assert_eq!(a.nodes.len(), 4);
        assert_eq!(b.index, 1);
    }

    #[test]
    fn queue_waits_accumulate() {
        let mut q = BatchQueue::new(SimDuration::from_mins(30), 0.5, 9);
        let job = BatchJob::new(20, SimDuration::from_hours(2));
        let a = q.submit(job);
        assert!(a.start > SimTime::ZERO, "expected nonzero queue wait");
        let b = q.submit(job);
        assert!(b.start > a.end);
    }

    #[test]
    fn early_release_shortens_series() {
        let mut q = BatchQueue::instant(1);
        let job = BatchJob::new(1, SimDuration::from_hours(2));
        let a = q.submit(job);
        let early = a.start + SimDuration::from_mins(30);
        q.release_early(early);
        let b = q.submit(job);
        assert_eq!(b.start, early);
    }

    #[test]
    fn node_hours_math() {
        let mut q = BatchQueue::instant(1);
        let a = q.submit(BatchJob::new(20, SimDuration::from_hours(2)));
        assert!((a.node_hours() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn series_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = AllocationSeries::new(
                BatchJob::new(20, SimDuration::from_hours(2)),
                SimDuration::from_mins(45),
                0.8,
                seed,
            );
            (0..5)
                .map(|_| s.next_allocation().start.0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
