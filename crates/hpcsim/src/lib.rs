//! Deterministic discrete-event HPC cluster simulator.
//!
//! The paper's experiments ran on Oak Ridge machines (Summit: 128 nodes /
//! 4096 MPI ranks writing to a shared parallel filesystem; a 20-node
//! institutional allocation for iRF-LOOP). This crate is the substitute
//! substrate: it models exactly the aspects of those machines that the
//! paper's claims depend on —
//!
//! * a **virtual clock** and event engine ([`engine`]) so campaign-scale
//!   runs (2-hour × 20-node allocations) execute in microseconds,
//! * **nodes and allocations** ([`cluster`], [`batch`]) so schedulers can
//!   be compared on idle-node accounting,
//! * a **shared-bandwidth filesystem** with stochastic background load
//!   ([`fs`]) so overhead-driven checkpoint policies see the same
//!   fluctuating I/O cost signal they saw on GPFS,
//! * **failure injection** ([`failure`]) for checkpoint/restart stories,
//! * **telemetry bridges** ([`telemetry`]) that put jobs, stalls, and
//!   crashes on the campaign trace timeline,
//! * **distribution samplers** ([`dist`]) for heavy-tailed task runtimes,
//! * **time-series traces** ([`trace`]) for utilization figures.
//!
//! Everything is seeded and deterministic: the same seed reproduces the
//! same timeline bit-for-bit.

#![deny(missing_docs)]

pub mod batch;
pub mod cluster;
pub mod dist;
pub mod engine;
pub mod failure;
pub mod fs;
pub mod machine;
pub mod seed;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use batch::{Allocation, AllocationSeries, BatchJob, BatchQueue};
pub use cluster::{ClusterSpec, NodeId};
pub use engine::{EventHandler, Simulation};
pub use failure::{CrashPlan, FailureModel, NodeCrash, NodeFaultInjector};
pub use fs::{FsLoad, SharedFs, StallSchedule, StallWindow};
pub use machine::{simulate_queue, JobOutcome, JobRequest, QueuePolicy};
pub use seed::SeedStream;
pub use time::{SimDuration, SimTime};
pub use trace::{TimeSeries, UtilizationTrace};
