//! A machine-level batch scheduler: FCFS with EASY backfill.
//!
//! [`crate::batch`] models queue waits *statistically* (lognormal), which
//! is what the campaign drivers need. This module provides the mechanism
//! underneath: a whole-machine simulation where many jobs contend for the
//! node pool and queue waits **emerge** from the schedule. It implements
//! the ubiquitous production policy — first-come-first-served with EASY
//! backfill: the head job gets a reservation at the earliest time enough
//! nodes free up, and later jobs may jump the queue only if running them
//! now cannot delay that reservation.
//!
//! Uses walltime *requests* for reservations (schedulers cannot see true
//! runtimes) and actual runtimes for completions, like the real thing.

use std::collections::BTreeMap;

use crate::cluster::ClusterSpec;
use crate::time::{SimDuration, SimTime};

/// One job submitted to the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Job id (unique).
    pub id: String,
    /// Nodes requested.
    pub nodes: u32,
    /// Requested walltime (the scheduler's planning horizon for the job).
    pub walltime: SimDuration,
    /// Actual runtime (≤ walltime; longer is truncated at walltime, as a
    /// real scheduler would kill the job).
    pub runtime: SimDuration,
    /// Submission instant.
    pub submit: SimTime,
}

impl JobRequest {
    /// Creates a request; runtime is clamped to the walltime.
    pub fn new(
        id: impl Into<String>,
        nodes: u32,
        walltime: SimDuration,
        runtime: SimDuration,
        submit: SimTime,
    ) -> Self {
        assert!(nodes > 0, "jobs need nodes");
        assert!(walltime > SimDuration::ZERO, "walltime must be positive");
        Self {
            id: id.into(),
            nodes,
            walltime,
            runtime: runtime.min(walltime),
            submit,
        }
    }
}

/// The schedule produced for one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// Job id.
    pub id: String,
    /// Submission instant.
    pub submit: SimTime,
    /// Start instant.
    pub start: SimTime,
    /// Completion instant (`start + runtime`).
    pub finish: SimTime,
    /// Nodes occupied.
    pub nodes: u32,
    /// Whether the job started via backfill (ahead of an earlier job).
    pub backfilled: bool,
}

impl JobOutcome {
    /// Queue wait experienced.
    pub fn wait(&self) -> SimDuration {
        self.start.since(self.submit)
    }
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Strict first-come-first-served: nothing jumps the queue.
    Fcfs,
    /// FCFS with EASY backfill (the production default).
    #[default]
    EasyBackfill,
}

/// Simulates the machine schedule for a set of jobs.
///
/// Returns outcomes in start order. Deterministic: ties broken by
/// submission order, then id.
pub fn simulate_queue(
    spec: &ClusterSpec,
    jobs: &[JobRequest],
    policy: QueuePolicy,
) -> Vec<JobOutcome> {
    for j in jobs {
        assert!(
            j.nodes <= spec.nodes,
            "job {} requests {} nodes on a {}-node machine",
            j.id,
            j.nodes,
            spec.nodes
        );
    }
    // queue in submission order (stable by input order for ties)
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (jobs[i].submit, i));

    let mut outcomes: Vec<Option<JobOutcome>> = vec![None; jobs.len()];
    // running jobs: (walltime-end used for planning, actual finish, nodes, idx)
    let mut running: Vec<(SimTime, SimTime, u32, usize)> = Vec::new();
    let mut queue: Vec<usize> = Vec::new(); // waiting, FCFS order
    let mut pending = order.into_iter().peekable();
    let mut now = SimTime::ZERO;
    let mut free = spec.nodes;

    loop {
        // admit all jobs submitted by `now`
        while let Some(&idx) = pending.peek() {
            if jobs[idx].submit <= now {
                queue.push(idx);
                pending.next();
            } else {
                break;
            }
        }

        // retire finished jobs (actual finish ≤ now)
        running.retain(|&(_, actual_finish, nodes, _)| {
            if actual_finish <= now {
                free += nodes;
                false
            } else {
                true
            }
        });

        // start jobs
        let mut started_any = true;
        while started_any {
            started_any = false;
            if queue.is_empty() {
                break;
            }
            let head = queue[0];
            if jobs[head].nodes <= free {
                start_job(
                    &mut outcomes,
                    &mut running,
                    &mut free,
                    jobs,
                    head,
                    now,
                    false,
                );
                queue.remove(0);
                started_any = true;
                continue;
            }
            if policy == QueuePolicy::EasyBackfill && queue.len() > 1 {
                // head reservation: earliest time enough nodes free up,
                // planning with *walltime* ends of running jobs
                let reservation = head_reservation(&running, free, jobs[head].nodes, now);
                // try to backfill any later job that fits now and ends
                // (by walltime) before the reservation, or uses nodes the
                // head doesn't need even at the reservation
                let mut bf = None;
                for (qpos, &cand) in queue.iter().enumerate().skip(1) {
                    if jobs[cand].nodes > free {
                        continue;
                    }
                    let cand_wallend = now + jobs[cand].walltime;
                    let spare_at_reservation =
                        nodes_free_at(&running, free, reservation) - jobs[head].nodes;
                    if cand_wallend <= reservation || jobs[cand].nodes <= spare_at_reservation {
                        bf = Some((qpos, cand));
                        break;
                    }
                }
                if let Some((qpos, cand)) = bf {
                    start_job(
                        &mut outcomes,
                        &mut running,
                        &mut free,
                        jobs,
                        cand,
                        now,
                        true,
                    );
                    queue.remove(qpos);
                    started_any = true;
                    continue;
                }
            }
        }

        // advance time: next completion or next submission
        let next_finish = running.iter().map(|&(_, f, _, _)| f).min();
        let next_submit = pending.peek().map(|&i| jobs[i].submit);
        now = match (next_finish, next_submit) {
            (Some(f), Some(s)) => f.min(s),
            (Some(f), None) => f,
            (None, Some(s)) => s,
            (None, None) => break,
        };
    }

    let mut result: Vec<JobOutcome> = outcomes.into_iter().flatten().collect();
    result.sort_by_key(|o| (o.start, o.submit, o.id.clone()));
    result
}

fn start_job(
    outcomes: &mut [Option<JobOutcome>],
    running: &mut Vec<(SimTime, SimTime, u32, usize)>,
    free: &mut u32,
    jobs: &[JobRequest],
    idx: usize,
    now: SimTime,
    backfilled: bool,
) {
    let job = &jobs[idx];
    *free -= job.nodes;
    let actual_finish = now + job.runtime;
    let wall_end = now + job.walltime;
    running.push((wall_end, actual_finish, job.nodes, idx));
    outcomes[idx] = Some(JobOutcome {
        id: job.id.clone(),
        submit: job.submit,
        start: now,
        finish: actual_finish,
        nodes: job.nodes,
        backfilled,
    });
}

/// Earliest time at least `needed` nodes are free, planning with walltime
/// ends (what the scheduler can actually know).
fn head_reservation(
    running: &[(SimTime, SimTime, u32, usize)],
    mut free: u32,
    needed: u32,
    now: SimTime,
) -> SimTime {
    if needed <= free {
        return now;
    }
    let mut ends: Vec<(SimTime, u32)> = running.iter().map(|&(w, _, n, _)| (w, n)).collect();
    ends.sort();
    for (end, nodes) in ends {
        free += nodes;
        if free >= needed {
            return end;
        }
    }
    unreachable!("job fits the machine, so all jobs ending frees enough nodes");
}

/// Nodes free at instant `t`, planning with walltime ends.
fn nodes_free_at(running: &[(SimTime, SimTime, u32, usize)], free: u32, t: SimTime) -> u32 {
    free + running
        .iter()
        .filter(|&&(wall_end, _, _, _)| wall_end <= t)
        .map(|&(_, _, n, _)| n)
        .sum::<u32>()
}

/// Summary statistics over a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueStatsSummary {
    /// Mean queue wait in seconds.
    pub mean_wait_secs: f64,
    /// Maximum queue wait in seconds.
    pub max_wait_secs: f64,
    /// Fraction of jobs that started via backfill.
    pub backfill_fraction: f64,
    /// Makespan: last finish minus first submit, seconds.
    pub makespan_secs: f64,
}

/// Computes schedule summary statistics.
pub fn summarize(outcomes: &[JobOutcome]) -> QueueStatsSummary {
    assert!(!outcomes.is_empty(), "cannot summarize an empty schedule");
    let waits: Vec<f64> = outcomes.iter().map(|o| o.wait().as_secs_f64()).collect();
    let first_submit = outcomes.iter().map(|o| o.submit).min().expect("non-empty");
    let last_finish = outcomes.iter().map(|o| o.finish).max().expect("non-empty");
    QueueStatsSummary {
        mean_wait_secs: waits.iter().sum::<f64>() / waits.len() as f64,
        max_wait_secs: waits.iter().cloned().fold(0.0, f64::max),
        backfill_fraction: outcomes.iter().filter(|o| o.backfilled).count() as f64
            / outcomes.len() as f64,
        makespan_secs: last_finish.since(first_submit).as_secs_f64(),
    }
}

/// Convenience: per-job-id outcome lookup.
pub fn by_id(outcomes: &[JobOutcome]) -> BTreeMap<&str, &JobOutcome> {
    outcomes.iter().map(|o| (o.id.as_str(), o)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(nodes: u32) -> ClusterSpec {
        ClusterSpec::new("test", nodes, 32, 1e10)
    }

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    fn job(id: &str, nodes: u32, wall_m: u64, run_m: u64, submit_m: u64) -> JobRequest {
        JobRequest::new(
            id,
            nodes,
            mins(wall_m),
            mins(run_m),
            SimTime::ZERO + mins(submit_m),
        )
    }

    #[test]
    fn empty_machine_starts_immediately() {
        let outcomes = simulate_queue(
            &machine(10),
            &[job("a", 4, 60, 30, 0)],
            QueuePolicy::EasyBackfill,
        );
        assert_eq!(outcomes[0].start, SimTime::ZERO);
        assert_eq!(outcomes[0].finish, SimTime::ZERO + mins(30));
        assert!(!outcomes[0].backfilled);
    }

    #[test]
    fn fcfs_queues_in_submission_order() {
        // 10-node machine; two 10-node jobs serialize
        let jobs = [job("a", 10, 60, 60, 0), job("b", 10, 60, 60, 1)];
        let outcomes = simulate_queue(&machine(10), &jobs, QueuePolicy::Fcfs);
        let ids = by_id(&outcomes);
        assert_eq!(ids["a"].start, SimTime::ZERO);
        assert_eq!(ids["b"].start, ids["a"].finish);
        assert_eq!(ids["b"].wait(), mins(59));
    }

    #[test]
    fn easy_backfill_jumps_small_jobs_without_delaying_head() {
        // machine: 10 nodes
        //   a: 10 nodes, runs 0..60
        //   b: 10 nodes, submitted t=1 → reservation at a's wall end (60)
        //   c:  2 nodes, walltime 30, submitted t=2 → would have to wait
        //      under FCFS, but cannot delay b's reservation … except a is
        //      using all 10 nodes, so c cannot start until 60 either.
        //   → make a use 8 nodes so 2 are free.
        let jobs = [
            job("a", 8, 60, 60, 0),
            job("b", 10, 60, 60, 1),
            job("c", 2, 30, 30, 2),
        ];
        let outcomes = simulate_queue(&machine(10), &jobs, QueuePolicy::EasyBackfill);
        let ids = by_id(&outcomes);
        assert_eq!(
            ids["c"].start,
            SimTime::ZERO + mins(2),
            "c backfills at submit"
        );
        assert!(ids["c"].backfilled);
        // head b still starts exactly at its reservation
        assert_eq!(ids["b"].start, SimTime::ZERO + mins(60));

        // FCFS keeps c waiting behind b
        let fcfs = simulate_queue(&machine(10), &jobs, QueuePolicy::Fcfs);
        let fids = by_id(&fcfs);
        assert!(fids["c"].start >= fids["b"].start);
    }

    #[test]
    fn backfill_never_delays_the_head_job() {
        // candidate job whose walltime crosses the reservation and whose
        // nodes collide with the head's needs must NOT backfill
        let jobs = [
            job("a", 8, 60, 60, 0),
            job("b", 10, 60, 60, 1),
            job("c", 2, 120, 120, 2), // too long to fit before b's start
        ];
        let outcomes = simulate_queue(&machine(10), &jobs, QueuePolicy::EasyBackfill);
        let ids = by_id(&outcomes);
        assert_eq!(ids["b"].start, SimTime::ZERO + mins(60), "head untouched");
        assert!(ids["c"].start >= ids["b"].start, "c must not jump");
    }

    #[test]
    fn early_finish_lets_queue_advance_sooner_than_walltime() {
        // a requests 60 but finishes in 10: b starts at 10, not 60
        let jobs = [job("a", 10, 60, 10, 0), job("b", 10, 60, 10, 1)];
        let outcomes = simulate_queue(&machine(10), &jobs, QueuePolicy::EasyBackfill);
        let ids = by_id(&outcomes);
        assert_eq!(ids["b"].start, SimTime::ZERO + mins(10));
    }

    #[test]
    fn all_jobs_scheduled_exactly_once() {
        let jobs: Vec<JobRequest> = (0..40)
            .map(|i: u64| {
                job(
                    &format!("j{i}"),
                    1 + (i % 5) as u32,
                    30 + i,
                    10 + (i * 7) % 25,
                    i,
                )
            })
            .collect();
        for policy in [QueuePolicy::Fcfs, QueuePolicy::EasyBackfill] {
            let outcomes = simulate_queue(&machine(12), &jobs, policy);
            assert_eq!(outcomes.len(), 40);
            let mut ids: Vec<&str> = outcomes.iter().map(|o| o.id.as_str()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 40);
            // capacity never exceeded: check at each start instant
            for o in &outcomes {
                let in_flight: u32 = outcomes
                    .iter()
                    .filter(|p| p.start <= o.start && p.finish > o.start)
                    .map(|p| p.nodes)
                    .sum();
                assert!(
                    in_flight <= 12,
                    "{} nodes in flight at {}",
                    in_flight,
                    o.start
                );
            }
        }
    }

    #[test]
    fn backfill_improves_or_matches_mean_wait() {
        let jobs: Vec<JobRequest> = (0..60u64)
            .map(|i| {
                job(
                    &format!("j{i}"),
                    if i % 7 == 0 { 10 } else { 1 + (i % 3) as u32 },
                    20 + (i * 13) % 100,
                    5 + (i * 11) % 60,
                    i / 2,
                )
            })
            .collect();
        let fcfs = summarize(&simulate_queue(&machine(12), &jobs, QueuePolicy::Fcfs));
        let easy = summarize(&simulate_queue(
            &machine(12),
            &jobs,
            QueuePolicy::EasyBackfill,
        ));
        assert!(
            easy.mean_wait_secs <= fcfs.mean_wait_secs,
            "easy {} vs fcfs {}",
            easy.mean_wait_secs,
            fcfs.mean_wait_secs
        );
        assert!(easy.backfill_fraction > 0.0);
    }

    #[test]
    fn runtime_longer_than_walltime_is_truncated() {
        let j = JobRequest::new("x", 1, mins(30), mins(90), SimTime::ZERO);
        assert_eq!(j.runtime, mins(30));
    }

    #[test]
    #[should_panic(expected = "requests")]
    fn oversize_job_rejected() {
        simulate_queue(&machine(4), &[job("big", 8, 10, 10, 0)], QueuePolicy::Fcfs);
    }
}
