//! Time-series traces for figures.
//!
//! Figure 6 is a busy-nodes-over-time comparison; these helpers record
//! step-function series in virtual time and compute the time-weighted
//! aggregates (mean utilization, idle node-hours) the comparison needs.

use crate::time::{SimDuration, SimTime};

/// A right-continuous step-function time series: the value set at `t`
/// holds until the next recorded point.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `value` from time `at` onward.
    ///
    /// # Panics
    /// If `at` precedes the last recorded point.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, prev)) = self.points.last() {
            assert!(at >= last, "time series must be recorded in order");
            if at == last {
                // Same-instant overwrite keeps the latest value.
                let idx = self.points.len() - 1;
                self.points[idx] = (at, value);
                return;
            }
            if prev == value {
                return; // no step; keep the series compact
            }
        }
        self.points.push((at, value));
    }

    /// Raw recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Rebuilds a series from `(microseconds, value)` samples — e.g.
    /// parsed back from a telemetry `"util"` instant series. Samples
    /// must be in non-decreasing time order (same panic contract as
    /// [`TimeSeries::record`]).
    pub fn from_points(points: impl IntoIterator<Item = (u64, f64)>) -> Self {
        let mut series = TimeSeries::new();
        for (at_us, value) in points {
            series.record(SimTime(at_us), value);
        }
        series
    }

    /// Value in effect at `t` (None before the first point).
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Value in effect at `t`, treating the window before the first
    /// recorded point as zero.
    ///
    /// This is the *single* definition of before-first-sample semantics:
    /// both [`TimeSeries::integrate`] and [`TimeSeries::resample`] query
    /// through it, so an integral and a resampled rendering of the same
    /// window can never disagree about the leading gap. Zero is the right
    /// baseline for the occupancy-style series this crate records (busy
    /// nodes, queue depth): before anything was recorded, nothing was
    /// running.
    pub fn value_at_or_baseline(&self, t: SimTime) -> f64 {
        self.value_at(t).unwrap_or(0.0)
    }

    /// Integral of the series over `[start, end]` (value × seconds).
    pub fn integrate(&self, start: SimTime, end: SimTime) -> f64 {
        assert!(end >= start);
        let mut total = 0.0;
        let mut cursor = start;
        let mut current = self.value_at_or_baseline(start);
        for &(t, v) in &self.points {
            if t <= cursor {
                continue;
            }
            if t >= end {
                break;
            }
            total += current * (t - cursor).as_secs_f64();
            cursor = t;
            current = v;
        }
        total += current * (end - cursor).as_secs_f64();
        total
    }

    /// Time-weighted mean over `[start, end]`.
    pub fn mean(&self, start: SimTime, end: SimTime) -> f64 {
        let span = (end - start).as_secs_f64();
        if span == 0.0 {
            return 0.0;
        }
        self.integrate(start, end) / span
    }

    /// Renders the series as two-column CSV (`time_s,value`) for external
    /// plotting of figure data.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,value\n");
        for &(t, v) in &self.points {
            out.push_str(&format!("{},{}\n", t.as_secs_f64(), v));
        }
        out
    }

    /// Resamples the series at `n` evenly spaced instants across
    /// `[start, end]` — used for printing figure rows.
    pub fn resample(&self, start: SimTime, end: SimTime, n: usize) -> Vec<(SimTime, f64)> {
        assert!(n >= 2, "need at least two sample points");
        let span = end - start;
        (0..n)
            .map(|i| {
                let t = start + SimDuration(span.0 * i as u64 / (n as u64 - 1));
                (t, self.value_at_or_baseline(t))
            })
            .collect()
    }
}

/// Tracks how many nodes are busy over time inside an allocation.
#[derive(Debug, Clone)]
pub struct UtilizationTrace {
    series: TimeSeries,
    total_nodes: u32,
    busy: u32,
}

impl UtilizationTrace {
    /// Creates a trace for an allocation of `total_nodes`, all idle at
    /// `start`.
    pub fn new(total_nodes: u32, start: SimTime) -> Self {
        let mut series = TimeSeries::new();
        series.record(start, 0.0);
        Self {
            series,
            total_nodes,
            busy: 0,
        }
    }

    /// Marks one more node busy at `at`.
    pub fn node_busy(&mut self, at: SimTime) {
        assert!(
            self.busy < self.total_nodes,
            "more busy nodes than allocated"
        );
        self.busy += 1;
        self.series.record(at, self.busy as f64);
    }

    /// Marks one node idle at `at`.
    pub fn node_idle(&mut self, at: SimTime) {
        assert!(self.busy > 0, "no busy nodes to release");
        self.busy -= 1;
        self.series.record(at, self.busy as f64);
    }

    /// Underlying busy-node step series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Mean utilization fraction over `[start, end]`.
    pub fn mean_utilization(&self, start: SimTime, end: SimTime) -> f64 {
        self.series.mean(start, end) / self.total_nodes as f64
    }

    /// Idle node-hours over `[start, end]`.
    pub fn idle_node_hours(&self, start: SimTime, end: SimTime) -> f64 {
        let span_h = (end - start).as_hours_f64();
        let busy_node_hours = self.series.integrate(start, end) / 3600.0;
        self.total_nodes as f64 * span_h - busy_node_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrate_step_function() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(0), 1.0);
        ts.record(SimTime::from_secs(10), 3.0);
        // [0,10) at 1.0 → 10; [10,20] at 3.0 → 30
        let total = ts.integrate(SimTime::from_secs(0), SimTime::from_secs(20));
        assert!((total - 40.0).abs() < 1e-9);
        assert!((ts.mean(SimTime::from_secs(0), SimTime::from_secs(20)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn value_at_boundaries() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(5), 2.0);
        assert_eq!(ts.value_at(SimTime::from_secs(4)), None);
        assert_eq!(ts.value_at(SimTime::from_secs(5)), Some(2.0));
        assert_eq!(ts.value_at(SimTime::from_secs(100)), Some(2.0));
    }

    #[test]
    fn duplicate_values_are_compacted() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(0), 1.0);
        ts.record(SimTime::from_secs(1), 1.0);
        ts.record(SimTime::from_secs(2), 2.0);
        assert_eq!(ts.points().len(), 2);
    }

    #[test]
    fn same_instant_overwrites() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(1), 1.0);
        ts.record(SimTime::from_secs(1), 5.0);
        assert_eq!(ts.value_at(SimTime::from_secs(1)), Some(5.0));
        assert_eq!(ts.points().len(), 1);
    }

    #[test]
    fn utilization_accounting() {
        let start = SimTime::ZERO;
        let end = SimTime::from_secs(3600);
        let mut ut = UtilizationTrace::new(2, start);
        ut.node_busy(start); // one node busy the whole hour
        ut.node_busy(SimTime::from_secs(1800)); // second node busy half
        let util = ut.mean_utilization(start, end);
        assert!((util - 0.75).abs() < 1e-9, "util={util}");
        let idle = ut.idle_node_hours(start, end);
        assert!((idle - 0.5).abs() < 1e-9, "idle={idle}");
    }

    #[test]
    fn resample_covers_span() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::ZERO, 1.0);
        ts.record(SimTime::from_secs(50), 2.0);
        let pts = ts.resample(SimTime::ZERO, SimTime::from_secs(100), 5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], (SimTime::ZERO, 1.0));
        assert_eq!(pts[4], (SimTime::from_secs(100), 2.0));
        assert_eq!(pts[2], (SimTime::from_secs(50), 2.0));
    }

    #[test]
    fn csv_export() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::ZERO, 1.0);
        ts.record(SimTime::from_secs(2), 3.5);
        assert_eq!(ts.to_csv(), "time_s,value\n0,1\n2,3.5\n");
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_recording_panics() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(10), 1.0);
        ts.record(SimTime::from_secs(5), 2.0);
    }
}
