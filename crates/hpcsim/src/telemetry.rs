//! Bridges simulator state into the workspace telemetry layer.
//!
//! The simulator's native outputs — scheduler outcomes, stall schedules,
//! crash plans — are plain data. This module renders them onto a
//! [`telemetry::Telemetry`] handle as spans and instants in **virtual
//! microseconds**, so a campaign trace shows machine weather (stalls,
//! crashes) on the same timeline as the attempts it disrupted. All
//! recorders are no-ops on a disabled handle.

use telemetry::Telemetry;

use crate::failure::CrashPlan;
use crate::fs::StallSchedule;
use crate::machine::JobOutcome;
use crate::time::SimTime;
use crate::trace::TimeSeries;

/// Records one span per scheduled job (`cat = "job"`, `ts = start`,
/// `dur = finish - start`) on `track`, with queue wait, node count, and
/// backfill status as args. Also bumps the `jobs_completed` and
/// `backfilled_jobs` counters.
pub fn record_job_outcomes(tel: &Telemetry, track: u32, outcomes: &[JobOutcome]) {
    if !tel.is_enabled() {
        return;
    }
    for o in outcomes {
        tel.span_with(|| telemetry::SpanEvent {
            category: "job",
            name: o.id.clone(),
            track,
            start_us: o.start.0,
            dur_us: o.finish.since(o.start).0,
            args: vec![
                ("nodes", u64::from(o.nodes).into()),
                ("wait_us", o.wait().0.into()),
                ("backfilled", o.backfilled.into()),
            ],
        });
        tel.count("jobs_completed", 1.0);
        if o.backfilled {
            tel.count("backfilled_jobs", 1.0);
        }
    }
}

/// Records one span per filesystem stall window (`cat = "fs-stall"`) on
/// `track`, with the slowdown factor as an arg, and bumps the
/// `fs_stall_windows` / `fs_stall_us` counters.
pub fn record_stall_windows(tel: &Telemetry, track: u32, stalls: &StallSchedule) {
    if !tel.is_enabled() {
        return;
    }
    for w in stalls.windows() {
        let dur = w.end.since(w.start);
        tel.span_with(|| telemetry::SpanEvent {
            category: "fs-stall",
            name: format!("stall x{}", w.slowdown),
            track,
            start_us: w.start.0,
            dur_us: dur.0,
            args: vec![("slowdown", w.slowdown.into())],
        });
        tel.count("fs_stall_windows", 1.0);
        tel.count("fs_stall_us", dur.0 as f64);
    }
}

/// Records one instant per injected node crash (`cat = "crash"`) on
/// `track`, with the node id as an arg, and bumps the `node_crashes`
/// counter.
pub fn record_crash_plan(tel: &Telemetry, track: u32, plan: &CrashPlan) {
    if !tel.is_enabled() {
        return;
    }
    for c in plan.crashes() {
        tel.instant_with(|| telemetry::InstantEvent {
            category: "crash",
            name: c.node.to_string(),
            track,
            at_us: c.at.0,
            args: vec![("node", u64::from(c.node.0).into())],
        });
        tel.count("node_crashes", 1.0);
    }
}

/// Records a sampled resource step series as `"util"` instants named
/// `metric` on `track` — one instant per step point, value in the
/// `value` arg. Instants only: utilization sampling never bumps
/// counters, so the metrics-export key set (and the committed
/// `BENCH_*.json` baselines) is unaffected by enabling it.
pub fn record_utilization_series(
    tel: &Telemetry,
    track: u32,
    metric: &'static str,
    series: &TimeSeries,
) {
    if !tel.is_enabled() {
        return;
    }
    for &(at, value) in series.points() {
        tel.instant_with(|| telemetry::InstantEvent {
            category: "util",
            name: metric.to_string(),
            track,
            at_us: at.0,
            args: vec![("value", value.into())],
        });
    }
}

/// Records one batch-queue-depth sample (`"util"` instant named
/// `"queue_depth"`) at `at`.
pub fn record_queue_depth(tel: &Telemetry, track: u32, at: SimTime, depth: f64) {
    if !tel.is_enabled() {
        return;
    }
    tel.instant_with(|| telemetry::InstantEvent {
        category: "util",
        name: "queue_depth".to_string(),
        track,
        at_us: at.0,
        args: vec![("value", depth.into())],
    });
}

/// Records the filesystem bandwidth saturation implied by a stall
/// schedule over `[start, end]` as a `"util"` series named
/// `"fs_slowdown"`: the slowdown factor inside each window, `1.0`
/// outside. Windows outside the span are clipped; out-of-order windows
/// (which the schedule constructors never produce) are skipped rather
/// than panicking the series builder.
pub fn record_fs_saturation(
    tel: &Telemetry,
    track: u32,
    stalls: &StallSchedule,
    start: SimTime,
    end: SimTime,
) {
    if !tel.is_enabled() {
        return;
    }
    let mut series = TimeSeries::new();
    series.record(start, 1.0);
    let mut cursor = start;
    for w in stalls.windows() {
        if w.end <= cursor || w.start >= end {
            continue;
        }
        let w_start = w.start.max(cursor);
        let w_end = w.end.min(end);
        series.record(w_start, w.slowdown);
        series.record(w_end, 1.0);
        cursor = w_end;
    }
    record_utilization_series(tel, track, "fs_slowdown", &series);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchJob, BatchQueue};
    use crate::cluster::ClusterSpec;
    use crate::failure::NodeFaultInjector;
    use crate::machine::{simulate_queue, JobRequest, QueuePolicy};
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn job_outcomes_become_spans() {
        let spec = ClusterSpec::new("t", 4, 8, 1e9);
        let jobs = [JobRequest::new(
            "a",
            2,
            SimDuration::from_mins(30),
            SimDuration::from_mins(10),
            SimTime::ZERO,
        )];
        let outcomes = simulate_queue(&spec, &jobs, QueuePolicy::EasyBackfill);
        let (tel, rec) = Telemetry::recording();
        record_job_outcomes(&tel, 0, &outcomes);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].category, "job");
        assert_eq!(snap.counters["jobs_completed"], 1.0);
    }

    #[test]
    fn weather_becomes_spans_and_instants() {
        let stalls = StallSchedule::sample(
            SimDuration::from_mins(30),
            SimDuration::from_mins(2),
            6.0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(12),
            4,
        );
        let alloc = BatchQueue::instant(1).submit(BatchJob::new(16, SimDuration::from_hours(12)));
        let plan = NodeFaultInjector::new(SimDuration::from_hours(24), 3).crashes_for(&alloc);
        let (tel, rec) = Telemetry::recording();
        record_stall_windows(&tel, 1, &stalls);
        record_crash_plan(&tel, 1, &plan);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), stalls.windows().len());
        assert_eq!(snap.instants.len(), plan.len());
        assert_eq!(snap.counters["node_crashes"], plan.len() as f64);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        record_job_outcomes(&tel, 0, &[]);
        record_stall_windows(&tel, 0, &StallSchedule::none());
        record_crash_plan(&tel, 0, &CrashPlan::none());
        record_utilization_series(&tel, 0, "busy_nodes", &TimeSeries::new());
        record_queue_depth(&tel, 0, SimTime::ZERO, 1.0);
        record_fs_saturation(
            &tel,
            0,
            &StallSchedule::none(),
            SimTime::ZERO,
            SimTime::from_secs(1),
        );
    }

    #[test]
    fn utilization_sampling_records_instants_only() {
        let mut ut = crate::trace::UtilizationTrace::new(4, SimTime::ZERO);
        ut.node_busy(SimTime::from_secs(1));
        ut.node_idle(SimTime::from_secs(60));
        let stalls = StallSchedule::sample(
            SimDuration::from_mins(30),
            SimDuration::from_mins(2),
            6.0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(4),
            11,
        );
        let (tel, rec) = Telemetry::recording();
        record_utilization_series(&tel, 1, "busy_nodes", ut.series());
        record_queue_depth(&tel, 1, SimTime::ZERO, 7.0);
        record_fs_saturation(
            &tel,
            1,
            &stalls,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(4),
        );
        let snap = rec.snapshot();
        assert!(snap.spans.is_empty());
        assert!(
            snap.counters.is_empty(),
            "sampling must not perturb the metrics key set"
        );
        assert!(snap.instants.iter().all(|i| i.category == "util"));
        // busy-node samples carry the step values in recording order
        let busy: Vec<f64> = snap
            .instants
            .iter()
            .filter(|i| i.name == "busy_nodes")
            .map(|i| match i.args[0].1 {
                telemetry::ArgValue::Float(v) => v,
                _ => panic!("value arg must be a float"),
            })
            .collect();
        assert_eq!(busy, vec![0.0, 1.0, 0.0]);
        // fs series starts at 1.0 (no stall at t = 0)
        let fs_first = snap
            .instants
            .iter()
            .find(|i| i.name == "fs_slowdown")
            .expect("fs series recorded");
        assert_eq!(fs_first.args[0].1, telemetry::ArgValue::Float(1.0));
    }
}
