//! Cluster topology descriptions.

use std::fmt;

/// Identifier of a node within a cluster or allocation (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Static description of a machine: how many nodes, how many usable cores
/// per node, and the aggregate parallel-filesystem bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Human-readable machine name (used in traces and manifests).
    pub name: String,
    /// Number of compute nodes.
    pub nodes: u32,
    /// Schedulable cores per node.
    pub cores_per_node: u32,
    /// Aggregate filesystem bandwidth in bytes/second available to jobs.
    pub fs_bandwidth_bps: f64,
}

impl ClusterSpec {
    /// Creates a cluster spec.
    pub fn new(
        name: impl Into<String>,
        nodes: u32,
        cores_per_node: u32,
        fs_bandwidth_bps: f64,
    ) -> Self {
        assert!(
            nodes > 0 && cores_per_node > 0,
            "cluster must have nodes and cores"
        );
        assert!(
            fs_bandwidth_bps > 0.0,
            "filesystem bandwidth must be positive"
        );
        Self {
            name: name.into(),
            nodes,
            cores_per_node,
            fs_bandwidth_bps,
        }
    }

    /// A Summit-like leadership machine: 42 usable cores/node and an
    /// Alpine-class (~2.5 TB/s) shared filesystem. Node count is the
    /// *allocation* size used by the paper's experiments, not the full
    /// 4608-node machine.
    pub fn summit_like(nodes: u32) -> Self {
        Self::new("summit-like", nodes, 42, 2.5e12)
    }

    /// An institutional-cluster profile: 32 cores/node, 40 GB/s shared
    /// filesystem.
    pub fn institutional(nodes: u32) -> Self {
        Self::new("institutional", nodes, 32, 4.0e10)
    }

    /// Total core count.
    pub fn total_cores(&self) -> u64 {
        self.nodes as u64 * self.cores_per_node as u64
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let s = ClusterSpec::summit_like(128);
        assert_eq!(s.nodes, 128);
        assert_eq!(s.total_cores(), 128 * 42);
        let i = ClusterSpec::institutional(20);
        assert_eq!(i.node_ids().count(), 20);
    }

    #[test]
    #[should_panic(expected = "nodes and cores")]
    fn zero_nodes_rejected() {
        ClusterSpec::new("bad", 0, 4, 1.0);
    }
}
