//! Shared parallel-filesystem bandwidth model.
//!
//! On machines like Summit, checkpoint cost is dominated by the *shared*
//! filesystem: the bandwidth a job sees fluctuates with everyone else's
//! I/O. The paper's overhead-driven checkpoint policy (§V-B) exists
//! precisely because of this fluctuation — so the model here captures
//! (a) a finite aggregate bandwidth shared by concurrent writers, and
//! (b) a mean-reverting stochastic background load.
//!
//! The background load is a **pure function of virtual time** (a windowed
//! AR(1) over counter-based innovations): the outside world does not care
//! when *this* job touches the filesystem, so two simulations with the
//! same seed see the identical load timeline no matter how their own I/O
//! interleaves. That property is what makes policy sweeps (Fig. 3)
//! apples-to-apples: every budget faces the same weather.

use crate::time::{SimDuration, SimTime};

/// Length of the AR(1) replay window; after this many steps the process
/// is indistinguishable from its stationary law (phi^192 ≈ 0 for any
/// phi ≤ 0.97).
const AR_WINDOW: u64 = 192;

/// SplitMix64 — a counter-based hash giving i.i.d. 64-bit values.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Standard-normal innovation for step `k` of stream `seed`, via
/// Box–Muller over two counter-derived uniforms.
fn innovation(seed: u64, k: u64) -> f64 {
    let a = splitmix64(seed ^ k.wrapping_mul(0xA076_1D64_78BD_642F));
    let b = splitmix64(a ^ 0xE703_7ED1_A0B4_28DB);
    // map to (0,1]; avoid 0 for the log
    let u1 = ((a >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let u2 = (b >> 11) as f64 / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A mean-reverting (AR(1)) background-load process in `[0, ceiling]`,
/// evaluated as a pure function of time.
#[derive(Debug, Clone, PartialEq)]
pub struct FsLoad {
    /// Long-run mean load fraction.
    pub mean: f64,
    /// Autocorrelation per step (0 = white noise, →1 = slow drift).
    pub phi: f64,
    /// Innovation standard deviation per step.
    pub sigma: f64,
    /// Hard ceiling on the load fraction (< 1 so jobs always progress).
    pub ceiling: f64,
    /// Process step size in virtual time.
    pub step: SimDuration,
    /// Memo of the last evaluated `(seed, step index, value)` so the
    /// common sequential-query pattern replays only the delta.
    memo: Option<(u64, u64, f64)>,
}

impl FsLoad {
    /// Creates a load process.
    pub fn new(mean: f64, phi: f64, sigma: f64, step: SimDuration) -> Self {
        assert!((0.0..1.0).contains(&mean), "mean load must be in [0,1)");
        assert!((0.0..1.0).contains(&phi), "phi must be in [0,1)");
        assert!(sigma >= 0.0);
        assert!(step > SimDuration::ZERO, "step must be positive");
        Self {
            mean,
            phi,
            sigma,
            ceiling: 0.95,
            step,
            memo: None,
        }
    }

    /// A quiet filesystem: constant zero background load.
    pub fn quiet() -> Self {
        Self::new(0.0, 0.5, 0.0, SimDuration::from_secs(1))
    }

    /// A Summit-like busy shared filesystem: ~35% mean load, slow drift,
    /// substantial variance. Tuned so run-to-run checkpoint counts vary
    /// visibly at a 10% overhead budget (Fig. 4's point).
    pub fn busy() -> Self {
        Self::new(0.35, 0.9, 0.12, SimDuration::from_secs(5))
    }

    /// Load fraction at virtual time `now` for innovation stream `seed`.
    ///
    /// Defined as an AR(1) replay over a fixed window of innovations
    /// ending at `now`'s step, starting from the mean — a pure function
    /// of `(seed, now)` regardless of query history. The memo only
    /// shortcuts sequential queries; it never changes the value.
    pub fn load_at(&mut self, now: SimTime, seed: u64) -> f64 {
        if self.sigma == 0.0 {
            return self.mean;
        }
        let k = now.0 / self.step.0;
        if let Some((mseed, mk, mval)) = self.memo {
            if mseed == seed && mk == k {
                return mval;
            }
            // No incremental fast path: extending a previous replay would
            // only match the pure-function definition when window starts
            // align, and a full window replay is cheap (~192 steps), so we
            // always recompute from the window start.
        }
        let start = k.saturating_sub(AR_WINDOW - 1);
        let mut value = self.mean;
        for i in start..=k {
            let eps = innovation(seed, i);
            value = self.mean + self.phi * (value - self.mean) + self.sigma * eps;
            value = value.clamp(0.0, self.ceiling);
        }
        self.memo = Some((seed, k, value));
        value
    }
}

/// A transient filesystem stall: for `[start, end)` all I/O progresses at
/// `1 / slowdown` of its normal rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallWindow {
    /// Stall onset.
    pub start: SimTime,
    /// Stall end (exclusive).
    pub end: SimTime,
    /// Slowdown factor during the window (≥ 1; e.g. 8 = eight times
    /// slower).
    pub slowdown: f64,
}

/// Transient filesystem-stall fault model: Poisson-arriving stall windows
/// (metadata-server hiccups, burst-buffer drains) during which I/O phases
/// run `slowdown`× slower.
///
/// Like [`FsLoad`], a schedule is a pure function of `(spec, seed)` over a
/// horizon, so every policy/scheduler compared under the same seed faces
/// the identical weather. Stalls compose with the background-load model:
/// load shrinks bandwidth continuously, stalls gate it in discrete
/// episodes — the paper's §V-B "failure rate of the underlying system"
/// covers both.
#[derive(Debug, Clone, PartialEq)]
pub struct StallSchedule {
    windows: Vec<StallWindow>,
}

impl StallSchedule {
    /// Samples a schedule over `[start, end)`: stalls arrive with
    /// exponential inter-arrival times of mean `mean_between`, each
    /// lasting `duration` at `slowdown`×.
    pub fn sample(
        mean_between: SimDuration,
        duration: SimDuration,
        slowdown: f64,
        start: SimTime,
        end: SimTime,
        seed: u64,
    ) -> Self {
        assert!(
            mean_between > SimDuration::ZERO,
            "mean gap must be positive"
        );
        assert!(
            duration > SimDuration::ZERO,
            "stall duration must be positive"
        );
        assert!(slowdown >= 1.0, "a stall cannot speed I/O up");
        let mut windows = Vec::new();
        let mut t = start;
        let mut k = 0u64;
        while t < end {
            // counter-based exponential draw: deterministic per (seed, k)
            let bits = splitmix64(seed ^ k.wrapping_mul(0xD6E8_FEB8_6659_FD93));
            let u = ((bits >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
            let gap = -mean_between.as_secs_f64() * u.ln();
            t += SimDuration::from_secs_f64(gap.max(1e-6));
            if t >= end {
                break;
            }
            windows.push(StallWindow {
                start: t,
                end: (t + duration).min(end),
                slowdown,
            });
            t += duration;
            k += 1;
        }
        Self { windows }
    }

    /// A schedule with no stalls.
    pub fn none() -> Self {
        Self {
            windows: Vec::new(),
        }
    }

    /// The stall windows, in time order.
    pub fn windows(&self) -> &[StallWindow] {
        &self.windows
    }

    /// Wall-clock duration of an I/O (or I/O-weighted) phase that starts
    /// at `start` and needs `nominal` of unstalled progress: progress
    /// accrues at full rate outside stall windows and at `1 / slowdown`
    /// inside them.
    pub fn stalled_duration(&self, start: SimTime, nominal: SimDuration) -> SimDuration {
        if nominal == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let mut now = start;
        let mut left = nominal.as_secs_f64();
        for w in &self.windows {
            if w.end <= now {
                continue;
            }
            // full-rate stretch before the window
            if w.start > now {
                let clear = w.start.since(now).as_secs_f64();
                if left <= clear {
                    now += SimDuration::from_secs_f64(left);
                    return now.since(start);
                }
                left -= clear;
                now = w.start;
            }
            // slowed stretch inside the window
            let span = w.end.since(now).as_secs_f64();
            let progress = span / w.slowdown;
            if left <= progress {
                now += SimDuration::from_secs_f64(left * w.slowdown);
                return now.since(start);
            }
            left -= progress;
            now = w.end;
        }
        now += SimDuration::from_secs_f64(left);
        now.since(start)
    }
}

/// The shared filesystem seen by a simulated job.
#[derive(Debug)]
pub struct SharedFs {
    /// Aggregate bandwidth in bytes/second when idle.
    pub base_bandwidth_bps: f64,
    load: FsLoad,
    stalls: StallSchedule,
    seed: u64,
    bytes_written: f64,
    write_time: SimDuration,
}

impl SharedFs {
    /// Creates a filesystem with the given aggregate bandwidth, background
    /// load process and load-stream seed.
    pub fn new(base_bandwidth_bps: f64, load: FsLoad, seed: u64) -> Self {
        assert!(base_bandwidth_bps > 0.0);
        Self {
            base_bandwidth_bps,
            load,
            stalls: StallSchedule::none(),
            seed,
            bytes_written: 0.0,
            write_time: SimDuration::ZERO,
        }
    }

    /// Injects a transient-stall fault schedule; writes overlapping a
    /// stall window are inflated accordingly. Builder-style.
    pub fn with_stalls(mut self, stalls: StallSchedule) -> Self {
        self.stalls = stalls;
        self
    }

    /// The active stall schedule.
    pub fn stalls(&self) -> &StallSchedule {
        &self.stalls
    }

    /// Total bandwidth the job sees at `now` after background load. Never
    /// below 1% of base, so progress is always guaranteed.
    pub fn effective_total_bandwidth(&mut self, now: SimTime) -> f64 {
        let load = self.load.load_at(now, self.seed);
        (self.base_bandwidth_bps * (1.0 - load)).max(self.base_bandwidth_bps * 0.01)
    }

    /// Per-writer slice of [`SharedFs::effective_total_bandwidth`] when
    /// `writers` ranks write concurrently.
    pub fn effective_bandwidth(&mut self, now: SimTime, writers: u32) -> f64 {
        self.effective_total_bandwidth(now) / writers.max(1) as f64
    }

    /// Time to write `bytes` starting at `now` with `writers` concurrent
    /// writer groups sharing the job's slice of bandwidth.
    ///
    /// Writers split within the job but their traffic still sums, so a
    /// collective write of B bytes takes `B / total_bandwidth` regardless
    /// of the writer count.
    pub fn write_duration(&mut self, now: SimTime, bytes: f64, writers: u32) -> SimDuration {
        assert!(bytes >= 0.0);
        if bytes == 0.0 {
            return SimDuration::ZERO;
        }
        let _ = writers; // recorded for realism/debugging hooks later
        let total_bw = self.effective_total_bandwidth(now);
        let secs = bytes / total_bw;
        self.bytes_written += bytes;
        let d = self
            .stalls
            .stalled_duration(now, SimDuration::from_secs_f64(secs));
        self.write_time += d;
        d
    }

    /// Total bytes written through this filesystem handle.
    pub fn bytes_written(&self) -> f64 {
        self.bytes_written
    }

    /// Total virtual time spent writing.
    pub fn total_write_time(&self) -> SimDuration {
        self.write_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_fs_is_deterministic_rate() {
        let mut fs = SharedFs::new(1e9, FsLoad::quiet(), 1);
        let d = fs.write_duration(SimTime::ZERO, 2e9, 1);
        assert_eq!(d, SimDuration::from_secs(2));
    }

    #[test]
    fn busy_fs_is_slower_than_quiet() {
        let mut quiet = SharedFs::new(1e9, FsLoad::quiet(), 1);
        let mut busy = SharedFs::new(1e9, FsLoad::busy(), 1);
        let t = SimTime::from_secs(1000);
        let dq = quiet.write_duration(t, 1e9, 1);
        let db = busy.write_duration(t, 1e9, 1);
        assert!(db > dq, "busy={db} quiet={dq}");
    }

    #[test]
    fn load_is_reproducible_for_same_seed() {
        let sample = |seed| {
            let mut fs = SharedFs::new(1e9, FsLoad::busy(), seed);
            (0..20)
                .map(|i| fs.write_duration(SimTime::from_secs(i * 60), 1e9, 4).0)
                .collect::<Vec<u64>>()
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }

    #[test]
    fn load_is_a_pure_function_of_time() {
        // querying t=5000 directly equals querying it after a detour —
        // the property that makes policy sweeps share one environment
        let mut a = FsLoad::busy();
        let direct = a.load_at(SimTime::from_secs(5000), 9);
        let mut b = FsLoad::busy();
        b.load_at(SimTime::from_secs(10), 9);
        b.load_at(SimTime::from_secs(1234), 9);
        b.load_at(SimTime::from_secs(4999), 9);
        let detoured = b.load_at(SimTime::from_secs(5000), 9);
        assert_eq!(direct, detoured);
    }

    #[test]
    fn load_within_bounds_and_varies() {
        let mut load = FsLoad::busy();
        let values: Vec<f64> = (0..200)
            .map(|i| load.load_at(SimTime::from_secs(i * 30), 3))
            .collect();
        assert!(values.iter().all(|&v| (0.0..=0.95).contains(&v)));
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.1, "expected variation, got [{min}, {max}]");
    }

    #[test]
    fn load_is_autocorrelated() {
        // adjacent steps should be closer on average than distant ones
        let mut load = FsLoad::busy();
        let vals: Vec<f64> = (0..500)
            .map(|i| load.load_at(SimTime(i * load.step.0), 11))
            .collect();
        let adjacent: f64 =
            vals.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (vals.len() - 1) as f64;
        let distant: f64 = vals
            .iter()
            .zip(vals.iter().skip(100))
            .map(|(a, b)| (b - a).abs())
            .sum::<f64>()
            / (vals.len() - 100) as f64;
        assert!(
            adjacent < distant,
            "adjacent mean delta {adjacent} should be below 100-step delta {distant}"
        );
    }

    #[test]
    fn writer_count_does_not_change_collective_time() {
        // A collective write of the same total bytes takes the same time
        // regardless of how many writers split it (they share bandwidth).
        let t = SimTime::from_secs(10);
        let mut fs1 = SharedFs::new(1e9, FsLoad::quiet(), 1);
        let mut fs2 = SharedFs::new(1e9, FsLoad::quiet(), 1);
        let a = fs1.write_duration(t, 8e9, 1);
        let b = fs2.write_duration(t, 8e9, 4096);
        assert_eq!(a, b);
    }

    #[test]
    fn stall_free_phase_is_nominal() {
        let s = StallSchedule::none();
        assert_eq!(
            s.stalled_duration(SimTime::from_secs(10), SimDuration::from_secs(100)),
            SimDuration::from_secs(100)
        );
    }

    #[test]
    fn stall_inflates_overlapping_phase_only() {
        // one 60 s stall at 8× starting at t=100
        let s = StallSchedule {
            windows: vec![StallWindow {
                start: SimTime::from_secs(100),
                end: SimTime::from_secs(160),
                slowdown: 8.0,
            }],
        };
        // phase entirely before the stall: unaffected
        assert_eq!(
            s.stalled_duration(SimTime::ZERO, SimDuration::from_secs(50)),
            SimDuration::from_secs(50)
        );
        // phase starting inside the stall, needing 10 s of progress: the
        // window has 60 s / 8 = 7.5 s of progress, the rest runs clear
        let d = s.stalled_duration(SimTime::from_secs(100), SimDuration::from_secs(10));
        assert_eq!(d, SimDuration::from_secs_f64(60.0 + 2.5));
        // phase straddling the onset: 50 s clear + stalled remainder
        let d2 = s.stalled_duration(SimTime::from_secs(50), SimDuration::from_secs(55));
        assert_eq!(d2, SimDuration::from_secs_f64(50.0 + 5.0 * 8.0));
    }

    #[test]
    fn sampled_stalls_are_deterministic_and_in_horizon() {
        let sample = |seed| {
            StallSchedule::sample(
                SimDuration::from_mins(30),
                SimDuration::from_mins(2),
                6.0,
                SimTime::ZERO,
                SimTime::from_secs(3600 * 12),
                seed,
            )
        };
        let a = sample(4);
        assert_eq!(a, sample(4));
        assert_ne!(a, sample(5));
        assert!(!a.windows().is_empty());
        assert!(a
            .windows()
            .iter()
            .all(|w| w.start < w.end && w.end <= SimTime::from_secs(3600 * 12)));
        assert!(a.windows().windows(2).all(|p| p[0].end <= p[1].start));
    }

    #[test]
    fn stalled_fs_writes_slower() {
        let stalls = StallSchedule {
            windows: vec![StallWindow {
                start: SimTime::ZERO,
                end: SimTime::from_secs(1000),
                slowdown: 4.0,
            }],
        };
        let mut plain = SharedFs::new(1e9, FsLoad::quiet(), 1);
        let mut stalled = SharedFs::new(1e9, FsLoad::quiet(), 1).with_stalls(stalls);
        let a = plain.write_duration(SimTime::ZERO, 1e9, 1);
        let b = stalled.write_duration(SimTime::ZERO, 1e9, 1);
        assert_eq!(a, SimDuration::from_secs(1));
        assert_eq!(b, SimDuration::from_secs(4));
    }

    #[test]
    fn accounting_accumulates() {
        let mut fs = SharedFs::new(1e9, FsLoad::quiet(), 1);
        fs.write_duration(SimTime::ZERO, 1e9, 1);
        fs.write_duration(SimTime::from_secs(5), 1e9, 1);
        assert_eq!(fs.bytes_written(), 2e9);
        assert_eq!(fs.total_write_time(), SimDuration::from_secs(2));
    }
}
