//! The discrete-event engine.
//!
//! A [`Simulation`] owns the virtual clock and a time-ordered event queue;
//! the *world state* lives in a user type implementing [`EventHandler`].
//! Handling an event may schedule further events, which is how processes
//! (task completions, filesystem load shifts, failures) are chained.
//!
//! Ties in time are broken by insertion order (a monotone sequence
//! number), so simulations are fully deterministic.
//!
//! # Queue implementation
//!
//! The queue is a *calendar queue* (Brown 1988) rather than a binary
//! heap: pending events live in a slab (`Vec` plus free list, so slots
//! are reused without allocator traffic), and the slab indices are
//! distributed over an array of time buckets of adaptive width. A push
//! is O(1) — compute the bucket, append the index. A pop scans forward
//! from the clock's bucket and takes the earliest `(at, seq)` entry of
//! the first non-empty bucket tick, so the heap's O(log n) sift — and
//! its habit of moving whole event payloads between heap slots on every
//! sift — is gone; payloads sit still in the slab until handled. The
//! bucket count and width are rebuilt from the live event population
//! when the queue grows or shrinks past its balance thresholds, keeping
//! roughly O(1) amortized pops across workload scales.
//!
//! Ordering is *identical* to the heap's: pops come out in ascending
//! `(at, seq)`. `tests/event_core_differential.rs` pins that equivalence
//! against a reference binary-heap implementation property-style.

use crate::time::{SimDuration, SimTime};

/// World-state callback: receives each event in time order and may
/// schedule new ones.
pub trait EventHandler {
    /// The event payload type.
    type Event;

    /// Handles one event at virtual time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sim: &mut Simulation<Self::Event>);
}

/// One pending event in the slab.
struct Slot<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

/// Fewest buckets the wheel ever uses.
const MIN_BUCKETS: usize = 4;
/// Starting bucket width (µs) before the first adaptive rebuild.
const DEFAULT_WIDTH: u64 = 1_000_000;
/// How many head-most events the width estimate is sampled from.
const WIDTH_SAMPLE: usize = 32;
/// A rebuild is triggered when the mean bucket-scan work per pop since
/// the last rebuild exceeds this (a balanced wheel costs ~2-3).
const SCAN_WORK_LIMIT: u64 = 16;
/// Fewest pops between degradation-triggered rebuilds, amortizing the
/// O(len) redistribution.
const REBUILD_FLOOR: u64 = 64;

/// The event queue plus virtual clock.
pub struct Simulation<E> {
    /// Event storage; `None` slots are free and listed in `free`.
    slab: Vec<Option<Slot<E>>>,
    free: Vec<u32>,
    /// `buckets[tick % buckets.len()]` holds the slab indices of events
    /// in bucket-tick `tick` (`tick = at / width`), unordered.
    buckets: Vec<Vec<u32>>,
    /// Bucket width in microseconds (always ≥ 1).
    width: u64,
    /// The earliest bucket tick any pending event can occupy; pops scan
    /// forward from here.
    cursor_tick: u64,
    /// Pending event count.
    len: usize,
    /// Pops since the last rebuild, with the bucket-scan work they cost —
    /// the degradation signal that triggers an adaptive re-size.
    ops_since_rebuild: u64,
    scan_work: u64,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation at t = 0.
    pub fn new() -> Self {
        Self {
            slab: Vec::new(),
            free: Vec::new(),
            buckets: vec![Vec::new(); MIN_BUCKETS],
            width: DEFAULT_WIDTH,
            cursor_tick: 0,
            len: 0,
            ops_since_rebuild: 0,
            scan_work: 0,
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.len
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is in the simulated past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx as usize] = Some(Slot { at, seq, event });
                idx
            }
            None => {
                self.slab.push(Some(Slot { at, seq, event }));
                (self.slab.len() - 1) as u32
            }
        };
        let bucket = self.bucket_of(at);
        self.buckets[bucket].push(idx);
        self.len += 1;
        if self.len > self.buckets.len() * 2 {
            self.rebuild();
        }
    }

    /// Schedules `event` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    fn bucket_of(&self, at: SimTime) -> usize {
        let tick = at.0 / self.width;
        (tick & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Resizes the wheel to the live population: bucket count the next
    /// power of two ≥ `len`, width the mean inter-event gap among the
    /// [`WIDTH_SAMPLE`] events *nearest the clock* (Brown's sampling rule:
    /// pops happen at the head, so the head's local density — not the
    /// global span, which a few far-future events can stretch by orders
    /// of magnitude — is what the bucket width must match). All entries
    /// are redistributed; `cursor_tick` restarts at the clock's tick,
    /// which lower-bounds every pending event (`schedule_at` forbids the
    /// past).
    fn rebuild(&mut self) {
        let n = self.len.next_power_of_two().max(MIN_BUCKETS);
        let mut ats: Vec<u64> = self.slab.iter().flatten().map(|slot| slot.at.0).collect();
        let k = ats.len().min(WIDTH_SAMPLE);
        if ats.len() > k {
            ats.select_nth_unstable(k - 1);
            ats.truncate(k);
        }
        ats.sort_unstable();
        self.width = if k > 1 {
            ((ats[k - 1] - ats[0]) / (k as u64 - 1)).max(1)
        } else {
            DEFAULT_WIDTH
        };
        self.cursor_tick = self.now.0 / self.width;
        self.ops_since_rebuild = 0;
        self.scan_work = 0;
        let mut buckets = vec![Vec::new(); n];
        let mask = n as u64 - 1;
        for (i, slot) in self.slab.iter().enumerate() {
            if let Some(slot) = slot {
                let tick = slot.at.0 / self.width;
                buckets[(tick & mask) as usize].push(i as u32);
            }
        }
        self.buckets = buckets;
    }

    /// Position (bucket, offset) of the minimum-`(at, seq)` entry in
    /// `bucket` restricted to bucket-tick `tick`, if any.
    fn min_in_tick(&self, bucket: usize, tick: u64) -> Option<(usize, SimTime, u64)> {
        let mut best: Option<(usize, SimTime, u64)> = None;
        for (pos, &idx) in self.buckets[bucket].iter().enumerate() {
            let slot = self.slab[idx as usize]
                .as_ref()
                .expect("bucketed slot live");
            if slot.at.0 / self.width != tick {
                continue;
            }
            if best.is_none_or(|(_, at, seq)| (slot.at, slot.seq) < (at, seq)) {
                best = Some((pos, slot.at, slot.seq));
            }
        }
        best
    }

    /// Removes and returns the earliest `(at, seq)` event, unless its
    /// time exceeds `bound` (then the queue is left untouched).
    ///
    /// Scans at most one wheel rotation from `cursor_tick`; if a whole
    /// rotation is empty (events far sparser than the wheel span), falls
    /// back to a direct scan of every bucket and jumps the cursor to the
    /// hit — the standard calendar-queue escape hatch for gaps.
    ///
    /// Each pop also charges its scan cost against a degradation budget:
    /// when the mean work per pop since the last rebuild exceeds
    /// [`SCAN_WORK_LIMIT`], the next pop re-sizes the wheel first. This
    /// is what keeps the queue O(1) under *drifting* density — a steady
    /// `len` never crosses the grow/shrink thresholds, but the head
    /// cluster the cursor is eating through can still be far denser than
    /// the width chosen at the last rebuild.
    fn pop_min(&mut self, bound: Option<SimTime>) -> Option<Slot<E>> {
        if self.len == 0 {
            return None;
        }
        if self.ops_since_rebuild >= REBUILD_FLOOR
            && self.scan_work > self.ops_since_rebuild * SCAN_WORK_LIMIT
        {
            self.rebuild();
        }
        self.ops_since_rebuild += 1;
        let n = self.buckets.len();
        let mask = n as u64 - 1;
        for step in 0..n as u64 {
            let tick = self.cursor_tick.wrapping_add(step);
            let bucket = (tick & mask) as usize;
            self.scan_work += 1 + self.buckets[bucket].len() as u64;
            if let Some((pos, at, _)) = self.min_in_tick(bucket, tick) {
                self.cursor_tick = tick;
                if bound.is_some_and(|b| at > b) {
                    return None;
                }
                return Some(self.take(bucket, pos));
            }
        }
        // Sparse region: no event within one rotation of the cursor.
        self.scan_work += (n + self.len) as u64;
        let mut best: Option<(usize, usize, SimTime, u64)> = None;
        for bucket in 0..n {
            for (pos, &idx) in self.buckets[bucket].iter().enumerate() {
                let slot = self.slab[idx as usize]
                    .as_ref()
                    .expect("bucketed slot live");
                if best.is_none_or(|(_, _, at, seq)| (slot.at, slot.seq) < (at, seq)) {
                    best = Some((bucket, pos, slot.at, slot.seq));
                }
            }
        }
        let (bucket, pos, at, _) = best.expect("len > 0 but no bucketed entry");
        self.cursor_tick = at.0 / self.width;
        if bound.is_some_and(|b| at > b) {
            return None;
        }
        Some(self.take(bucket, pos))
    }

    fn take(&mut self, bucket: usize, pos: usize) -> Slot<E> {
        let idx = self.buckets[bucket].swap_remove(pos);
        let slot = self.slab[idx as usize].take().expect("taken slot live");
        self.free.push(idx);
        self.len -= 1;
        if self.len * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.rebuild();
        }
        slot
    }

    /// Runs until the queue drains or `deadline` is reached, whichever is
    /// first. Events scheduled exactly at the deadline still run; later
    /// events remain queued. Returns the number of events handled.
    pub fn run_until<H>(&mut self, handler: &mut H, deadline: SimTime) -> u64
    where
        H: EventHandler<Event = E>,
    {
        let mut handled = 0;
        while let Some(item) = self.pop_min(Some(deadline)) {
            self.now = item.at;
            self.processed += 1;
            handled += 1;
            handler.handle(self.now, item.event, self);
        }
        // Advance the clock to the deadline even if the queue drained early,
        // so wall-clock-bounded simulations (allocations) report full spans.
        if self.now < deadline {
            self.now = deadline;
        }
        handled
    }

    /// Runs until the event queue is completely drained.
    pub fn run_to_completion<H>(&mut self, handler: &mut H) -> u64
    where
        H: EventHandler<Event = E>,
    {
        let mut handled = 0;
        while let Some(item) = self.pop_min(None) {
            self.now = item.at;
            self.processed += 1;
            handled += 1;
            handler.handle(self.now, item.event, self);
        }
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Chain(u32),
    }

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl EventHandler for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, sim: &mut Simulation<Ev>) {
            match ev {
                Ev::Ping(id) => self.seen.push((now, id)),
                Ev::Chain(depth) => {
                    self.seen.push((now, 1000 + depth));
                    if depth > 0 {
                        sim.schedule_in(SimDuration::from_secs(1), Ev::Chain(depth - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulation::new();
        let mut world = Recorder::default();
        sim.schedule_at(SimTime::from_secs(3), Ev::Ping(3));
        sim.schedule_at(SimTime::from_secs(1), Ev::Ping(1));
        sim.schedule_at(SimTime::from_secs(2), Ev::Ping(2));
        sim.run_to_completion(&mut world);
        let ids: Vec<u32> = world.seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Simulation::new();
        let mut world = Recorder::default();
        for id in 0..5 {
            sim.schedule_at(SimTime::from_secs(1), Ev::Ping(id));
        }
        sim.run_to_completion(&mut world);
        let ids: Vec<u32> = world.seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = Simulation::new();
        let mut world = Recorder::default();
        sim.schedule_at(SimTime::ZERO, Ev::Chain(3));
        sim.run_to_completion(&mut world);
        assert_eq!(world.seen.len(), 4);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn run_until_respects_deadline_inclusively() {
        let mut sim = Simulation::new();
        let mut world = Recorder::default();
        sim.schedule_at(SimTime::from_secs(1), Ev::Ping(1));
        sim.schedule_at(SimTime::from_secs(2), Ev::Ping(2));
        sim.schedule_at(SimTime::from_secs(3), Ev::Ping(3));
        let handled = sim.run_until(&mut world, SimTime::from_secs(2));
        assert_eq!(handled, 2);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn run_until_advances_clock_when_queue_drains() {
        let mut sim: Simulation<Ev> = Simulation::new();
        let mut world = Recorder::default();
        sim.run_until(&mut world, SimTime::from_secs(100));
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulation::new();
        let mut world = Recorder::default();
        sim.schedule_at(SimTime::from_secs(5), Ev::Ping(1));
        sim.run_to_completion(&mut world);
        sim.schedule_at(SimTime::from_secs(1), Ev::Ping(2));
    }

    #[test]
    fn growth_and_shrink_keep_order_across_rebuilds() {
        // Push enough events to force several wheel rebuilds, with a mix
        // of clustered ties and a sparse far-future stragglers region.
        let mut sim = Simulation::new();
        let mut world = Recorder::default();
        let mut expect: Vec<(u64, u32)> = Vec::new();
        let mut id = 0u32;
        for i in 0..200u64 {
            let at = (i * 37) % 91; // collisions on purpose
            sim.schedule_at(SimTime::from_secs(at), Ev::Ping(id));
            expect.push((at, id));
            id += 1;
        }
        for i in 0..8u64 {
            let at = 1_000_000 + i * 500_000; // sparse tail, huge gap
            sim.schedule_at(SimTime::from_secs(at), Ev::Ping(id));
            expect.push((at, id));
            id += 1;
        }
        sim.run_to_completion(&mut world);
        // stable by (time, insertion order) — the engine's contract
        expect.sort_by_key(|&(at, id)| (at, id));
        let got: Vec<(u64, u32)> = world
            .seen
            .iter()
            .map(|&(t, id)| (t.0 / 1_000_000, id))
            .collect();
        assert_eq!(got, expect);
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.events_processed(), 208);
    }

    #[test]
    fn deadline_peek_does_not_disturb_the_queue() {
        // A run_until that pops nothing (all events past the deadline)
        // must leave every event in place and poppable later.
        let mut sim = Simulation::new();
        let mut world = Recorder::default();
        for i in 0..20 {
            sim.schedule_at(SimTime::from_secs(100 + i as u64), Ev::Ping(i));
        }
        assert_eq!(sim.run_until(&mut world, SimTime::from_secs(50)), 0);
        assert_eq!(sim.pending(), 20);
        assert_eq!(sim.run_to_completion(&mut world), 20);
        let ids: Vec<u32> = world.seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }
}
