//! The discrete-event engine.
//!
//! A [`Simulation`] owns the virtual clock and a time-ordered event queue;
//! the *world state* lives in a user type implementing [`EventHandler`].
//! Handling an event may schedule further events, which is how processes
//! (task completions, filesystem load shifts, failures) are chained.
//!
//! Ties in time are broken by insertion order (a monotone sequence
//! number), so simulations are fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// World-state callback: receives each event in time order and may
/// schedule new ones.
pub trait EventHandler {
    /// The event payload type.
    type Event;

    /// Handles one event at virtual time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sim: &mut Simulation<Self::Event>);
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event queue plus virtual clock.
pub struct Simulation<E> {
    queue: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation at t = 0.
    pub fn new() -> Self {
        Self {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is in the simulated past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Runs until the queue drains or `deadline` is reached, whichever is
    /// first. Events scheduled exactly at the deadline still run; later
    /// events remain queued. Returns the number of events handled.
    pub fn run_until<H>(&mut self, handler: &mut H, deadline: SimTime) -> u64
    where
        H: EventHandler<Event = E>,
    {
        let mut handled = 0;
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            let item = self.queue.pop().expect("peeked event vanished");
            self.now = item.at;
            self.processed += 1;
            handled += 1;
            handler.handle(self.now, item.event, self);
        }
        // Advance the clock to the deadline even if the queue drained early,
        // so wall-clock-bounded simulations (allocations) report full spans.
        if self.now < deadline {
            self.now = deadline;
        }
        handled
    }

    /// Runs until the event queue is completely drained.
    pub fn run_to_completion<H>(&mut self, handler: &mut H) -> u64
    where
        H: EventHandler<Event = E>,
    {
        let mut handled = 0;
        while let Some(item) = self.queue.pop() {
            self.now = item.at;
            self.processed += 1;
            handled += 1;
            handler.handle(self.now, item.event, self);
        }
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Chain(u32),
    }

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl EventHandler for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, sim: &mut Simulation<Ev>) {
            match ev {
                Ev::Ping(id) => self.seen.push((now, id)),
                Ev::Chain(depth) => {
                    self.seen.push((now, 1000 + depth));
                    if depth > 0 {
                        sim.schedule_in(SimDuration::from_secs(1), Ev::Chain(depth - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulation::new();
        let mut world = Recorder::default();
        sim.schedule_at(SimTime::from_secs(3), Ev::Ping(3));
        sim.schedule_at(SimTime::from_secs(1), Ev::Ping(1));
        sim.schedule_at(SimTime::from_secs(2), Ev::Ping(2));
        sim.run_to_completion(&mut world);
        let ids: Vec<u32> = world.seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Simulation::new();
        let mut world = Recorder::default();
        for id in 0..5 {
            sim.schedule_at(SimTime::from_secs(1), Ev::Ping(id));
        }
        sim.run_to_completion(&mut world);
        let ids: Vec<u32> = world.seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = Simulation::new();
        let mut world = Recorder::default();
        sim.schedule_at(SimTime::ZERO, Ev::Chain(3));
        sim.run_to_completion(&mut world);
        assert_eq!(world.seen.len(), 4);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn run_until_respects_deadline_inclusively() {
        let mut sim = Simulation::new();
        let mut world = Recorder::default();
        sim.schedule_at(SimTime::from_secs(1), Ev::Ping(1));
        sim.schedule_at(SimTime::from_secs(2), Ev::Ping(2));
        sim.schedule_at(SimTime::from_secs(3), Ev::Ping(3));
        let handled = sim.run_until(&mut world, SimTime::from_secs(2));
        assert_eq!(handled, 2);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn run_until_advances_clock_when_queue_drains() {
        let mut sim: Simulation<Ev> = Simulation::new();
        let mut world = Recorder::default();
        sim.run_until(&mut world, SimTime::from_secs(100));
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulation::new();
        let mut world = Recorder::default();
        sim.schedule_at(SimTime::from_secs(5), Ev::Ping(1));
        sim.run_to_completion(&mut world);
        sim.schedule_at(SimTime::from_secs(1), Ev::Ping(2));
    }
}
