//! Integer virtual time.
//!
//! Simulated time is a `u64` count of **microseconds** since the start of
//! the simulation. Integer time keeps event ordering exact and runs
//! reproducible across platforms (no floating-point accumulation drift).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The last representable instant (~584 thousand years in).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Instant from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Instant as fractional hours (handy for figure axes).
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Duration from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Duration from fractional seconds (rounded to the nearest µs, at
    /// least 1 µs for positive inputs so events always make progress).
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "durations must be finite and non-negative, got {secs}"
        );
        let micros = (secs * 1e6).round() as u64;
        if secs > 0.0 && micros == 0 {
            SimDuration(1)
        } else {
            SimDuration(micros)
        }
    }

    /// Duration from whole minutes.
    pub fn from_mins(mins: u64) -> Self {
        Self::from_secs(mins * 60)
    }

    /// Duration from whole hours.
    pub fn from_hours(hours: u64) -> Self {
        Self::from_secs(hours * 3600)
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative factor.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0);
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Multiplies by an arbitrary non-negative factor, saturating instead
    /// of panicking: `+inf` (and any product beyond `u64::MAX` µs)
    /// saturates to [`SimDuration::MAX`], `NaN` is treated as zero. The
    /// non-panicking twin of [`SimDuration::mul_f64`] for factors computed
    /// from user-supplied policy knobs (e.g. exponential backoff).
    pub fn saturating_mul_f64(self, factor: f64) -> SimDuration {
        if factor.is_nan() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        let product = self.0 as f64 * factor;
        if product >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(product.round() as u64)
        }
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

// Time arithmetic saturates at the representable extremes rather than
// overflowing: a saturated `u64::MAX` duration (e.g. a capped backoff)
// added to any instant must yield "the end of time", not a panic in debug
// builds and a silent wraparound *into the past* in release builds.
impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        assert!(self.0 >= rhs.0, "negative SimTime difference");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(self.0 >= rhs.0, "negative SimDuration difference");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_roundtrips() {
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_hours(2), SimDuration::from_mins(120));
        assert_eq!(SimTime::from_secs(3).as_secs_f64(), 3.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
        assert_eq!(SimDuration::from_secs(4) / 2, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(4) * 3, SimDuration::from_secs(12));
    }

    #[test]
    fn from_secs_f64_never_rounds_positive_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration(1));
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration(0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn add_saturates_instead_of_overflowing() {
        // Regression: `SimTime + SimDuration` used unchecked `+`, which
        // panicked in debug builds and wrapped into the past in release
        // builds once a capped backoff or far-future deadline pushed the
        // sum past u64::MAX.
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime(u64::MAX - 1) + SimDuration(5), SimTime::MAX);
        let mut t = SimTime(u64::MAX - 1);
        t += SimDuration::from_hours(1);
        assert_eq!(t, SimTime::MAX);

        assert_eq!(SimDuration::MAX + SimDuration(1), SimDuration::MAX);
        let mut d = SimDuration(u64::MAX - 1);
        d += SimDuration(5);
        assert_eq!(d, SimDuration::MAX);
    }

    #[test]
    fn saturating_mul_f64_handles_extremes() {
        let hour = SimDuration::from_hours(1);
        assert_eq!(hour.saturating_mul_f64(2.0), SimDuration::from_hours(2));
        assert_eq!(hour.saturating_mul_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(hour.saturating_mul_f64(1e300), SimDuration::MAX);
        assert_eq!(hour.saturating_mul_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(hour.saturating_mul_f64(-3.0), SimDuration::ZERO);
        assert_eq!(hour.saturating_mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(1));
    }
}
