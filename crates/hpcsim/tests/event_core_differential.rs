//! Differential oracle for the calendar-queue event core.
//!
//! The engine's contract is exactly a binary heap's: events pop in
//! ascending `(time, insertion seq)`. This test keeps a *reference*
//! binary-heap engine (the pre-calendar-queue implementation, verbatim)
//! and drives both engines through identical randomized programs —
//! interleaved schedules (with deliberate same-time ties), bounded
//! `run_until` windows, and handler-chained events — asserting the full
//! handled log, clock, and counters stay identical.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use hpcsim::engine::{EventHandler, Simulation};
use hpcsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

// ---- reference implementation: the original BinaryHeap engine ----

struct Scheduled {
    at: SimTime,
    seq: u64,
    event: u32,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct RefSim {
    queue: BinaryHeap<Scheduled>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl RefSim {
    fn schedule_at(&mut self, at: SimTime, event: u32) {
        assert!(at >= self.now, "reference: schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    fn run_until(&mut self, world: &mut World, deadline: SimTime) -> u64 {
        let mut handled = 0;
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            let item = self.queue.pop().expect("peeked event vanished");
            self.now = item.at;
            self.processed += 1;
            handled += 1;
            let now = self.now;
            world.handle_ref(now, item.event, self);
        }
        if self.now < deadline {
            self.now = deadline;
        }
        handled
    }

    fn run_to_completion(&mut self, world: &mut World) -> u64 {
        let mut handled = 0;
        while let Some(item) = self.queue.pop() {
            self.now = item.at;
            self.processed += 1;
            handled += 1;
            let now = self.now;
            world.handle_ref(now, item.event, self);
        }
        handled
    }
}

// ---- shared world: logs events, chains some, identically on both ----

/// `chain_delay(ev)`: events with `ev % 7 == 3` schedule one follow-up.
/// The follow-up id never satisfies the predicate again (`+1000` shifts
/// the residue), so chains terminate.
fn chain(ev: u32) -> Option<(SimDuration, u32)> {
    (ev % 7 == 3).then(|| (SimDuration((u64::from(ev) % 11) * 250_000), ev + 1000))
}

#[derive(Default)]
struct World {
    log: Vec<(u64, u32)>,
}

impl EventHandler for World {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, sim: &mut Simulation<u32>) {
        self.log.push((now.0, ev));
        if let Some((delay, next)) = chain(ev) {
            sim.schedule_in(delay, next);
        }
    }
}

impl World {
    fn handle_ref(&mut self, now: SimTime, ev: u32, sim: &mut RefSim) {
        self.log.push((now.0, ev));
        if let Some((delay, next)) = chain(ev) {
            sim.schedule_at(now + delay, next);
        }
    }
}

// ---- the randomized program ----

#[derive(Debug, Clone)]
enum Op {
    /// Schedule a fresh event at `now + delay_us`.
    Schedule { delay_us: u64 },
    /// Run both engines until `now + ahead_us` (inclusive deadline).
    RunUntil { ahead_us: u64 },
    /// Drain both engines completely.
    Drain,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Built from plain integer tuples (not prop_oneof) so the mix is the
    // same under any strategy backend. Delays cluster on a handful of
    // values so same-time ties are common, with occasional huge gaps to
    // push the wheel into its sparse path.
    (0u8..16, any::<u64>()).prop_map(|(kind, raw)| match kind {
        0..=11 => {
            let delay_us = match raw % 10 {
                0..=2 => 0,
                3..=5 => 1_000_000,
                6 => 250_000 * (raw / 10 % 4),
                7 => raw / 10 % 10_000_000,
                8 => 3_600_000_000,
                _ => raw / 10 % 100_000_000_000,
            };
            Op::Schedule { delay_us }
        }
        12..=14 => Op::RunUntil {
            ahead_us: raw % 20_000_000,
        },
        _ => Op::Drain,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn calendar_queue_matches_reference_heap(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut sim: Simulation<u32> = Simulation::new();
        let mut world = World::default();
        let mut rsim = RefSim::default();
        let mut rworld = World::default();
        let mut next_id = 0u32;

        for op in &ops {
            match *op {
                Op::Schedule { delay_us } => {
                    let at = SimTime(sim.now().0 + delay_us);
                    sim.schedule_at(at, next_id);
                    rsim.schedule_at(SimTime(rsim.now.0 + delay_us), next_id);
                    next_id += 1;
                }
                Op::RunUntil { ahead_us } => {
                    let deadline = SimTime(sim.now().0 + ahead_us);
                    let a = sim.run_until(&mut world, deadline);
                    let b = rsim.run_until(&mut rworld, SimTime(rsim.now.0 + ahead_us));
                    prop_assert_eq!(a, b, "run_until handled counts diverged");
                }
                Op::Drain => {
                    let a = sim.run_to_completion(&mut world);
                    let b = rsim.run_to_completion(&mut rworld);
                    prop_assert_eq!(a, b, "drain handled counts diverged");
                }
            }
            prop_assert_eq!(sim.now(), rsim.now);
            prop_assert_eq!(sim.pending(), rsim.queue.len());
        }
        sim.run_to_completion(&mut world);
        rsim.run_to_completion(&mut rworld);

        prop_assert_eq!(&world.log, &rworld.log, "pop order diverged");
        prop_assert_eq!(sim.now(), rsim.now);
        prop_assert_eq!(sim.pending(), 0usize);
        prop_assert_eq!(sim.events_processed(), rsim.processed);
    }

    // Pure tie storm: every event at the same instant must come out in
    // exact insertion order regardless of wheel geometry.
    #[test]
    fn same_time_ties_pop_in_insertion_order(count in 1usize..300, at_us in 0u64..10_000_000) {
        let mut sim: Simulation<u32> = Simulation::new();
        let mut world = World::default();
        for id in 0..count as u32 {
            // avoid the chain predicate: ids scaled by 7 never hit ev % 7 == 3
            sim.schedule_at(SimTime(at_us), id * 7);
        }
        sim.run_to_completion(&mut world);
        let ids: Vec<u32> = world.log.iter().map(|&(_, id)| id).collect();
        prop_assert_eq!(ids, (0..count as u32).map(|i| i * 7).collect::<Vec<_>>());
    }
}
