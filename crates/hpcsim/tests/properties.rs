//! Property tests: event engine ordering, time arithmetic, traces,
//! allocation series.

use hpcsim::batch::{AllocationSeries, BatchJob};
use hpcsim::engine::{EventHandler, Simulation};
use hpcsim::time::{SimDuration, SimTime};
use hpcsim::trace::TimeSeries;
use proptest::prelude::*;

struct Collector {
    seen: Vec<(SimTime, u32)>,
}

impl EventHandler for Collector {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, _sim: &mut Simulation<u32>) {
        self.seen.push((now, ev));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn events_always_delivered_in_time_then_insertion_order(
        times in proptest::collection::vec(0u64..10_000, 1..60)
    ) {
        let mut sim = Simulation::new();
        let mut world = Collector { seen: Vec::new() };
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime(t), i as u32);
        }
        sim.run_to_completion(&mut world);
        prop_assert_eq!(world.seen.len(), times.len());
        // non-decreasing times; ties keep insertion order
        for w in world.seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    #[test]
    fn run_until_is_a_prefix_of_run_to_completion(
        times in proptest::collection::vec(0u64..10_000, 1..60),
        deadline in 0u64..10_000,
    ) {
        let schedule = |sim: &mut Simulation<u32>| {
            for (i, &t) in times.iter().enumerate() {
                sim.schedule_at(SimTime(t), i as u32);
            }
        };
        let mut full_sim = Simulation::new();
        let mut full = Collector { seen: Vec::new() };
        schedule(&mut full_sim);
        full_sim.run_to_completion(&mut full);

        let mut part_sim = Simulation::new();
        let mut part = Collector { seen: Vec::new() };
        schedule(&mut part_sim);
        part_sim.run_until(&mut part, SimTime(deadline));
        prop_assert_eq!(&full.seen[..part.seen.len()], &part.seen[..]);
        prop_assert!(part.seen.iter().all(|&(t, _)| t <= SimTime(deadline)));
    }

    #[test]
    fn duration_arithmetic_consistent(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let da = SimDuration(a);
        let db = SimDuration(b);
        prop_assert_eq!((da + db).0, a + b);
        prop_assert_eq!(da.saturating_sub(db).0, a.saturating_sub(b));
        let t = SimTime(a) + db;
        prop_assert_eq!(t - SimTime(a), db);
    }

    #[test]
    fn from_secs_f64_roundtrip(secs in 0.0f64..1e6) {
        let d = SimDuration::from_secs_f64(secs);
        prop_assert!((d.as_secs_f64() - secs).abs() < 1e-6 + secs * 1e-9);
    }

    #[test]
    fn timeseries_integral_is_additive(
        points in proptest::collection::vec((0u64..10_000, -100.0f64..100.0), 1..30),
        split in 0u64..10_000,
    ) {
        let mut sorted = points.clone();
        sorted.sort_by_key(|&(t, _)| t);
        sorted.dedup_by_key(|&mut (t, _)| t);
        let mut ts = TimeSeries::new();
        for &(t, v) in &sorted {
            ts.record(SimTime(t), v);
        }
        let end = SimTime(20_000);
        let mid = SimTime(split.min(20_000));
        let whole = ts.integrate(SimTime(0), end);
        let parts = ts.integrate(SimTime(0), mid) + ts.integrate(mid, end);
        prop_assert!((whole - parts).abs() < 1e-6 * (1.0 + whole.abs()));
    }

    // Regression (PR 3): `integrate` and `resample` each had private
    // before-first-sample semantics; both now query through the single
    // documented helper `value_at_or_baseline`, so a Riemann sum over any
    // partition refining the breakpoints reproduces the integral exactly.
    #[test]
    fn timeseries_integral_agrees_with_resampled_riemann_sum(
        points in proptest::collection::vec((1u64..200, -100.0f64..100.0), 1..20),
    ) {
        let mut sorted = points.clone();
        sorted.sort_by_key(|&(t, _)| t);
        sorted.dedup_by_key(|&mut (t, _)| t);
        let mut ts = TimeSeries::new();
        for &(t, v) in &sorted {
            // grid-aligned breakpoints so a fine resample lands on them
            ts.record(SimTime(t * 100), v);
        }
        let start = SimTime(0);
        let end = SimTime(20_000);
        // one sample per grid cell: every step boundary is a sample point
        let n = 201usize;
        let samples = ts.resample(start, end, n);
        // each sample must agree with the documented helper …
        for &(t, v) in &samples {
            prop_assert_eq!(v, ts.value_at_or_baseline(t));
        }
        // … and the step-function sum over the sample partition must be
        // the integral (left-value × cell width, exact for step series)
        let riemann: f64 = samples
            .windows(2)
            .map(|w| w[0].1 * (w[1].0 - w[0].0).as_secs_f64())
            .sum();
        let integral = ts.integrate(start, end);
        prop_assert!(
            (riemann - integral).abs() < 1e-6 * (1.0 + integral.abs()),
            "riemann {riemann} vs integral {integral}"
        );
    }

    #[test]
    fn allocation_series_is_monotone_and_sized(
        nodes in 1u32..100,
        walltime_mins in 1u64..600,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut series = AllocationSeries::new(
            BatchJob::new(nodes, SimDuration::from_mins(walltime_mins)),
            SimDuration::from_mins(17),
            0.6,
            seed,
        );
        let mut prev_end = SimTime::ZERO;
        for k in 0..n {
            let a = series.next_allocation();
            prop_assert_eq!(a.index as usize, k);
            prop_assert_eq!(a.nodes.len(), nodes as usize);
            prop_assert!(a.start >= prev_end);
            prop_assert_eq!(a.end - a.start, SimDuration::from_mins(walltime_mins));
            prev_end = a.end;
        }
    }
}

mod seed_props {
    use hpcsim::seed::SeedStream;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        // Sharded execution (PR 4): the parallel drivers assume each
        // shard's derived seed is unique and reproducible. Pairwise
        // distinctness over arbitrary index sets …
        #[test]
        fn seed_children_are_pairwise_distinct(
            root in any::<u64>(),
            indices in proptest::collection::btree_set(0u64..1_000_000, 2..64),
        ) {
            let stream = SeedStream::new(root);
            let seeds: BTreeSet<u64> = indices.iter().map(|&i| stream.child(i).seed()).collect();
            prop_assert_eq!(seeds.len(), indices.len(), "seed collision among children");
        }

        // … and stability across calls (child() is pure, no hidden state)
        #[test]
        fn seed_children_are_stable_across_calls(root in any::<u64>(), index in any::<u64>()) {
            let a = SeedStream::new(root).child(index).seed();
            let b = SeedStream::new(root).child(index).seed();
            prop_assert_eq!(a, b);
            // and across reuse of one stream value
            let s = SeedStream::new(root);
            prop_assert_eq!(s.child(index).seed(), s.child(index).seed());
        }

        #[test]
        fn derive_equals_manual_child_chain(
            root in any::<u64>(),
            path in proptest::collection::vec(any::<u64>(), 0..6),
        ) {
            let manual = path.iter().fold(SeedStream::new(root), |s, &i| s.child(i)).seed();
            prop_assert_eq!(SeedStream::derive(root, &path), manual);
        }

        #[test]
        fn distinct_roots_decorrelate_children(
            root in any::<u64>(),
            delta in 1u64..1_000,
            index in 0u64..1_000,
        ) {
            let a = SeedStream::new(root).child(index).seed();
            let b = SeedStream::new(root.wrapping_add(delta)).child(index).seed();
            prop_assert_ne!(a, b, "same child under different roots collided");
        }
    }
}

mod machine_props {
    use hpcsim::cluster::ClusterSpec;
    use hpcsim::machine::{simulate_queue, JobRequest, QueuePolicy};
    use hpcsim::time::{SimDuration, SimTime};
    use proptest::prelude::*;

    fn arb_jobs(max_nodes: u32) -> impl Strategy<Value = Vec<JobRequest>> {
        proptest::collection::vec((1..=max_nodes, 1u64..120, 1u64..120, 0u64..500), 1..40).prop_map(
            |specs| {
                specs
                    .into_iter()
                    .enumerate()
                    .map(|(i, (nodes, wall, run, submit))| {
                        JobRequest::new(
                            format!("j{i}"),
                            nodes,
                            SimDuration::from_mins(wall),
                            SimDuration::from_mins(run),
                            SimTime::ZERO + SimDuration::from_mins(submit),
                        )
                    })
                    .collect()
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn scheduler_invariants(jobs in arb_jobs(16), easy in any::<bool>()) {
            let machine = ClusterSpec::new("m", 16, 32, 1e10);
            let policy = if easy { QueuePolicy::EasyBackfill } else { QueuePolicy::Fcfs };
            let outcomes = simulate_queue(&machine, &jobs, policy);
            // every job scheduled exactly once
            prop_assert_eq!(outcomes.len(), jobs.len());
            for o in &outcomes {
                // causality: no job starts before submission
                prop_assert!(o.start >= o.submit, "{} started early", o.id);
                // duration honored (runtime clamped to walltime at construction)
                let req = jobs.iter().find(|j| j.id == o.id).unwrap();
                prop_assert_eq!(o.finish - o.start, req.runtime);
                // capacity never exceeded at any start instant
                let in_flight: u32 = outcomes
                    .iter()
                    .filter(|p| p.start <= o.start && p.finish > o.start)
                    .map(|p| p.nodes)
                    .sum();
                prop_assert!(in_flight <= 16, "{} nodes busy at {}", in_flight, o.start);
            }
        }

        #[test]
        fn fcfs_never_reorders_starts_against_submissions(jobs in arb_jobs(16)) {
            // under strict FCFS, if a submitted strictly earlier than b and
            // both waited in queue together, a must not start after b …
            // except when a was still unsubmitted at b's start. Simplest
            // sound invariant: among jobs waiting at the same instant, the
            // earliest-submitted starts first → check pairwise.
            let machine = ClusterSpec::new("m", 16, 32, 1e10);
            let outcomes = simulate_queue(&machine, &jobs, QueuePolicy::Fcfs);
            for a in &outcomes {
                for b in &outcomes {
                    if a.submit < b.submit && a.start > b.start {
                        // b started while a was already submitted & waiting → violation
                        prop_assert!(
                            b.start < a.submit,
                            "FCFS violated: {} (submit {}) started after {} (submit {})",
                            a.id, a.submit, b.id, b.submit
                        );
                    }
                }
            }
        }

        #[test]
        fn backfill_dominates_fcfs_on_mean_wait(jobs in arb_jobs(12)) {
            let machine = ClusterSpec::new("m", 12, 32, 1e10);
            let fcfs = simulate_queue(&machine, &jobs, QueuePolicy::Fcfs);
            let easy = simulate_queue(&machine, &jobs, QueuePolicy::EasyBackfill);
            let mean = |o: &[hpcsim::machine::JobOutcome]| {
                o.iter().map(|x| x.wait().as_secs_f64()).sum::<f64>() / o.len() as f64
            };
            // EASY's guarantee is "never delay the head"; the mean wait is
            // overwhelmingly ≤ FCFS. With truncated runtimes (< walltime)
            // rare inversions are possible, so allow a small tolerance.
            prop_assert!(mean(&easy) <= mean(&fcfs) * 1.25 + 60.0);
        }
    }
}
