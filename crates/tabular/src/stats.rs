//! Small statistics kit for the GWAS-lite scan.

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (0 for fewer than two values).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Pearson correlation; 0 when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs equal lengths");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Ordinary least squares of `y` on `x`: returns `(slope, intercept,
/// t_statistic)`. The t statistic is slope / SE(slope) with `n-2` residual
/// degrees of freedom; it is `0` for degenerate inputs.
pub fn simple_ols(x: &[f64], y: &[f64]) -> (f64, f64, f64) {
    assert_eq!(x.len(), y.len(), "OLS needs equal lengths");
    let n = x.len();
    if n < 3 {
        return (0.0, mean(y), 0.0);
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        sxx += dx * dx;
        sxy += dx * (y[i] - my);
    }
    if sxx == 0.0 {
        return (0.0, my, 0.0);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let mut rss = 0.0;
    for i in 0..n {
        let resid = y[i] - (intercept + slope * x[i]);
        rss += resid * resid;
    }
    let dof = (n - 2) as f64;
    let sigma2 = rss / dof;
    if sigma2 <= 0.0 {
        // perfect fit: report an effectively infinite t
        return (slope, intercept, f64::INFINITY * slope.signum());
    }
    let se = (sigma2 / sxx).sqrt();
    (slope, intercept, slope / se)
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max abs error ≈ 1.5e-7 — ample for screening p-values).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Two-sided p-value for a t statistic, using the normal approximation
/// (fine for the n ≫ 30 sample sizes GWAS works with).
pub fn two_sided_p(t: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    2.0 * (1.0 - normal_cdf(t.abs()))
}

/// Benjamini–Hochberg FDR adjustment: returns q-values in the input
/// order. Standard step-up procedure: sort ascending, `q_i =
/// min_{j≥i}(p_j · m / j)`, clamped to 1.
pub fn benjamini_hochberg(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    assert!(
        p_values.iter().all(|p| (0.0..=1.0).contains(p)),
        "p-values must lie in [0,1]"
    );
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| p_values[a].total_cmp(&p_values[b]));
    let mut q = vec![0.0; m];
    let mut running_min = 1.0_f64;
    for rank in (0..m).rev() {
        let idx = order[rank];
        let candidate = p_values[idx] * m as f64 / (rank + 1) as f64;
        running_min = running_min.min(candidate);
        q[idx] = running_min.min(1.0);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_constant() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[7.0; 4]), 0.0);
    }

    #[test]
    fn ols_recovers_line() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v + 1.0).collect();
        let (slope, intercept, t) = simple_ols(&x, &y);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 1.0).abs() < 1e-9);
        assert!(t.is_infinite() && t > 0.0, "perfect fit t={t}");
    }

    #[test]
    fn ols_noisy_slope_significant() {
        // deterministic "noise"
        let x: Vec<f64> = (0..200).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * v + ((i * 37 % 17) as f64 - 8.0) * 0.3)
            .collect();
        let (slope, _, t) = simple_ols(&x, &y);
        assert!((slope - 2.0).abs() < 0.05, "slope={slope}");
        assert!(t > 10.0, "t={t}");
        assert!(two_sided_p(t) < 1e-6);
    }

    #[test]
    fn ols_constant_x_degenerate() {
        let x = [1.0; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let (slope, _, t) = simple_ols(&x, &y);
        assert_eq!(slope, 0.0);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn bh_adjustment_reference_case() {
        // classic worked example: p = [0.01, 0.04, 0.03, 0.005], m = 4
        // sorted: 0.005, 0.01, 0.03, 0.04
        // raw:    0.02,  0.02, 0.04, 0.04 → step-up mins from the top
        let q = benjamini_hochberg(&[0.01, 0.04, 0.03, 0.005]);
        assert!((q[3] - 0.02).abs() < 1e-12, "q={q:?}");
        assert!((q[0] - 0.02).abs() < 1e-12);
        assert!((q[2] - 0.04).abs() < 1e-12);
        assert!((q[1] - 0.04).abs() < 1e-12);
    }

    #[test]
    fn bh_is_monotone_and_bounded() {
        let p = [0.001, 0.2, 0.9, 0.04, 0.5, 1.0, 0.0];
        let q = benjamini_hochberg(&p);
        assert!(q.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // q preserves the order of p
        let mut pairs: Vec<(f64, f64)> = p.iter().copied().zip(q.iter().copied()).collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert!(pairs.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-15));
        // q never smaller than p
        assert!(p.iter().zip(&q).all(|(p, q)| q >= p));
    }

    #[test]
    fn bh_empty_and_single() {
        assert!(benjamini_hochberg(&[]).is_empty());
        assert_eq!(benjamini_hochberg(&[0.3]), vec![0.3]);
    }

    #[test]
    fn p_values_behave() {
        assert!((two_sided_p(0.0) - 1.0).abs() < 1e-6);
        assert!(two_sided_p(5.0) < 1e-5);
        assert_eq!(two_sided_p(f64::INFINITY), 0.0);
        // symmetric
        assert!((two_sided_p(2.0) - two_sided_p(-2.0)).abs() < 1e-12);
    }
}
