//! Tabular-data substrate for the GWAS workflow (§II-A, §V-A).
//!
//! "Software tools used for GWAS analysis require specific formatting of
//! the input data … data wrangling is usually a time-consuming process,
//! often taking up to 80% of the time." This crate is the data-wrangling
//! substrate the paper's first experiment runs on:
//!
//! * [`table`] — an in-memory typed column store;
//! * [`tsv`] — TSV/CSV encode/decode with type inference;
//! * [`paste`] — UNIX-`paste`-style column-wise merging of files,
//!   including the staged (two-or-more-phase) execution strategy the
//!   paper's Skel model plans, run in parallel on the [`exec`] pool;
//! * [`gwas`] — synthetic genotype/phenotype generation and a GWAS-lite
//!   per-SNP association scan, so the refactored workflow can be
//!   validated end-to-end (does the pipeline still find the causal SNPs?);
//! * [`stats`] — the small statistics kit used by the scan;
//! * [`annot`] — BED/GFF3 genome-annotation formats with the lossless
//!   coordinate-convention conversion (§II-A's "automated conversion
//!   tools", the Data Semantics gauge's fusion rule made real).

#![deny(missing_docs)]

pub mod annot;
pub mod gwas;
pub mod paste;
pub mod stats;
pub mod table;
pub mod tsv;

pub use annot::{encode_bed, encode_gff3, parse_bed, parse_gff3, Interval};
pub use gwas::{AssocResult, GenotypeData, GwasConfig};
pub use paste::{paste_contents, staged_paste, PasteError};
pub use table::{Column, Table};
