//! A small in-memory typed column store.

use std::fmt;

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// UTF-8 strings.
    Str(Vec<String>),
}

impl Column {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row` rendered as display text.
    pub fn render(&self, row: usize) -> String {
        match self {
            Column::Int(v) => v[row].to_string(),
            Column::Float(v) => format_float(v[row]),
            Column::Str(v) => v[row].clone(),
        }
    }

    /// The column as `f64` values, when numeric.
    pub fn as_f64(&self) -> Option<Vec<f64>> {
        match self {
            Column::Int(v) => Some(v.iter().map(|&x| x as f64).collect()),
            Column::Float(v) => Some(v.clone()),
            Column::Str(_) => None,
        }
    }
}

/// Renders floats the way the TSV codec expects to round-trip them.
pub(crate) fn format_float(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        // keep a decimal point so re-parsing stays a float column
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// A named-column table. All columns have equal length.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    names: Vec<String>,
    columns: Vec<Column>,
}

impl Table {
    /// Creates an empty table (no columns, no rows).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a column.
    ///
    /// # Panics
    /// If the name already exists or the length differs from existing
    /// columns.
    pub fn push_column(&mut self, name: impl Into<String>, column: Column) {
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "duplicate column name {name:?}"
        );
        if let Some(first) = self.columns.first() {
            assert_eq!(first.len(), column.len(), "column {name:?} length mismatch");
        }
        self.names.push(name);
        self.columns.push(column);
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.columns[i])
    }

    /// Horizontally concatenates another table (column-wise paste).
    ///
    /// Duplicate names from `other` are suffixed `_2`, `_3`, … as UNIX
    /// `paste` users end up doing by hand.
    ///
    /// # Panics
    /// If row counts differ and both tables are non-empty.
    pub fn hpaste(&mut self, other: Table) {
        if !self.columns.is_empty() && !other.columns.is_empty() {
            assert_eq!(self.nrows(), other.nrows(), "row count mismatch in hpaste");
        }
        for (name, col) in other.names.into_iter().zip(other.columns) {
            let mut candidate = name.clone();
            let mut k = 2;
            while self.names.contains(&candidate) {
                candidate = format!("{name}_{k}");
                k += 1;
            }
            self.push_column(candidate, col);
        }
    }

    /// Selects a subset of columns by name, in the given order.
    pub fn select(&self, names: &[&str]) -> Option<Table> {
        let mut out = Table::new();
        for &n in names {
            out.push_column(n, self.column_by_name(n)?.clone());
        }
        Some(out)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.names.join("\t"))?;
        for row in 0..self.nrows() {
            let cells: Vec<String> = self.columns.iter().map(|c| c.render(row)).collect();
            writeln!(f, "{}", cells.join("\t"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new();
        t.push_column("id", Column::Int(vec![1, 2, 3]));
        t.push_column("val", Column::Float(vec![0.5, 1.0, 2.5]));
        t.push_column(
            "name",
            Column::Str(vec!["a".into(), "b".into(), "c".into()]),
        );
        t
    }

    #[test]
    fn dimensions() {
        let t = sample();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.names(), &["id", "val", "name"]);
    }

    #[test]
    fn lookup_by_name() {
        let t = sample();
        assert_eq!(t.column_by_name("id"), Some(&Column::Int(vec![1, 2, 3])));
        assert!(t.column_by_name("zz").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        let mut t = sample();
        t.push_column("id", Column::Int(vec![0, 0, 0]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_columns_rejected() {
        let mut t = sample();
        t.push_column("short", Column::Int(vec![1]));
    }

    #[test]
    fn hpaste_renames_duplicates() {
        let mut a = sample();
        let b = sample();
        a.hpaste(b);
        assert_eq!(a.ncols(), 6);
        assert!(a.column_by_name("id_2").is_some());
        assert_eq!(a.nrows(), 3);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn hpaste_rejects_ragged() {
        let mut a = sample();
        let mut b = Table::new();
        b.push_column("x", Column::Int(vec![1]));
        a.hpaste(b);
    }

    #[test]
    fn select_projects_columns() {
        let t = sample();
        let s = t.select(&["name", "id"]).unwrap();
        assert_eq!(s.names(), &["name", "id"]);
        assert!(t.select(&["nope"]).is_none());
    }

    #[test]
    fn as_f64_conversion() {
        let t = sample();
        assert_eq!(t.column(0).as_f64(), Some(vec![1.0, 2.0, 3.0]));
        assert_eq!(t.column(2).as_f64(), None);
    }

    #[test]
    fn display_renders_tsv_like() {
        let text = sample().to_string();
        assert!(text.starts_with("id\tval\tname\n"));
        assert!(text.contains("1\t0.5\ta"));
    }

    #[test]
    fn float_formatting_round_trips_integral_floats() {
        assert_eq!(format_float(2.0), "2.0");
        assert_eq!(format_float(0.25), "0.25");
    }
}
