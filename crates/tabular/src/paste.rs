//! Column-wise pasting of delimited files (UNIX `paste` semantics).
//!
//! "One particular step involves *column-wise* pasting of a large number
//! of individual tabular files into a single large file … there was a
//! two-phase paste, where a series of 'sub-pastes' were performed to
//! reduce the number of files, then a final paste was done to merge the
//! pasted subsets" (§V-A).
//!
//! [`paste_contents`] is the single merge primitive; [`staged_paste`]
//! executes a fan-in-limited multi-phase plan, running each phase's
//! independent sub-pastes in parallel on the [`exec::ThreadPool`] — the
//! parallelization the paper's humans did by hand with queued jobs.

use std::fmt;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use exec::ThreadPool;

/// Paste errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PasteError {
    /// No inputs were given.
    NoInputs,
    /// Inputs disagree on line count.
    LineCountMismatch {
        /// Index of the offending input.
        input: usize,
        /// Its line count.
        found: usize,
        /// The first input's line count.
        expected: usize,
    },
    /// Filesystem error.
    Io(String),
}

impl fmt::Display for PasteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PasteError::NoInputs => write!(f, "paste requires at least one input"),
            PasteError::LineCountMismatch {
                input,
                found,
                expected,
            } => write!(f, "input #{input} has {found} lines, expected {expected}"),
            PasteError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for PasteError {}

impl From<std::io::Error> for PasteError {
    fn from(e: std::io::Error) -> Self {
        PasteError::Io(e.to_string())
    }
}

/// Pastes in-memory contents column-wise: output line *i* is the
/// tab-join of line *i* of every input. All inputs must have equal line
/// counts (unlike GNU `paste`, short inputs are an error — silent blank
/// cells are precisely the GWAS-corrupting failure mode).
pub fn paste_contents(inputs: &[&str]) -> Result<String, PasteError> {
    if inputs.is_empty() {
        return Err(PasteError::NoInputs);
    }
    let line_sets: Vec<Vec<&str>> = inputs.iter().map(|s| s.lines().collect()).collect();
    let expected = line_sets[0].len();
    for (i, ls) in line_sets.iter().enumerate() {
        if ls.len() != expected {
            return Err(PasteError::LineCountMismatch {
                input: i,
                found: ls.len(),
                expected,
            });
        }
    }
    let total: usize = inputs.iter().map(|s| s.len()).sum();
    let mut out = String::with_capacity(total + expected);
    for row in 0..expected {
        for (i, ls) in line_sets.iter().enumerate() {
            if i > 0 {
                out.push('\t');
            }
            out.push_str(ls[row]);
        }
        out.push('\n');
    }
    Ok(out)
}

/// Pastes files on disk into `output`.
pub fn paste_files(inputs: &[PathBuf], output: &Path) -> Result<(), PasteError> {
    if inputs.is_empty() {
        return Err(PasteError::NoInputs);
    }
    let contents: Vec<String> = inputs
        .iter()
        .map(std::fs::read_to_string)
        .collect::<Result<_, _>>()?;
    let refs: Vec<&str> = contents.iter().map(String::as_str).collect();
    let merged = paste_contents(&refs)?;
    if let Some(parent) = output.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(output)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(merged.as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// The multi-phase plan shape: groups of input indices per phase.
/// Mirrors the Skel paste model's planner so both sides agree on shape.
pub fn plan_phases(num_inputs: usize, fanout: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(fanout >= 2, "fanout must be at least 2");
    let mut phases = Vec::new();
    let mut count = num_inputs;
    while count > fanout {
        let groups: Vec<(usize, usize)> = (0..count)
            .step_by(fanout)
            .map(|start| (start, (start + fanout).min(count)))
            .collect();
        count = groups.len();
        phases.push(groups);
    }
    phases.push(vec![(0, count)]);
    phases
}

/// Executes a staged paste of `inputs` into `output`, limiting every merge
/// to `fanout` files and running each phase's sub-pastes in parallel.
/// Intermediate files are created under `workdir` and removed on success.
///
/// Returns the number of paste invocations performed.
pub fn staged_paste(
    inputs: &[PathBuf],
    output: &Path,
    fanout: usize,
    workdir: &Path,
    pool: &ThreadPool,
) -> Result<usize, PasteError> {
    if inputs.is_empty() {
        return Err(PasteError::NoInputs);
    }
    std::fs::create_dir_all(workdir)?;
    let mut current: Vec<PathBuf> = inputs.to_vec();
    let mut intermediates: Vec<PathBuf> = Vec::new();
    let mut stage = 0usize;
    let mut invocations = 0usize;
    while current.len() > fanout {
        let groups: Vec<&[PathBuf]> = current.chunks(fanout).collect();
        let outputs: Vec<PathBuf> = (0..groups.len())
            .map(|gi| workdir.join(format!("s{stage}_{gi:05}.tsv")))
            .collect();
        let results: Vec<Result<(), PasteError>> =
            pool.map_index(groups.len(), |gi| paste_files(groups[gi], &outputs[gi]));
        for r in results {
            r?;
        }
        invocations += groups.len();
        intermediates.extend(outputs.iter().cloned());
        current = outputs;
        stage += 1;
    }
    paste_files(&current, output)?;
    invocations += 1;
    for f in intermediates {
        let _ = std::fs::remove_file(f);
    }
    Ok(invocations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("paste-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn paste_joins_lines_with_tabs() {
        let merged = paste_contents(&["a\nb\n", "1\n2\n", "x\ny\n"]).unwrap();
        assert_eq!(merged, "a\t1\tx\nb\t2\ty\n");
    }

    #[test]
    fn single_input_passes_through() {
        assert_eq!(paste_contents(&["a\nb\n"]).unwrap(), "a\nb\n");
    }

    #[test]
    fn no_inputs_is_error() {
        assert_eq!(paste_contents(&[]), Err(PasteError::NoInputs));
    }

    #[test]
    fn mismatched_line_counts_error() {
        let err = paste_contents(&["a\nb\n", "1\n"]).unwrap_err();
        assert_eq!(
            err,
            PasteError::LineCountMismatch {
                input: 1,
                found: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn plan_phases_shapes() {
        assert_eq!(plan_phases(5, 8).len(), 1);
        let p = plan_phases(64, 8);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].len(), 8);
        assert_eq!(p[1], vec![(0, 8)]);
        let p3 = plan_phases(200, 5);
        assert_eq!(p3.len(), 4); // 200 -> 40 -> 8 -> 2 -> final
    }

    #[test]
    fn staged_paste_matches_single_paste() {
        let dir = tempdir("staged");
        let pool = ThreadPool::new(4);
        // 20 files, 3 rows each, single column
        let inputs: Vec<PathBuf> = (0..20)
            .map(|i| {
                let p = dir.join(format!("in_{i:02}.tsv"));
                std::fs::write(&p, format!("c{i}\nv{i}a\nv{i}b\n")).unwrap();
                p
            })
            .collect();
        let staged_out = dir.join("staged.tsv");
        let single_out = dir.join("single.tsv");
        let invocations = staged_paste(&inputs, &staged_out, 4, &dir.join("work"), &pool).unwrap();
        paste_files(&inputs, &single_out).unwrap();
        assert_eq!(
            std::fs::read_to_string(&staged_out).unwrap(),
            std::fs::read_to_string(&single_out).unwrap()
        );
        // 20 -> 5 groups -> 2 groups -> 1 final = 5 + 2 + 1
        assert_eq!(invocations, 8);
        // intermediates cleaned up
        assert_eq!(std::fs::read_dir(dir.join("work")).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn staged_paste_preserves_column_order() {
        let dir = tempdir("order");
        let pool = ThreadPool::new(2);
        let inputs: Vec<PathBuf> = (0..10)
            .map(|i| {
                let p = dir.join(format!("in_{i:02}.tsv"));
                std::fs::write(&p, format!("{i}\n")).unwrap();
                p
            })
            .collect();
        let out = dir.join("out.tsv");
        staged_paste(&inputs, &out, 3, &dir.join("w"), &pool).unwrap();
        assert_eq!(
            std::fs::read_to_string(&out).unwrap(),
            "0\t1\t2\t3\t4\t5\t6\t7\t8\t9\n"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn staged_paste_propagates_ragged_errors() {
        let dir = tempdir("ragged");
        let pool = ThreadPool::new(2);
        let a = dir.join("a.tsv");
        let b = dir.join("b.tsv");
        std::fs::write(&a, "1\n2\n").unwrap();
        std::fs::write(&b, "1\n").unwrap();
        let err =
            staged_paste(&[a, b], &dir.join("out.tsv"), 2, &dir.join("w"), &pool).unwrap_err();
        assert!(matches!(err, PasteError::LineCountMismatch { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
