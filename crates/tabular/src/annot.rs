//! Genome-annotation interval formats and automated conversion.
//!
//! §II-A: "there can exist multiple formats for single types of data
//! (e.g. genome annotations can be in BED, GTF2, GFF3, or PSL formats)
//! … In cases where automated conversion tools do not exist, the
//! researcher may create their own … often custom tools are poorly
//! tested, which could result in downstream consequences such as
//! incorrect scientific conclusions."
//!
//! The classic downstream-corrupting subtlety between these formats is
//! the coordinate convention: **BED is 0-based half-open**, **GFF3 is
//! 1-based closed**. This module holds a convention-neutral [`Interval`]
//! and lossless converters in both directions — exactly the "data fusion
//! rule" the Data Semantics gauge captures
//! (`SemanticsAnnotation::FusionRule("bed<->gff3 coordinate shift")`).

use std::fmt;

/// A genomic interval in a convention-neutral representation
/// (0-based, half-open — BED's convention, used internally).
#[derive(Debug, Clone, PartialEq)]
pub struct Interval {
    /// Chromosome/sequence name.
    pub chrom: String,
    /// 0-based inclusive start.
    pub start: u64,
    /// 0-based exclusive end (`end > start`).
    pub end: u64,
    /// Feature name/ID.
    pub name: String,
    /// Optional score.
    pub score: Option<f64>,
    /// Optional strand (`+` or `-`).
    pub strand: Option<char>,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    /// If `end <= start` (empty/negative intervals are always data bugs).
    pub fn new(chrom: impl Into<String>, start: u64, end: u64, name: impl Into<String>) -> Self {
        assert!(end > start, "interval end must exceed start");
        Self {
            chrom: chrom.into(),
            start,
            end,
            name: name.into(),
            score: None,
            strand: None,
        }
    }

    /// Interval length in bases.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True only for a degenerate zero-length interval (cannot be
    /// constructed through [`Interval::new`]).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Annotation parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnotError {
    /// A row had too few columns.
    TooFewColumns {
        /// 1-based line number.
        line: usize,
        /// Columns found.
        found: usize,
        /// Minimum required.
        required: usize,
    },
    /// A coordinate failed to parse or was inconsistent.
    BadCoordinate {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
}

impl fmt::Display for AnnotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnotError::TooFewColumns {
                line,
                found,
                required,
            } => {
                write!(f, "line {line}: {found} columns, need at least {required}")
            }
            AnnotError::BadCoordinate { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for AnnotError {}

fn parse_coord(s: &str, line: usize) -> Result<u64, AnnotError> {
    s.parse().map_err(|_| AnnotError::BadCoordinate {
        line,
        message: format!("bad coordinate {s:?}"),
    })
}

/// Parses BED text (≥3 columns: chrom, start, end; optional name, score,
/// strand). Comment (`#`, `track`, `browser`) and blank lines skipped.
pub fn parse_bed(text: &str) -> Result<Vec<Interval>, AnnotError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty()
            || line.starts_with('#')
            || line.starts_with("track")
            || line.starts_with("browser")
        {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 3 {
            return Err(AnnotError::TooFewColumns {
                line: line_no,
                found: cols.len(),
                required: 3,
            });
        }
        let start = parse_coord(cols[1], line_no)?;
        let end = parse_coord(cols[2], line_no)?;
        if end <= start {
            return Err(AnnotError::BadCoordinate {
                line: line_no,
                message: format!("end {end} ≤ start {start}"),
            });
        }
        out.push(Interval {
            chrom: cols[0].to_string(),
            start,
            end,
            name: cols.get(3).unwrap_or(&".").to_string(),
            score: cols.get(4).and_then(|s| s.parse().ok()),
            strand: cols
                .get(5)
                .and_then(|s| s.chars().next())
                .filter(|&c| c == '+' || c == '-'),
        });
    }
    Ok(out)
}

/// Encodes intervals as BED6.
pub fn encode_bed(intervals: &[Interval]) -> String {
    let mut out = String::new();
    for iv in intervals {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            iv.chrom,
            iv.start,
            iv.end,
            iv.name,
            iv.score.map_or(".".to_string(), |s| format!("{s}")),
            iv.strand.unwrap_or('.'),
        ));
    }
    out
}

/// Parses GFF3 text (9 columns; coordinates 1-based closed — converted to
/// the internal 0-based half-open convention). The feature name is taken
/// from the `ID=` attribute when present, else `Name=`, else `.`.
pub fn parse_gff3(text: &str) -> Result<Vec<Interval>, AnnotError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 9 {
            return Err(AnnotError::TooFewColumns {
                line: line_no,
                found: cols.len(),
                required: 9,
            });
        }
        let start_1b = parse_coord(cols[3], line_no)?;
        let end_1b = parse_coord(cols[4], line_no)?;
        if start_1b == 0 {
            return Err(AnnotError::BadCoordinate {
                line: line_no,
                message: "GFF3 coordinates are 1-based; got 0".into(),
            });
        }
        if end_1b < start_1b {
            return Err(AnnotError::BadCoordinate {
                line: line_no,
                message: format!("end {end_1b} < start {start_1b}"),
            });
        }
        let attrs = cols[8];
        let name = attrs
            .split(';')
            .find_map(|kv| kv.strip_prefix("ID="))
            .or_else(|| attrs.split(';').find_map(|kv| kv.strip_prefix("Name=")))
            .unwrap_or(".")
            .to_string();
        out.push(Interval {
            chrom: cols[0].to_string(),
            start: start_1b - 1, // the fusion rule: 1-based closed → 0-based half-open
            end: end_1b,
            name,
            score: (cols[5] != ".").then(|| cols[5].parse().ok()).flatten(),
            strand: cols[6].chars().next().filter(|&c| c == '+' || c == '-'),
        });
    }
    Ok(out)
}

/// Encodes intervals as GFF3 with the given `source` and feature `ftype`.
pub fn encode_gff3(intervals: &[Interval], source: &str, ftype: &str) -> String {
    let mut out = String::from("##gff-version 3\n");
    for iv in intervals {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t.\tID={}\n",
            iv.chrom,
            source,
            ftype,
            iv.start + 1, // 0-based half-open → 1-based closed
            iv.end,
            iv.score.map_or(".".to_string(), |s| format!("{s}")),
            iv.strand.unwrap_or('.'),
            iv.name,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Interval> {
        vec![
            Interval {
                chrom: "chr1".into(),
                start: 99,
                end: 200,
                name: "geneA".into(),
                score: Some(12.5),
                strand: Some('+'),
            },
            Interval {
                chrom: "chr2".into(),
                start: 0,
                end: 50,
                name: "geneB".into(),
                score: None,
                strand: Some('-'),
            },
        ]
    }

    #[test]
    fn bed_roundtrip() {
        let text = encode_bed(&sample());
        let back = parse_bed(&text).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn gff3_roundtrip() {
        let text = encode_gff3(&sample(), "fair", "gene");
        assert!(text.starts_with("##gff-version 3"));
        let back = parse_gff3(&text).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn coordinate_convention_is_converted_not_copied() {
        // THE classic off-by-one: the same biological interval — first
        // 100 bases of chr1 — is 0..100 in BED but 1..100 in GFF3
        let iv = Interval::new("chr1", 0, 100, "x");
        let bed = encode_bed(std::slice::from_ref(&iv));
        assert!(bed.contains("chr1\t0\t100"));
        let gff = encode_gff3(&[iv], "s", "gene");
        assert!(gff.contains("chr1\ts\tgene\t1\t100"), "{gff}");
        // and back again
        let from_gff = parse_gff3(&gff).unwrap();
        assert_eq!(from_gff[0].start, 0);
        assert_eq!(from_gff[0].end, 100);
        assert_eq!(from_gff[0].len(), 100);
    }

    #[test]
    fn cross_format_roundtrip_is_lossless() {
        let via_gff = parse_gff3(&encode_gff3(&sample(), "s", "gene")).unwrap();
        let via_bed = parse_bed(&encode_bed(&via_gff)).unwrap();
        assert_eq!(via_bed, sample());
    }

    #[test]
    fn bed_minimal_three_columns() {
        let parsed = parse_bed("chr3\t5\t10\n").unwrap();
        assert_eq!(parsed[0].name, ".");
        assert_eq!(parsed[0].score, None);
        assert_eq!(parsed[0].strand, None);
    }

    #[test]
    fn comments_and_headers_skipped() {
        let bed = "# comment\ntrack name=x\nchr1\t0\t10\n\n";
        assert_eq!(parse_bed(bed).unwrap().len(), 1);
        let gff = "##gff-version 3\n# note\nchr1\ts\tgene\t1\t10\t.\t+\t.\tID=g\n";
        assert_eq!(parse_gff3(gff).unwrap().len(), 1);
    }

    #[test]
    fn gff3_name_fallback() {
        let gff = "chr1\ts\tgene\t1\t10\t.\t+\t.\tName=fallback\n";
        assert_eq!(parse_gff3(gff).unwrap()[0].name, "fallback");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_bed("chr1\t0\n").unwrap_err();
        assert_eq!(
            err,
            AnnotError::TooFewColumns {
                line: 1,
                found: 2,
                required: 3
            }
        );
        let err = parse_bed("chr1\t10\t5\n").unwrap_err();
        assert!(matches!(err, AnnotError::BadCoordinate { line: 1, .. }));
        let err = parse_gff3("chr1\ts\tg\t0\t10\t.\t+\t.\tID=x\n").unwrap_err();
        assert!(matches!(err, AnnotError::BadCoordinate { .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "end must exceed start")]
    fn degenerate_interval_rejected() {
        Interval::new("chr1", 5, 5, "x");
    }
}
