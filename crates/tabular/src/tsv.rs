//! TSV encode/decode with column type inference.
//!
//! Bioinformatics pipelines overwhelmingly exchange delimited text
//! ("many still rely on custom I/O solutions or delimited text formats",
//! §VI). The codec here is deliberately strict: ragged rows are errors,
//! because silent row misalignment is exactly the class of bug the
//! paper's data-schema gauge exists to catch.

use std::fmt;
use std::path::Path;

use crate::table::{format_float, Column, Table};

/// TSV codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsvError {
    /// Input had no header line.
    Empty,
    /// A data row had a different arity than the header.
    Ragged {
        /// 1-based line number of the offending row.
        line: usize,
        /// Cells found.
        found: usize,
        /// Cells expected.
        expected: usize,
    },
    /// Filesystem error.
    Io(String),
}

impl fmt::Display for TsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsvError::Empty => write!(f, "empty input: no header line"),
            TsvError::Ragged {
                line,
                found,
                expected,
            } => {
                write!(
                    f,
                    "ragged row at line {line}: {found} cells, expected {expected}"
                )
            }
            TsvError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for TsvError {}

impl From<std::io::Error> for TsvError {
    fn from(e: std::io::Error) -> Self {
        TsvError::Io(e.to_string())
    }
}

/// Parses TSV text (tab-separated, first line is the header).
///
/// Column types are inferred: a column where every cell parses as `i64`
/// becomes [`Column::Int`]; else if every cell parses as `f64` it becomes
/// [`Column::Float`]; otherwise [`Column::Str`].
pub fn parse(text: &str) -> Result<Table, TsvError> {
    parse_delim(text, '\t')
}

/// [`parse`] with an arbitrary single-character delimiter (e.g. `,`).
pub fn parse_delim(text: &str, delim: char) -> Result<Table, TsvError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(TsvError::Empty)?;
    let names: Vec<String> = header.split(delim).map(str::to_string).collect();
    let ncols = names.len();
    let mut cells: Vec<Vec<&str>> = vec![Vec::new(); ncols];
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue; // tolerate a trailing newline / blank lines
        }
        let mut count = 0;
        for (c, cell) in line.split(delim).enumerate() {
            if c >= ncols {
                count = line.split(delim).count();
                return Err(TsvError::Ragged {
                    line: i + 2,
                    found: count,
                    expected: ncols,
                });
            }
            cells[c].push(cell);
            count = c + 1;
        }
        if count != ncols {
            // roll back the partial row before erroring
            return Err(TsvError::Ragged {
                line: i + 2,
                found: count,
                expected: ncols,
            });
        }
    }
    let mut table = Table::new();
    for (name, col_cells) in names.into_iter().zip(cells) {
        table.push_column(dedup_name(&table, name), infer_column(&col_cells));
    }
    Ok(table)
}

fn dedup_name(table: &Table, name: String) -> String {
    if !table.names().contains(&name) {
        return name;
    }
    let mut k = 2;
    loop {
        let candidate = format!("{name}_{k}");
        if !table.names().contains(&candidate) {
            return candidate;
        }
        k += 1;
    }
}

fn infer_column(cells: &[&str]) -> Column {
    // Parse each cell exactly once per candidate type; any cell that
    // defeats inference demotes the whole column to strings instead of
    // panicking on a check/parse mismatch.
    if !cells.is_empty() {
        if let Some(ints) = cells.iter().map(|c| c.parse::<i64>().ok()).collect() {
            return Column::Int(ints);
        }
        if let Some(floats) = cells.iter().map(|c| c.parse::<f64>().ok()).collect() {
            return Column::Float(floats);
        }
    }
    Column::Str(cells.iter().map(|c| c.to_string()).collect())
}

/// Encodes a table as TSV text (trailing newline included).
pub fn encode(table: &Table) -> String {
    encode_delim(table, '\t')
}

/// [`encode`] with an arbitrary delimiter.
pub fn encode_delim(table: &Table, delim: char) -> String {
    let mut out = String::new();
    out.push_str(&table.names().join(&delim.to_string()));
    out.push('\n');
    for row in 0..table.nrows() {
        for c in 0..table.ncols() {
            if c > 0 {
                out.push(delim);
            }
            match table.column(c) {
                Column::Int(v) => out.push_str(&v[row].to_string()),
                Column::Float(v) => out.push_str(&format_float(v[row])),
                Column::Str(v) => out.push_str(&v[row]),
            }
        }
        out.push('\n');
    }
    out
}

/// Reads a TSV file into a table.
pub fn read_file(path: impl AsRef<Path>) -> Result<Table, TsvError> {
    let text = std::fs::read_to_string(path)?;
    parse(&text)
}

/// Writes a table to a TSV file.
pub fn write_file(table: &Table, path: impl AsRef<Path>) -> Result<(), TsvError> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, encode(table))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_infers_types() {
        let t = parse("id\tval\tname\n1\t0.5\ta\n2\t1.5\tb\n").unwrap();
        assert_eq!(t.column(0), &Column::Int(vec![1, 2]));
        assert_eq!(t.column(1), &Column::Float(vec![0.5, 1.5]));
        assert_eq!(t.column(2), &Column::Str(vec!["a".into(), "b".into()]));
    }

    #[test]
    fn ints_with_one_float_become_float() {
        let t = parse("x\n1\n2.5\n").unwrap();
        assert_eq!(t.column(0), &Column::Float(vec![1.0, 2.5]));
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(parse(""), Err(TsvError::Empty));
    }

    #[test]
    fn header_only_is_zero_rows() {
        let t = parse("a\tb\n").unwrap();
        assert_eq!(t.nrows(), 0);
        assert_eq!(t.ncols(), 2);
    }

    #[test]
    fn ragged_rows_error_with_line_number() {
        let err = parse("a\tb\n1\t2\n3\n").unwrap_err();
        assert_eq!(
            err,
            TsvError::Ragged {
                line: 3,
                found: 1,
                expected: 2
            }
        );
        let err = parse("a\tb\n1\t2\t3\n").unwrap_err();
        assert!(matches!(err, TsvError::Ragged { line: 2, .. }));
    }

    #[test]
    fn roundtrip() {
        let src = "id\tval\tname\n1\t0.5\talpha\n2\t2.0\tbeta\n";
        let t = parse(src).unwrap();
        assert_eq!(encode(&t), src);
    }

    #[test]
    fn csv_delimiter() {
        let t = parse_delim("a,b\n1,2\n", ',').unwrap();
        assert_eq!(t.ncols(), 2);
        assert_eq!(encode_delim(&t, ','), "a,b\n1,2\n");
    }

    #[test]
    fn duplicate_headers_deduped() {
        let t = parse("x\tx\tx\n1\t2\t3\n").unwrap();
        assert_eq!(t.names(), &["x", "x_2", "x_3"]);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tsv-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tsv");
        let t = parse("a\tb\n1\tx\n").unwrap();
        write_file(&t, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inference_defeating_cells_fall_back_to_strings() {
        // "0x1F" looks numeric but parses as neither i64 nor f64; the
        // column must come back verbatim as strings, not panic
        let t = parse("x\n12\n0x1F\n").unwrap();
        assert_eq!(t.column(0), &Column::Str(vec!["12".into(), "0x1F".into()]));
        // leading '+' and exponent forms stay floats
        let t = parse("y\n+1.5\n2e3\n").unwrap();
        assert_eq!(t.column(0), &Column::Float(vec![1.5, 2000.0]));
    }

    #[test]
    fn blank_lines_tolerated() {
        let t = parse("a\n1\n\n2\n").unwrap();
        assert_eq!(t.nrows(), 2);
    }
}
