//! Synthetic GWAS data and a GWAS-lite association scan.
//!
//! The paper's GWAS scenario (§II-A) needs genotype matrices (samples ×
//! SNPs, coded 0/1/2 minor-allele counts) and a phenotype. We generate
//! both with *planted* causal SNPs so the refactored pipeline can be
//! validated end-to-end: after splitting, pasting, and scanning, do the
//! causal SNPs surface as the top associations?

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use exec::ThreadPool;

use crate::stats;
use crate::table::{Column, Table};

/// Configuration for synthetic GWAS data.
#[derive(Debug, Clone, PartialEq)]
pub struct GwasConfig {
    /// Number of individuals.
    pub samples: usize,
    /// Number of SNPs.
    pub snps: usize,
    /// Causal SNP indices with their effect sizes.
    pub causal: Vec<(usize, f64)>,
    /// Minor-allele-frequency range to draw per SNP.
    pub maf_range: (f64, f64),
    /// Phenotype noise standard deviation.
    pub noise_sd: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GwasConfig {
    /// A small, fast default: 500 samples × 200 SNPs, 3 planted causal
    /// SNPs.
    pub fn small() -> Self {
        Self {
            samples: 500,
            snps: 200,
            causal: vec![(10, 0.9), (77, 0.7), (150, 1.1)],
            maf_range: (0.1, 0.4),
            noise_sd: 1.0,
            seed: 42,
        }
    }
}

/// A generated dataset: genotypes plus phenotype.
#[derive(Debug, Clone, PartialEq)]
pub struct GenotypeData {
    /// `samples × snps` minor-allele counts, row-major.
    pub genotypes: Vec<u8>,
    /// Number of individuals.
    pub samples: usize,
    /// Number of SNPs.
    pub snps: usize,
    /// Phenotype per individual.
    pub phenotype: Vec<f64>,
    /// The planted truth, for validation.
    pub causal: Vec<(usize, f64)>,
}

impl GenotypeData {
    /// Generates a dataset from `config`.
    pub fn generate(config: &GwasConfig) -> Self {
        assert!(config.samples > 0 && config.snps > 0);
        assert!(config.maf_range.0 > 0.0 && config.maf_range.1 < 1.0);
        assert!(
            config.causal.iter().all(|&(i, _)| i < config.snps),
            "causal index out of range"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mafs: Vec<f64> = (0..config.snps)
            .map(|_| {
                let u: f64 = rng.random();
                config.maf_range.0 + u * (config.maf_range.1 - config.maf_range.0)
            })
            .collect();
        let mut genotypes = vec![0u8; config.samples * config.snps];
        for s in 0..config.samples {
            for j in 0..config.snps {
                // two independent allele draws
                let a1 = (rng.random::<f64>() < mafs[j]) as u8;
                let a2 = (rng.random::<f64>() < mafs[j]) as u8;
                genotypes[s * config.snps + j] = a1 + a2;
            }
        }
        let phenotype: Vec<f64> = (0..config.samples)
            .map(|s| {
                let signal: f64 = config
                    .causal
                    .iter()
                    .map(|&(j, beta)| beta * genotypes[s * config.snps + j] as f64)
                    .sum();
                signal + config.noise_sd * hpcsim_free_normal(&mut rng)
            })
            .collect();
        Self {
            genotypes,
            samples: config.samples,
            snps: config.snps,
            phenotype,
            causal: config.causal.clone(),
        }
    }

    /// Genotype column for one SNP as floats.
    pub fn snp_column(&self, snp: usize) -> Vec<f64> {
        (0..self.samples)
            .map(|s| self.genotypes[s * self.snps + snp] as f64)
            .collect()
    }

    /// Splits the genotype matrix into `chunks` column-blocks as tables —
    /// the "large number of individual tabular files" the paste workflow
    /// merges back together. Each table has one column per SNP, named
    /// `snp{j}`.
    pub fn to_column_chunks(&self, chunks: usize) -> Vec<Table> {
        assert!(chunks > 0 && chunks <= self.snps);
        let per = self.snps.div_ceil(chunks);
        (0..self.snps)
            .step_by(per)
            .map(|start| {
                let end = (start + per).min(self.snps);
                let mut t = Table::new();
                for j in start..end {
                    t.push_column(
                        format!("snp{j}"),
                        Column::Int(
                            (0..self.samples)
                                .map(|s| self.genotypes[s * self.snps + j] as i64)
                                .collect(),
                        ),
                    );
                }
                t
            })
            .collect()
    }

    /// The phenotype as a one-column table.
    pub fn phenotype_table(&self) -> Table {
        let mut t = Table::new();
        t.push_column("phenotype", Column::Float(self.phenotype.clone()));
        t
    }
}

fn hpcsim_free_normal(rng: &mut StdRng) -> f64 {
    // Local Box–Muller so tabular does not depend on hpcsim.
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::EPSILON {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Per-SNP association result.
#[derive(Debug, Clone, PartialEq)]
pub struct AssocResult {
    /// SNP index.
    pub snp: usize,
    /// OLS effect size.
    pub beta: f64,
    /// t statistic.
    pub t: f64,
    /// Two-sided p-value (normal approximation).
    pub p: f64,
}

/// Runs the GWAS-lite scan: an independent simple regression of the
/// phenotype on each SNP, parallelized over SNPs.
pub fn association_scan(data: &GenotypeData, pool: &ThreadPool) -> Vec<AssocResult> {
    pool.map_index(data.snps, |j| {
        let x = data.snp_column(j);
        let (beta, _intercept, t) = stats::simple_ols(&x, &data.phenotype);
        AssocResult {
            snp: j,
            beta,
            t,
            p: stats::two_sided_p(t),
        }
    })
}

/// Runs the scan on a pasted genotype table (columns named `snp{j}`) —
/// the post-paste entry point the refactored workflow uses.
pub fn association_scan_table(
    genotypes: &Table,
    phenotype: &[f64],
    pool: &ThreadPool,
) -> Vec<AssocResult> {
    let n = genotypes.ncols();
    pool.map_index(n, |c| {
        let x = genotypes
            .column(c)
            .as_f64()
            .expect("genotype columns are numeric");
        let (beta, _i, t) = stats::simple_ols(&x, phenotype);
        let snp = genotypes.names()[c]
            .strip_prefix("snp")
            .and_then(|s| s.parse().ok())
            .unwrap_or(c);
        AssocResult {
            snp,
            beta,
            t,
            p: stats::two_sided_p(t),
        }
    })
}

/// Benjamini–Hochberg q-values for a scan, in result order. Genome-wide
/// scans test thousands of SNPs; FDR control is what separates the
/// planted hits from the multiple-testing noise floor.
pub fn q_values(results: &[AssocResult]) -> Vec<f64> {
    let p: Vec<f64> = results.iter().map(|r| r.p).collect();
    crate::stats::benjamini_hochberg(&p)
}

/// Results significant at FDR level `alpha`, strongest first.
pub fn significant_at_fdr(results: &[AssocResult], alpha: f64) -> Vec<AssocResult> {
    assert!((0.0..=1.0).contains(&alpha));
    let q = q_values(results);
    let mut hits: Vec<AssocResult> = results
        .iter()
        .zip(&q)
        .filter(|&(_, &qv)| qv <= alpha)
        .map(|(r, _)| r.clone())
        .collect();
    hits.sort_by(|a, b| a.p.partial_cmp(&b.p).unwrap_or(std::cmp::Ordering::Equal));
    hits
}

/// Returns the `k` most significant results, strongest first.
pub fn top_hits(mut results: Vec<AssocResult>, k: usize) -> Vec<AssocResult> {
    results.sort_by(|a, b| a.p.partial_cmp(&b.p).unwrap_or(std::cmp::Ordering::Equal));
    results.truncate(k);
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_range() {
        let cfg = GwasConfig::small();
        let a = GenotypeData::generate(&cfg);
        let b = GenotypeData::generate(&cfg);
        assert_eq!(a, b);
        assert!(a.genotypes.iter().all(|&g| g <= 2));
        assert_eq!(a.genotypes.len(), 500 * 200);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = GwasConfig::small();
        let a = GenotypeData::generate(&cfg);
        cfg.seed = 43;
        let b = GenotypeData::generate(&cfg);
        assert_ne!(a.genotypes, b.genotypes);
    }

    #[test]
    fn scan_recovers_planted_causal_snps() {
        let cfg = GwasConfig::small();
        let data = GenotypeData::generate(&cfg);
        let pool = ThreadPool::new(4);
        let results = association_scan(&data, &pool);
        assert_eq!(results.len(), cfg.snps);
        let hits = top_hits(results, 3);
        let mut found: Vec<usize> = hits.iter().map(|h| h.snp).collect();
        found.sort_unstable();
        let mut planted: Vec<usize> = cfg.causal.iter().map(|&(j, _)| j).collect();
        planted.sort_unstable();
        assert_eq!(found, planted, "top hits should be the causal SNPs");
        assert!(hits.iter().all(|h| h.p < 1e-6));
    }

    #[test]
    fn effect_signs_match_planted_betas() {
        let mut cfg = GwasConfig::small();
        cfg.causal = vec![(5, 1.0), (6, -1.0)];
        let data = GenotypeData::generate(&cfg);
        let pool = ThreadPool::new(2);
        let results = association_scan(&data, &pool);
        assert!(results[5].beta > 0.0);
        assert!(results[6].beta < 0.0);
    }

    #[test]
    fn column_chunks_cover_all_snps() {
        let data = GenotypeData::generate(&GwasConfig::small());
        let chunks = data.to_column_chunks(7);
        let total: usize = chunks.iter().map(Table::ncols).sum();
        assert_eq!(total, data.snps);
        assert!(chunks.iter().all(|t| t.nrows() == data.samples));
        // first column of first chunk is snp0
        assert_eq!(chunks[0].names()[0], "snp0");
    }

    #[test]
    fn table_scan_agrees_with_matrix_scan() {
        let data = GenotypeData::generate(&GwasConfig::small());
        let pool = ThreadPool::new(4);
        // reassemble a table via chunk pasting, as the workflow would
        let mut merged = Table::new();
        for chunk in data.to_column_chunks(5) {
            merged.hpaste(chunk);
        }
        let from_table = association_scan_table(&merged, &data.phenotype, &pool);
        let from_matrix = association_scan(&data, &pool);
        for (a, b) in from_table.iter().zip(from_matrix.iter()) {
            assert_eq!(a.snp, b.snp);
            assert!((a.t - b.t).abs() < 1e-9);
        }
    }

    #[test]
    fn fdr_control_separates_planted_from_noise() {
        let cfg = GwasConfig::small();
        let data = GenotypeData::generate(&cfg);
        let pool = ThreadPool::new(4);
        let results = association_scan(&data, &pool);
        let hits = significant_at_fdr(&results, 0.05);
        let mut found: Vec<usize> = hits.iter().map(|h| h.snp).collect();
        found.sort_unstable();
        let mut planted: Vec<usize> = cfg.causal.iter().map(|&(j, _)| j).collect();
        planted.sort_unstable();
        // all planted SNPs significant; false discoveries within FDR slack
        for j in &planted {
            assert!(found.contains(j), "planted SNP {j} missed at 5% FDR");
        }
        assert!(
            found.len() <= planted.len() + 2,
            "too many discoveries: {found:?}"
        );
        // q-values ordered with p-values
        let q = q_values(&results);
        assert_eq!(q.len(), results.len());
        assert!(results.iter().zip(&q).all(|(r, q)| *q >= r.p));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn causal_index_validated() {
        let mut cfg = GwasConfig::small();
        cfg.causal = vec![(10_000, 1.0)];
        GenotypeData::generate(&cfg);
    }
}
