//! Property tests: TSV codec, paste semantics, statistics.

use proptest::prelude::*;
use tabular::paste::{paste_contents, plan_phases};
use tabular::stats;
use tabular::tsv;

/// Cell text safe for TSV (no tabs/newlines, non-empty, and not
/// numeric-looking so column types stay `Str` deterministically).
fn arb_cell() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z_ ]{0,10}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty", |s| !s.is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn tsv_roundtrip_string_tables(
        ncols in 1usize..6,
        rows in proptest::collection::vec(proptest::collection::vec(arb_cell(), 1..6), 0..12)
    ) {
        // build a rectangular grid
        let rows: Vec<Vec<String>> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(ncols, "pad".to_string());
                r
            })
            .collect();
        let header: Vec<String> = (0..ncols).map(|i| format!("c{i}")).collect();
        let mut text = header.join("\t");
        text.push('\n');
        for r in &rows {
            text.push_str(&r.join("\t"));
            text.push('\n');
        }
        let table = tsv::parse(&text).unwrap();
        prop_assert_eq!(table.nrows(), rows.len());
        prop_assert_eq!(table.ncols(), ncols);
        prop_assert_eq!(tsv::encode(&table), text);
    }

    #[test]
    fn tsv_numeric_roundtrip(values in proptest::collection::vec(-1_000_000i64..1_000_000, 1..40)) {
        let mut text = String::from("v\n");
        for v in &values {
            text.push_str(&format!("{v}\n"));
        }
        let table = tsv::parse(&text).unwrap();
        prop_assert_eq!(tsv::encode(&table), text);
    }

    #[test]
    fn paste_preserves_line_count_and_content(
        lines in 1usize..30,
        inputs in 1usize..8,
    ) {
        let contents: Vec<String> = (0..inputs)
            .map(|i| (0..lines).map(|r| format!("f{i}r{r}\n")).collect())
            .collect();
        let refs: Vec<&str> = contents.iter().map(String::as_str).collect();
        let merged = paste_contents(&refs).unwrap();
        let merged_lines: Vec<&str> = merged.lines().collect();
        prop_assert_eq!(merged_lines.len(), lines);
        for (r, line) in merged_lines.iter().enumerate() {
            let cells: Vec<&str> = line.split('\t').collect();
            prop_assert_eq!(cells.len(), inputs);
            for (i, cell) in cells.iter().enumerate() {
                prop_assert_eq!(*cell, format!("f{i}r{r}"));
            }
        }
    }

    #[test]
    fn paste_is_associative(lines in 1usize..15) {
        let a: String = (0..lines).map(|r| format!("a{r}\n")).collect();
        let b: String = (0..lines).map(|r| format!("b{r}\n")).collect();
        let c: String = (0..lines).map(|r| format!("c{r}\n")).collect();
        let left = paste_contents(&[&paste_contents(&[&a, &b]).unwrap(), &c]).unwrap();
        let right = paste_contents(&[&a, &paste_contents(&[&b, &c]).unwrap()]).unwrap();
        let flat = paste_contents(&[&a, &b, &c]).unwrap();
        prop_assert_eq!(&left, &flat);
        prop_assert_eq!(&right, &flat);
    }

    #[test]
    fn plan_phases_converges_and_respects_fanout(n in 1usize..5000, fanout in 2usize..50) {
        let phases = plan_phases(n, fanout);
        // last phase is a single group
        prop_assert_eq!(phases.last().unwrap().len(), 1);
        // groups within each phase are contiguous, ordered, and ≤ fanout wide
        for phase in &phases {
            let mut cursor = 0usize;
            for &(start, end) in phase {
                prop_assert_eq!(start, cursor);
                prop_assert!(end > start);
                prop_assert!(end - start <= fanout);
                cursor = end;
            }
        }
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(
        xs in proptest::collection::vec(-1000.0f64..1000.0, 2..50),
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 0.5 + 1.0).collect();
        let r = stats::pearson(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        prop_assert!((stats::pearson(&xs, &ys) - stats::pearson(&ys, &xs)).abs() < 1e-12);
    }

    #[test]
    fn ols_recovers_exact_lines(slope in -50.0f64..50.0, intercept in -50.0f64..50.0, n in 3usize..60) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let (s, b, _) = stats::simple_ols(&xs, &ys);
        prop_assert!((s - slope).abs() < 1e-6, "slope {s} vs {slope}");
        prop_assert!((b - intercept).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_monotone(z1 in -6.0f64..6.0, z2 in -6.0f64..6.0) {
        let (lo, hi) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        prop_assert!(stats::normal_cdf(lo) <= stats::normal_cdf(hi) + 1e-12);
    }
}
