//! `fair-top` — live view of a running (or finished) campaign.
//!
//! Tails a `fair-telemetry-stream/1` file as the campaign's driver
//! appends to it (see `savanna::stream`), folds the frames into a
//! [`telemetry::LiveModel`], and renders progress, throughput, ETA,
//! utilization, and straggler candidates. A torn tail — the frame the
//! writer is mid-append on — is never an error; the reader waits for
//! the rest of it.
//!
//! Usage:
//!
//! ```text
//! fair-top <campaign.stream>               # follow until Complete
//!     [--interval-ms N]                    # poll cadence (default 200)
//! fair-top --once <campaign.stream>        # one snapshot of the
//!                                          # stream as it is now
//! fair-top --mode auto|term|text ...       # output mode (default auto:
//!                                          # term iff stdout is a tty)
//! fair-top --theme savanna|plain|mono ...  # term-mode theme
//! ```
//!
//! `--once --mode text` is byte-stable for a given stream prefix — CI
//! goldens pin it. In term mode, `--follow` repaints the screen on each
//! poll; in text mode it prints one snapshot per fold that changed the
//! model, separated by form feeds, so a piped follow stays parseable.
//!
//! Exit status: `0` on success (including a clean `Complete`), `2` on
//! usage errors or a corrupt/unreadable stream.

use std::process::ExitCode;
use std::time::Duration;

use telemetry::render::{render_live, CLEAR_SCREEN};
use telemetry::{LiveModel, OutputMode, RenderMode, StreamReader, Theme};

fn usage() -> &'static str {
    "usage: fair-top [--follow] <campaign.stream> [--interval-ms N]\n\
     \x20      fair-top --once <campaign.stream>\n\
     \x20  options: --mode auto|term|text   output mode (default auto)\n\
     \x20           --theme NAME            term theme (savanna|plain|mono)"
}

fn fail(message: &str) -> ExitCode {
    eprintln!("fair-top: {message}");
    eprintln!("{}", usage());
    ExitCode::from(2)
}

/// Pulls `--flag VALUE` out of `args`, parsing VALUE with `parse`.
fn take_option<T>(
    args: &mut Vec<String>,
    flag: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(format!("{flag} needs a value"));
            }
            let raw = args.remove(i + 1);
            args.remove(i);
            parse(&raw)
                .map(Some)
                .ok_or_else(|| format!("invalid value for {flag}: {raw}"))
        }
    }
}

/// Removes `flag` from `args`, reporting whether it was present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err("missing stream path".to_string());
    }

    let once = take_flag(&mut args, "--once");
    let _ = take_flag(&mut args, "--follow"); // follow is the default
    let mode = take_option(&mut args, "--mode", OutputMode::parse)?
        .unwrap_or(OutputMode::Auto)
        .resolve();
    let theme = match take_option(&mut args, "--theme", |s| Some(s.to_string()))? {
        // An explicit theme only matters when escapes are emitted at all.
        Some(name) if mode == RenderMode::Term => {
            Theme::named(&name).ok_or_else(|| format!("unknown theme {name:?}"))?
        }
        _ => Theme::for_mode(mode),
    };
    let interval = take_option(&mut args, "--interval-ms", |s| s.parse::<u64>().ok())?
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(200));
    if args.len() != 1 {
        return Err("expected exactly one stream path".to_string());
    }

    let path = std::path::Path::new(&args[0]);
    let mut reader =
        StreamReader::open(path).map_err(|e| format!("cannot open {}: {e}", args[0]))?;
    let mut model = LiveModel::new();

    if once {
        // Fold whatever the stream holds right now; a torn tail is
        // simply data not yet written.
        let records = reader.poll().map_err(|e| format!("{}: {e}", args[0]))?;
        model.fold_all(&records);
        print!("{}", render_live(&model, &theme));
        return Ok(ExitCode::SUCCESS);
    }

    let mut rendered = false;
    loop {
        let records = reader.poll().map_err(|e| format!("{}: {e}", args[0]))?;
        let advanced = !records.is_empty();
        model.fold_all(&records);
        if advanced || !rendered {
            rendered = true;
            match mode {
                RenderMode::Term => {
                    print!("{CLEAR_SCREEN}{}", render_live(&model, &theme));
                }
                RenderMode::Text => {
                    // Form-feed-separated snapshots keep a piped follow
                    // machine-splittable.
                    print!("{}\u{c}", render_live(&model, &theme));
                }
            }
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        if reader.is_complete() {
            return Ok(ExitCode::SUCCESS);
        }
        std::thread::sleep(interval);
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => fail(&message),
    }
}
