//! Property tests: the pool's data-parallel results must equal the
//! sequential computation for arbitrary shapes.

use exec::ThreadPool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_index_equals_sequential(n in 0usize..2000, threads in 1usize..8, mul in 1u64..1000) {
        let pool = ThreadPool::new(threads);
        let parallel = pool.map_index(n, |i| i as u64 * mul);
        let sequential: Vec<u64> = (0..n).map(|i| i as u64 * mul).collect();
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn map_reduce_equals_fold(n in 0usize..3000, threads in 1usize..8) {
        let pool = ThreadPool::new(threads);
        let parallel = pool.map_reduce(n, 0u64, |i| (i as u64).wrapping_mul(2_654_435_761), |a, b| a.wrapping_add(b));
        let sequential = (0..n).fold(0u64, |acc, i| acc.wrapping_add((i as u64).wrapping_mul(2_654_435_761)));
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn chunk_size_never_changes_results(n in 1usize..500, chunk in 1usize..600) {
        let pool = ThreadPool::new(4);
        let sum = std::sync::atomic::AtomicU64::new(0);
        pool.for_each_index_chunked(n, chunk, |i| {
            sum.fetch_add(i as u64 + 1, std::sync::atomic::Ordering::Relaxed);
        });
        let expected: u64 = (1..=n as u64).sum();
        prop_assert_eq!(sum.into_inner(), expected);
    }
}

/// Regression for the `PoolStats` snapshot fix: when one pool is shared
/// by nested scopes running concurrently, `stats()` read immediately
/// after the scopes complete must already include every job they spawned
/// — no polling, no sleeps. Before the fix the three counters were read
/// as independent relaxed loads, so a reader synchronized only through
/// scope completion could observe a torn, stale triple.
#[test]
fn stats_are_synchronized_with_nested_scope_completion() {
    let pool = ThreadPool::new(4);
    let before = pool.stats().jobs_executed;
    let outer = 8usize;
    let inner = 16usize;
    // each outer job opens its own nested scope on the same pool
    pool.scope(|s| {
        for _ in 0..outer {
            s.spawn(|| {
                pool.scope(|s2| {
                    for _ in 0..inner {
                        s2.spawn(|| {
                            std::hint::black_box(0u64);
                        });
                    }
                });
            });
        }
    });
    // every nested job happened-before the outer scope returned, so the
    // very first stats() read must account for all of them
    let after = pool.stats().jobs_executed;
    assert_eq!(
        after - before,
        (outer + outer * inner) as u64,
        "stats() missed jobs that completed before the scope returned"
    );
}

/// `stats()` must return a consistent cut even while the counters churn:
/// sample repeatedly under load and require every snapshot to be
/// monotonically non-decreasing relative to the previous one (a torn
/// read mixing old and new counter values can violate this across the
/// triple when correlated with a quiescent re-read).
#[test]
fn stats_snapshots_are_monotonic_under_load() {
    let pool = ThreadPool::new(4);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|ts| {
        ts.spawn(|| {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                pool.scope(|s| {
                    for _ in 0..32 {
                        s.spawn(|| {
                            std::hint::black_box(0u64);
                        });
                    }
                });
            }
        });
        let mut prev = pool.stats();
        for _ in 0..200 {
            let cur = pool.stats();
            assert!(
                cur.jobs_executed >= prev.jobs_executed,
                "jobs went backwards"
            );
            assert!(cur.steals >= prev.steals, "steals went backwards");
            assert!(
                cur.park_micros >= prev.park_micros,
                "park time went backwards"
            );
            prev = cur;
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}
