//! Property tests: the pool's data-parallel results must equal the
//! sequential computation for arbitrary shapes.

use exec::ThreadPool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_index_equals_sequential(n in 0usize..2000, threads in 1usize..8, mul in 1u64..1000) {
        let pool = ThreadPool::new(threads);
        let parallel = pool.map_index(n, |i| i as u64 * mul);
        let sequential: Vec<u64> = (0..n).map(|i| i as u64 * mul).collect();
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn map_reduce_equals_fold(n in 0usize..3000, threads in 1usize..8) {
        let pool = ThreadPool::new(threads);
        let parallel = pool.map_reduce(n, 0u64, |i| (i as u64).wrapping_mul(2_654_435_761), |a, b| a.wrapping_add(b));
        let sequential = (0..n).fold(0u64, |acc, i| acc.wrapping_add((i as u64).wrapping_mul(2_654_435_761)));
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn chunk_size_never_changes_results(n in 1usize..500, chunk in 1usize..600) {
        let pool = ThreadPool::new(4);
        let sum = std::sync::atomic::AtomicU64::new(0);
        pool.for_each_index_chunked(n, chunk, |i| {
            sum.fetch_add(i as u64 + 1, std::sync::atomic::Ordering::Relaxed);
        });
        let expected: u64 = (1..=n as u64).sum();
        prop_assert_eq!(sum.into_inner(), expected);
    }
}
