//! Data-parallel loop helpers with dynamic load balancing.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pool::ThreadPool;

/// Picks a chunk size that amortizes the shared-counter traffic while
/// still giving each worker many chunks to balance a heavy tail.
fn auto_chunk(n: usize, threads: usize) -> usize {
    // Aim for ~8 chunks per worker, floor of 1.
    (n / (threads * 8)).max(1)
}

impl ThreadPool {
    /// Runs `f(i)` for every `i in 0..n`, in parallel.
    ///
    /// Iterations are handed out in chunks from a shared atomic counter, so
    /// workers that draw short iterations simply come back for more — the
    /// right behaviour for heterogeneous workloads like per-feature iRF
    /// runs.
    pub fn for_each_index<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.for_each_index_chunked(n, auto_chunk(n, self.num_threads()), f);
    }

    /// [`ThreadPool::for_each_index`] with an explicit chunk size.
    pub fn for_each_index_chunked<F>(&self, n: usize, chunk: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let chunk = chunk.max(1);
        if n <= chunk || self.num_threads() == 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let f = &f;
        let next = &next;
        self.scope(|s| {
            for _ in 0..self.num_threads() {
                s.spawn(move || loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        return;
                    }
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        f(i);
                    }
                });
            }
        });
    }

    /// Computes `f(i)` for every `i in 0..n` in parallel and collects the
    /// results in index order.
    pub fn map_index<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        {
            let slots = SliceCells::new(&mut out);
            self.for_each_index(n, |i| {
                // SAFETY (inside SliceCells): each index is written exactly once.
                slots.write(i, Some(f(i)));
            });
        }
        out.into_iter()
            .map(|slot| slot.expect("map_index slot not filled"))
            .collect()
    }

    /// [`ThreadPool::map_index`] with an explicit handout order: workers
    /// pull positions from a shared counter and run `f(order[pos])`, so
    /// the indices *start* in the order given while results are still
    /// collected by original index.
    ///
    /// Use this when per-index costs are known to be skewed: handing the
    /// heaviest indices out first (LPT list scheduling) keeps a straggler
    /// from being queued behind cheap work at the tail. Hands out one
    /// index at a time — the right granularity for few, coarse tasks
    /// (e.g. campaign shards), where chunking would defeat the ordering.
    ///
    /// `order` must be a permutation of `0..n`; each index must appear
    /// exactly once (violations panic at the collection step).
    ///
    /// Worker tasks are capped at the host's available parallelism:
    /// these are coarse CPU-bound tasks, so running more workers than
    /// hardware threads only adds context-switch and cache-bounce cost
    /// (the shared counter already load-balances however few workers
    /// run). Results are identical at any worker count.
    pub fn map_index_ordered<T, F>(&self, n: usize, order: &[usize], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        assert_eq!(order.len(), n, "order must be a permutation of 0..n");
        if n == 0 {
            return Vec::new();
        }
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(usize::MAX);
        let workers = self.num_threads().min(n).min(hw);
        if workers == 1 {
            let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
            for &i in order {
                out[i] = Some(f(i));
            }
            return out
                .into_iter()
                .map(|slot| slot.expect("order is not a permutation of 0..n"))
                .collect();
        }
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        {
            let slots = SliceCells::new(&mut out);
            let next = AtomicUsize::new(0);
            let f = &f;
            let next = &next;
            let slots = &slots;
            self.scope(|s| {
                for _ in 0..workers {
                    s.spawn(move || loop {
                        let pos = next.fetch_add(1, Ordering::Relaxed);
                        if pos >= n {
                            return;
                        }
                        let i = order[pos];
                        // SAFETY (inside SliceCells): a permutation hands
                        // each index to exactly one worker, so each slot
                        // is written exactly once.
                        slots.write(i, Some(f(i)));
                    });
                }
            });
        }
        out.into_iter()
            .map(|slot| slot.expect("order is not a permutation of 0..n"))
            .collect()
    }

    /// Classic fork–join: runs `a` on the calling thread and `b` on the
    /// pool, returning both results. The building block for recursive
    /// divide-and-conquer parallelism.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let mut rb: Option<RB> = None;
        let ra = {
            let rb_slot = &mut rb;
            self.scope(|s| {
                s.spawn(move || {
                    *rb_slot = Some(b());
                });
                a()
            })
        };
        (ra, rb.expect("scope waits for b"))
    }

    /// Parallel fold: maps every index through `f` and reduces the partial
    /// results with `reduce`, starting from `init` on each worker.
    pub fn map_reduce<T, F, R>(&self, n: usize, init: T, f: F, reduce: R) -> T
    where
        T: Send + Sync + Clone,
        F: Fn(usize) -> T + Sync,
        R: Fn(T, T) -> T + Sync + Send,
    {
        let partials = parking_lot::Mutex::new(Vec::new());
        let chunk = auto_chunk(n, self.num_threads());
        let next = AtomicUsize::new(0);
        let f = &f;
        let reduce = &reduce;
        let next = &next;
        let partials_ref = &partials;
        let init_ref = &init;
        self.scope(|s| {
            for _ in 0..self.num_threads() {
                s.spawn(move || {
                    let mut acc = init_ref.clone();
                    let mut touched = false;
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for i in start..end {
                            acc = reduce(acc, f(i));
                            touched = true;
                        }
                    }
                    if touched {
                        partials_ref.lock().push(acc);
                    }
                });
            }
        });
        partials.into_inner().into_iter().fold(init, reduce)
    }
}

/// A shared view of a mutable slice in which each index is written at most
/// once by exactly one thread. This is the standard "scatter into disjoint
/// slots" pattern used to collect parallel map results.
struct SliceCells<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access discipline (disjoint single writes, enforced by the
// index-partitioning of for_each_index) makes concurrent use sound.
unsafe impl<T: Send> Sync for SliceCells<'_, T> {}
unsafe impl<T: Send> Send for SliceCells<'_, T> {}

impl<'a, T> SliceCells<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    fn write(&self, index: usize, value: T) {
        assert!(index < self.len, "SliceCells index out of bounds");
        // SAFETY: bounds-checked above; each index written exactly once by
        // one thread (guaranteed by the chunked counter in the callers), so
        // no two threads alias the same slot.
        unsafe {
            self.ptr.add(index).write(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_index_orders_results() {
        let pool = ThreadPool::new(4);
        let out = pool.map_index(1000, |i| i * 2);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn map_index_empty() {
        let pool = ThreadPool::new(4);
        let out: Vec<usize> = pool.map_index(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn map_index_ordered_matches_map_index() {
        let pool = ThreadPool::new(4);
        let order: Vec<usize> = (0..500).rev().collect();
        let out = pool.map_index_ordered(500, &order, |i| i * 3);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn map_index_ordered_single_thread_follows_order() {
        let pool = ThreadPool::new(1);
        let visited = parking_lot::Mutex::new(Vec::new());
        let order = vec![2usize, 0, 3, 1];
        let out = pool.map_index_ordered(4, &order, |i| {
            visited.lock().push(i);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(visited.into_inner(), order);
    }

    #[test]
    fn map_index_ordered_empty() {
        let pool = ThreadPool::new(4);
        let out: Vec<usize> = pool.map_index_ordered(0, &[], |i| i);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn map_index_ordered_rejects_wrong_length() {
        let pool = ThreadPool::new(2);
        let _ = pool.map_index_ordered(3, &[0, 1], |i| i);
    }

    #[test]
    fn for_each_index_visits_everything_once() {
        let pool = ThreadPool::new(8);
        let flags: Vec<AtomicUsize> = (0..5000).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each_index(flags.len(), |i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_small_n_runs_inline() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.for_each_index_chunked(3, 10, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| (0..100u64).sum::<u64>(), || "side".to_string());
        assert_eq!(a, 4950);
        assert_eq!(b, "side");
    }

    #[test]
    fn join_recursive_divide_and_conquer() {
        fn psum(pool: &ThreadPool, xs: &[u64]) -> u64 {
            if xs.len() <= 64 {
                return xs.iter().sum();
            }
            let mid = xs.len() / 2;
            let (lo, hi) = xs.split_at(mid);
            let (a, b) = pool.join(|| psum(pool, lo), || psum(pool, hi));
            a + b
        }
        let pool = ThreadPool::new(4);
        let xs: Vec<u64> = (0..5000).collect();
        assert_eq!(psum(&pool, &xs), xs.iter().sum());
    }

    #[test]
    fn map_reduce_sums() {
        let pool = ThreadPool::new(4);
        let total = pool.map_reduce(1001, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, (0..1001u64).sum());
    }

    #[test]
    fn map_reduce_empty_returns_init() {
        let pool = ThreadPool::new(4);
        let total = pool.map_reduce(0, 7u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, 7);
    }
}
