//! Structured (borrowing) parallelism on top of the pool.

use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::latch::CountLatch;
use crate::pool::{Job, Shared, ThreadPool};

/// A scope in which borrowed jobs can be spawned onto the pool.
///
/// Created by [`ThreadPool::scope`]. All jobs spawned on the scope are
/// guaranteed to have finished before `scope` returns, which is what makes
/// borrowing the enclosing stack frame sound.
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    latch: Arc<CountLatch>,
    panicked: Arc<AtomicBool>,
    /// Invariant over 'scope, mirroring `std::thread::Scope`.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a job that may borrow data living at least as long as the
    /// scope. Panics inside the job are caught and re-raised (as a generic
    /// panic) when the scope closes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.add(1);
        let latch = Arc::clone(&self.latch);
        let panicked = Arc::clone(&self.panicked);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = std::panic::catch_unwind(AssertUnwindSafe(f));
            if result.is_err() {
                panicked.store(true, Ordering::SeqCst);
            }
            latch.done();
        });
        // SAFETY: the closing `scope` call waits on `latch` before
        // returning, so the job cannot outlive the 'scope borrow. The
        // transmute only erases the lifetime; the type is otherwise
        // identical.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.shared.injector.push(job);
        self.shared.notify_one();
    }
}

impl ThreadPool {
    /// Runs `f` with a [`Scope`] on which borrowing jobs can be spawned,
    /// waiting for all of them to finish before returning.
    ///
    /// # Panics
    ///
    /// If any spawned job panicked, the panic is surfaced here after all
    /// jobs have completed.
    ///
    /// # Example
    ///
    /// ```
    /// let pool = exec::ThreadPool::new(2);
    /// let mut halves = vec![0u64; 2];
    /// let (lo, hi) = halves.split_at_mut(1);
    /// pool.scope(|s| {
    ///     s.spawn(|| lo[0] = (0..100u64).sum());
    ///     s.spawn(|| hi[0] = (100..200u64).sum());
    /// });
    /// assert_eq!(halves.iter().sum::<u64>(), (0..200u64).sum());
    /// ```
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope>) -> R,
    {
        let scope = Scope {
            shared: Arc::clone(self.shared()),
            latch: Arc::new(CountLatch::new()),
            panicked: Arc::new(AtomicBool::new(false)),
            _marker: PhantomData,
        };
        let result = f(&scope);
        // Helping wait: while this scope's jobs are outstanding, execute
        // *any* queued pool job instead of blocking. Without this, nested
        // scopes (e.g. recursive `join`) deadlock once every worker is
        // parked in a latch. Jobs run here may belong to other scopes —
        // they are self-contained closures, so that is safe.
        while scope.latch.outstanding() > 0 {
            match scope.shared.steal_one() {
                // contain panics from foreign raw-spawn jobs: they must
                // not unwind through this unrelated scope
                Some(job) => {
                    scope.shared.note_job_executed();
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                }
                None => {
                    // nothing stealable: our jobs are mid-flight on other
                    // threads; yield briefly rather than spinning hot
                    std::thread::yield_now();
                }
            }
        }
        if scope.panicked.load(Ordering::SeqCst) {
            panic!("a job spawned in ThreadPool::scope panicked");
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_waits_for_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::new(2);
        let value = pool.scope(|_| 42);
        assert_eq!(value, 42);
    }

    #[test]
    fn scope_jobs_can_borrow_mutably_via_split() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 100];
        pool.scope(|s| {
            for (i, chunk) in data.chunks_mut(10).enumerate() {
                s.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = i * 10 + j;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn scope_propagates_job_panic() {
        let pool = ThreadPool::new(2);
        pool.scope(|s| {
            s.spawn(|| panic!("boom"));
        });
    }

    #[test]
    fn empty_scope_is_fine() {
        let pool = ThreadPool::new(1);
        pool.scope(|_| {});
    }
}
