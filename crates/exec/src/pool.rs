//! The work-stealing thread pool.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};

pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// A monotonic snapshot of pool activity since construction.
///
/// Counters are maintained with release-ordered atomics: cheap enough to
/// leave on permanently, precise enough for telemetry (`jobs_executed` is
/// exact; `steals` and `park_micros` are exact per worker, summed).
/// [`ThreadPool::stats`] returns a *consistent* snapshot: the three
/// counters are re-read until two consecutive reads agree, so the triple
/// is a cut of the counter history rather than three unrelated values
/// torn across concurrent updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Jobs executed to completion (including panicked raw jobs).
    pub jobs_executed: u64,
    /// Jobs a worker obtained from a *sibling's* deque rather than its
    /// own or the injector — the work-stealing balance signal.
    pub steals: u64,
    /// Cumulative wall-clock microseconds workers spent parked idle.
    pub park_micros: u64,
}

/// Shared state between pool handle and worker threads.
pub(crate) struct Shared {
    pub(crate) injector: Injector<Job>,
    pub(crate) stealers: Vec<Stealer<Job>>,
    /// Number of sleeping workers, used to avoid needless wakeups.
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
    /// Mutex/condvar pair used only for parking idle workers.
    sleep_lock: Mutex<()>,
    sleep_cond: Condvar,
    jobs_executed: AtomicU64,
    steals: AtomicU64,
    park_micros: AtomicU64,
}

impl Shared {
    /// Wakes at least one parked worker (no-op if none are parked).
    pub(crate) fn notify_one(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = self.sleep_lock.lock();
            self.sleep_cond.notify_one();
        }
    }

    fn notify_all(&self) {
        let _guard = self.sleep_lock.lock();
        self.sleep_cond.notify_all();
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Each worker owns a LIFO deque; idle workers steal from the global
/// injector first and then from sibling deques, which keeps hot data local
/// while still balancing heavy-tailed workloads.
///
/// Dropping the pool signals shutdown and joins all workers; jobs already
/// queued are drained first.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.handles.len())
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` worker threads (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(Worker::stealer).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            sleep_cond: Condvar::new(),
            jobs_executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            park_micros: AtomicU64::new(0),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(index, worker)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("exec-worker-{index}"))
                    .spawn(move || worker_loop(index, worker, &shared))
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// Creates a pool sized to the machine ([`crate::default_threads`]).
    pub fn with_default_threads() -> Self {
        Self::new(crate::default_threads())
    }

    /// Number of worker threads in the pool.
    pub fn num_threads(&self) -> usize {
        self.handles.len()
    }

    /// Submits a fire-and-forget job.
    ///
    /// The job may run on any worker thread at any later time. Use
    /// [`ThreadPool::scope`] when the job borrows stack data or when you
    /// need to wait for completion.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.injector.push(Box::new(job));
        self.shared.notify_one();
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Activity counters since the pool was created, as a consistent
    /// snapshot.
    ///
    /// The three counters are updated independently by many threads, so a
    /// naive triple of loads can observe a state no single moment ever had
    /// (e.g. a steal counted but its job not yet, taken from two different
    /// in-flight updates). Because every counter is monotonic, two
    /// *consecutive identical* read triples bracket a quiescent point and
    /// therefore form a consistent cut — `stats()` re-reads until that
    /// happens. When the pool is shared by nested scopes the caller's own
    /// happens-before edge (the scope's completion latch) plus the
    /// acquire loads guarantee that everything the caller waited on is
    /// included in the snapshot.
    ///
    /// Under *continuous* counter churn from unrelated work the loop is
    /// bounded: after a fixed number of rounds the freshest read is
    /// returned (still monotonic, merely not provably torn-free — exactly
    /// the situation where no consistent cut is observable without
    /// stopping the pool).
    pub fn stats(&self) -> PoolStats {
        let read = || PoolStats {
            jobs_executed: self.shared.jobs_executed.load(Ordering::Acquire),
            steals: self.shared.steals.load(Ordering::Acquire),
            park_micros: self.shared.park_micros.load(Ordering::Acquire),
        };
        let mut prev = read();
        for _ in 0..1024 {
            let cur = read();
            if cur == prev {
                return cur;
            }
            prev = cur;
            std::hint::spin_loop();
        }
        prev
    }
}

impl Shared {
    /// Counts one executed job — called by whichever thread runs it (a
    /// pool worker or a helping waiter in `scope`), *before* the job's
    /// closure. Counting first means that once a scope's completion latch
    /// releases (inside the final job), every job of that scope is
    /// already visible in [`PoolStats::jobs_executed`].
    pub(crate) fn note_job_executed(&self) {
        self.jobs_executed.fetch_add(1, Ordering::Release);
    }

    /// Steals one runnable job from the injector or any worker deque —
    /// used by helping waiters (threads blocked in `scope`) so nested
    /// scopes cannot deadlock the pool.
    pub(crate) fn steal_one(&self) -> Option<Job> {
        loop {
            let mut retry = false;
            match self.injector.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
            for stealer in &self.stealers {
                match stealer.steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if !retry {
                return None;
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Finds the next runnable job for worker `index`.
fn find_job(index: usize, local: &Worker<Job>, shared: &Shared) -> Option<Job> {
    if let Some(job) = local.pop() {
        return Some(job);
    }
    // Repeatedly try the injector (batch-stealing into the local deque) and
    // then sibling deques until everything reports Empty.
    loop {
        let mut retry = false;
        match shared.injector.steal_batch_and_pop(local) {
            Steal::Success(job) => return Some(job),
            Steal::Retry => retry = true,
            Steal::Empty => {}
        }
        for (victim, stealer) in shared.stealers.iter().enumerate() {
            if victim == index {
                continue;
            }
            match stealer.steal() {
                Steal::Success(job) => {
                    shared.steals.fetch_add(1, Ordering::Release);
                    return Some(job);
                }
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

fn worker_loop(index: usize, local: Worker<Job>, shared: &Shared) {
    loop {
        if let Some(job) = find_job(index, &local, shared) {
            // A panicking raw `spawn` job must not kill the worker: the
            // pool would silently lose capacity. Scope jobs catch their
            // own panics and re-raise at the scope boundary; raw jobs'
            // panics are contained here (the paying caller is gone).
            shared.note_job_executed();
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Park until new work arrives. Re-check queues under the sleep lock
        // to close the race between the emptiness check and parking.
        let mut guard = shared.sleep_lock.lock();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if !shared.injector.is_empty() {
            continue;
        }
        shared.sleepers.fetch_add(1, Ordering::Relaxed);
        let parked_at = std::time::Instant::now();
        shared
            .sleep_cond
            .wait_for(&mut guard, std::time::Duration::from_millis(50));
        shared
            .park_micros
            .fetch_add(parked_at.elapsed().as_micros() as u64, Ordering::Release);
        shared.sleepers.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spawn_runs_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let latch = Arc::new(crate::CountLatch::new());
        latch.add(100);
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            let l = Arc::clone(&latch);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
                l.done();
            });
        }
        latch.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        let latch = Arc::new(crate::CountLatch::new());
        latch.add(8);
        for _ in 0..8 {
            let c = Arc::clone(&counter);
            let l = Arc::clone(&latch);
            pool.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                c.fetch_add(1, Ordering::Relaxed);
                l.done();
            });
        }
        latch.wait();
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn panicking_spawn_job_does_not_kill_the_worker() {
        let pool = ThreadPool::new(1);
        let latch = Arc::new(crate::CountLatch::new());
        latch.add(1);
        let l = Arc::clone(&latch);
        pool.spawn(move || {
            l.done();
            panic!("raw job panic");
        });
        latch.wait();
        // the single worker must still be alive to run this job
        let counter = Arc::new(AtomicU64::new(0));
        let latch2 = Arc::new(crate::CountLatch::new());
        latch2.add(1);
        let c = Arc::clone(&counter);
        let l2 = Arc::clone(&latch2);
        pool.spawn(move || {
            c.fetch_add(1, Ordering::Relaxed);
            l2.done();
        });
        latch2.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stats_count_executed_jobs() {
        let pool = ThreadPool::new(4);
        let latch = Arc::new(crate::CountLatch::new());
        latch.add(50);
        for _ in 0..50 {
            let l = Arc::clone(&latch);
            pool.spawn(move || l.done());
        }
        latch.wait();
        // jobs are counted *before* their closure runs, so once the latch
        // (released inside each closure) opens, all 50 increments
        // happened-before this load — no polling needed
        assert_eq!(pool.stats().jobs_executed, 50);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.num_threads(), 1);
    }

    #[test]
    fn jobs_spawned_from_jobs_complete() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        let latch = Arc::new(crate::CountLatch::new());
        latch.add(10);
        let shared = pool.shared().clone();
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            let l = Arc::clone(&latch);
            let s = Arc::clone(&shared);
            pool.spawn(move || {
                // nested job via raw injector, mirroring what Scope does
                let c2 = Arc::clone(&c);
                l.add(1);
                let l2 = Arc::clone(&l);
                s.injector.push(Box::new(move || {
                    c2.fetch_add(1, Ordering::Relaxed);
                    l2.done();
                }));
                s.notify_one();
                c.fetch_add(1, Ordering::Relaxed);
                l.done();
            });
        }
        latch.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }
}
