//! Work-stealing thread pool and parallel primitives.
//!
//! This crate is the parallel-execution substrate shared by the
//! `fair-workflows` workspace: `iorf` trains forests on it, `tabular`
//! pastes file groups on it, and `savanna`'s local executor runs campaign
//! tasks on it.
//!
//! The design follows the classic work-stealing architecture (one
//! [`crossbeam::deque::Worker`] per thread, a global injector, random
//! stealing) with a small, safe surface:
//!
//! * [`ThreadPool::spawn`] for fire-and-forget `'static` jobs,
//! * [`ThreadPool::scope`] for structured, borrowing parallelism (waiters
//!   *help* execute queued jobs, so nested scopes and recursive
//!   [`ThreadPool::join`] never deadlock the pool),
//! * [`ThreadPool::join`] for fork–join divide and conquer,
//! * [`ThreadPool::for_each_index`] / [`ThreadPool::map_index`] for
//!   data-parallel loops with dynamic (counter-based) load balancing —
//!   important because workloads like iRF-LOOP have heavy-tailed,
//!   heterogeneous task durations.
//!
//! # Example
//!
//! ```
//! let pool = exec::ThreadPool::new(4);
//! let squares = pool.map_index(16, |i| i * i);
//! assert_eq!(squares[5], 25);
//! ```

#![deny(missing_docs)]

mod latch;
mod par;
mod pool;
mod scope;

pub use latch::CountLatch;
pub use pool::{PoolStats, ThreadPool};
pub use scope::Scope;

/// Returns a sensible default parallelism degree for this machine.
///
/// This is [`std::thread::available_parallelism`] clamped to at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
