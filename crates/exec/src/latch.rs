//! A counting latch used to wait for a dynamic set of jobs to finish.

use parking_lot::{Condvar, Mutex};

/// A counting latch: jobs are registered with [`CountLatch::add`], signal
/// completion with [`CountLatch::done`], and a waiter blocks in
/// [`CountLatch::wait`] until the count returns to zero.
///
/// Unlike a one-shot barrier, the count may grow while jobs are running
/// (a running job may spawn more jobs), which is exactly what
/// [`crate::Scope`] needs.
#[derive(Debug, Default)]
pub struct CountLatch {
    state: Mutex<usize>,
    cond: Condvar,
}

impl CountLatch {
    /// Creates a latch with an initial count of zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `n` additional outstanding jobs.
    pub fn add(&self, n: usize) {
        let mut count = self.state.lock();
        *count += n;
    }

    /// Marks one job as complete, waking waiters if the count hits zero.
    ///
    /// # Panics
    ///
    /// Panics if called more times than jobs were added; that always
    /// indicates a bookkeeping bug in the caller.
    pub fn done(&self) {
        let mut count = self.state.lock();
        assert!(
            *count > 0,
            "CountLatch::done called with zero outstanding jobs"
        );
        *count -= 1;
        if *count == 0 {
            self.cond.notify_all();
        }
    }

    /// Blocks until the outstanding-job count is zero.
    ///
    /// Returns immediately if nothing is outstanding.
    pub fn wait(&self) {
        let mut count = self.state.lock();
        while *count > 0 {
            self.cond.wait(&mut count);
        }
    }

    /// Returns the current outstanding-job count (racy; for diagnostics).
    pub fn outstanding(&self) -> usize {
        *self.state.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wait_on_zero_returns_immediately() {
        let latch = CountLatch::new();
        latch.wait();
    }

    #[test]
    fn add_done_wait_roundtrip() {
        let latch = Arc::new(CountLatch::new());
        latch.add(3);
        assert_eq!(latch.outstanding(), 3);
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let l = Arc::clone(&latch);
                std::thread::spawn(move || l.done())
            })
            .collect();
        latch.wait();
        assert_eq!(latch.outstanding(), 0);
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "zero outstanding")]
    fn done_without_add_panics() {
        CountLatch::new().done();
    }

    #[test]
    fn count_may_grow_while_waiting() {
        let latch = Arc::new(CountLatch::new());
        latch.add(1);
        let l = Arc::clone(&latch);
        let t = std::thread::spawn(move || {
            // Simulate a job that registers a successor before finishing.
            l.add(1);
            l.done();
            std::thread::sleep(std::time::Duration::from_millis(5));
            l.done();
        });
        latch.wait();
        assert_eq!(latch.outstanding(), 0);
        t.join().unwrap();
    }
}
