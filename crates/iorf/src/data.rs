//! The samples × features matrix.

/// A dense row-major matrix: `rows` samples by `cols` features.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
    names: Vec<String>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// If `data.len() != rows * cols` or any value is non-finite.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(
            data.iter().all(|x| x.is_finite()),
            "matrix values must be finite"
        );
        let names = (0..cols).map(|j| format!("f{j}")).collect();
        Self {
            rows,
            cols,
            data,
            names,
        }
    }

    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::new(rows, cols, vec![0.0; rows * cols])
    }

    /// Replaces feature names.
    ///
    /// # Panics
    /// If the count differs from the column count.
    pub fn with_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(names.len(), self.cols, "one name per column");
        self.names = names;
        self
    }

    /// Number of samples.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of features.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Feature names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Value at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(value.is_finite());
        self.data[row * self.cols + col] = value;
    }

    /// One sample as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// One feature as an owned column vector.
    pub fn column(&self, col: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// A copy with column `drop_col` removed — the X matrix for an
    /// iRF-LOOP run targeting that feature. Returns the new matrix and a
    /// mapping from new column index to original column index.
    pub fn without_column(&self, drop_col: usize) -> (Matrix, Vec<usize>) {
        assert!(drop_col < self.cols);
        let mut data = Vec::with_capacity(self.rows * (self.cols - 1));
        for r in 0..self.rows {
            let row = self.row(r);
            data.extend_from_slice(&row[..drop_col]);
            data.extend_from_slice(&row[drop_col + 1..]);
        }
        let mapping: Vec<usize> = (0..self.cols).filter(|&j| j != drop_col).collect();
        let names = mapping.iter().map(|&j| self.names[j].clone()).collect();
        (
            Matrix::new(self.rows, self.cols - 1, data).with_names(names),
            mapping,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn indexing() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(1), vec![2.0, 5.0]);
    }

    #[test]
    fn without_column_maps_indices() {
        let m = sample();
        let (x, map) = m.without_column(1);
        assert_eq!(x.cols(), 2);
        assert_eq!(x.row(0), &[1.0, 3.0]);
        assert_eq!(x.row(1), &[4.0, 6.0]);
        assert_eq!(map, vec![0, 2]);
        assert_eq!(x.names(), &["f0", "f2"]);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 7.5);
        assert_eq!(m.get(1, 0), 7.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_rejected() {
        Matrix::new(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        Matrix::new(1, 1, vec![f64::NAN]);
    }
}
