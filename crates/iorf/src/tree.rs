//! CART regression trees with weighted feature sampling.
//!
//! Splits minimize the sum of squared errors (equivalently: maximize
//! variance reduction). Candidate features at each split are drawn
//! *without replacement* according to a weight vector — uniform weights
//! give an ordinary random forest tree; importance-derived weights give
//! the iterative-RF behaviour of Basu et al. that iRF-LOOP builds on.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::data::Matrix;

/// Tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples in each leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub mtry: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_leaf: 3,
            mtry: 0, // 0 = derive from feature count at fit time
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    /// Total SSE decrease attributed to each feature.
    importance: Vec<f64>,
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    config: TreeConfig,
    weights: &'a [f64],
    rng: &'a mut StdRng,
    nodes: Vec<Node>,
    importance: Vec<f64>,
}

/// Draws `k` distinct feature indices with probability proportional to
/// `weights`. Features with zero weight can still be drawn once all
/// positive-weight features are exhausted (keeps mtry honest when the
/// weight vector is sparse).
fn weighted_sample_without_replacement(weights: &[f64], k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..weights.len()).collect();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k.min(weights.len()) {
        let total: f64 = remaining.iter().map(|&i| weights[i]).sum();
        let pick = if total <= 0.0 {
            // uniform fallback over what's left
            let r: f64 = rng.random();
            ((r * remaining.len() as f64) as usize).min(remaining.len() - 1)
        } else {
            let mut target: f64 = rng.random::<f64>() * total;
            let mut chosen = remaining.len() - 1;
            for (pos, &i) in remaining.iter().enumerate() {
                target -= weights[i];
                if target <= 0.0 {
                    chosen = pos;
                    break;
                }
            }
            chosen
        };
        out.push(remaining.swap_remove(pick));
    }
    out
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
    /// Indices partitioned: `left` then `right`.
    left: Vec<usize>,
    right: Vec<usize>,
}

impl<'a> Builder<'a> {
    /// Finds the best split of `indices` on `feature`; returns None when
    /// no valid split exists.
    fn best_split_on_feature(&self, indices: &[usize], feature: usize) -> Option<(f64, f64)> {
        let n = indices.len();
        let mut order: Vec<usize> = indices.to_vec();
        order.sort_by(|&a, &b| {
            self.x
                .get(a, feature)
                .partial_cmp(&self.x.get(b, feature))
                .expect("finite values")
        });
        // prefix sums of y and y² in sorted order
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let prefix: Vec<(f64, f64)> = order
            .iter()
            .map(|&i| {
                sum += self.y[i];
                sum2 += self.y[i] * self.y[i];
                (sum, sum2)
            })
            .collect();
        let (total_sum, total_sum2) = prefix[n - 1];
        let parent_sse = total_sum2 - total_sum * total_sum / n as f64;
        if parent_sse <= 1e-12 {
            return None; // already pure
        }
        let min_leaf = self.config.min_samples_leaf;
        let mut best: Option<(f64, f64)> = None; // (gain, threshold)
        for split_at in min_leaf..=(n - min_leaf) {
            if split_at == n {
                break;
            }
            let lo = self.x.get(order[split_at - 1], feature);
            let hi = self.x.get(order[split_at], feature);
            if lo == hi {
                continue; // cannot split between equal values
            }
            let (lsum, lsum2) = prefix[split_at - 1];
            let left_sse = lsum2 - lsum * lsum / split_at as f64;
            let rn = (n - split_at) as f64;
            let rsum = total_sum - lsum;
            let rsum2 = total_sum2 - lsum2;
            let right_sse = rsum2 - rsum * rsum / rn;
            let gain = parent_sse - left_sse - right_sse;
            if gain > best.map_or(1e-12, |(g, _)| g) {
                best = Some((gain, (lo + hi) / 2.0));
            }
        }
        best
    }

    fn find_best_split(&mut self, indices: &[usize]) -> Option<BestSplit> {
        let p = self.x.cols();
        let mtry = if self.config.mtry == 0 {
            (p / 3).max(1)
        } else {
            self.config.mtry.min(p)
        };
        let candidates = weighted_sample_without_replacement(self.weights, mtry, self.rng);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for feature in candidates {
            if let Some((gain, threshold)) = self.best_split_on_feature(indices, feature) {
                if gain > best.map_or(0.0, |(_, _, g)| g) {
                    best = Some((feature, threshold, gain));
                }
            }
        }
        let (feature, threshold, gain) = best?;
        let (left, right): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| self.x.get(i, feature) <= threshold);
        Some(BestSplit {
            feature,
            threshold,
            gain,
            left,
            right,
        })
    }

    fn build(&mut self, indices: &[usize], depth: usize) -> usize {
        let mean = indices.iter().map(|&i| self.y[i]).sum::<f64>() / indices.len() as f64;
        if depth >= self.config.max_depth || indices.len() < 2 * self.config.min_samples_leaf {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        match self.find_best_split(indices) {
            None => {
                self.nodes.push(Node::Leaf { value: mean });
                self.nodes.len() - 1
            }
            Some(split) => {
                self.importance[split.feature] += split.gain;
                let node_idx = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean }); // placeholder
                let left = self.build(&split.left, depth + 1);
                let right = self.build(&split.right, depth + 1);
                self.nodes[node_idx] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                node_idx
            }
        }
    }
}

impl DecisionTree {
    /// Fits a tree on the samples in `indices` (with repetitions allowed,
    /// i.e. a bootstrap sample), considering features according to
    /// `weights`.
    pub fn fit(
        x: &Matrix,
        y: &[f64],
        indices: &[usize],
        config: TreeConfig,
        weights: &[f64],
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(x.rows(), y.len(), "one target per sample");
        assert_eq!(weights.len(), x.cols(), "one weight per feature");
        assert!(!indices.is_empty(), "cannot fit on zero samples");
        assert!(config.min_samples_leaf >= 1);
        let mut builder = Builder {
            x,
            y,
            config,
            weights,
            rng,
            nodes: Vec::new(),
            importance: vec![0.0; x.cols()],
        };
        builder.build(indices, 0);
        DecisionTree {
            nodes: builder.nodes,
            importance: builder.importance,
        }
    }

    /// Predicts one sample.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Raw (unnormalized) per-feature SSE-decrease importance.
    pub fn importance(&self) -> &[f64] {
        &self.importance
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (diagnostics).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// y = step function of feature 1 (feature 0 is noise).
    fn step_data() -> (Matrix, Vec<f64>) {
        let n = 200;
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let noise = ((i * 31) % 17) as f64 / 17.0;
            let signal = (i % 10) as f64;
            data.push(noise);
            data.push(signal);
            y.push(if signal > 4.5 { 10.0 } else { -10.0 });
        }
        (Matrix::new(n, 2, data), y)
    }

    #[test]
    fn learns_a_step_function() {
        let (x, y) = step_data();
        let indices: Vec<usize> = (0..x.rows()).collect();
        let config = TreeConfig {
            max_depth: 4,
            min_samples_leaf: 2,
            mtry: 2,
        };
        let tree = DecisionTree::fit(&x, &y, &indices, config, &[1.0, 1.0], &mut rng(1));
        // perfect recovery of the step
        for (i, &target) in y.iter().enumerate() {
            assert_eq!(tree.predict(x.row(i)), target, "sample {i}");
        }
        // importance concentrated on feature 1
        let imp = tree.importance();
        assert!(imp[1] > 0.0);
        assert!(imp[1] > imp[0] * 10.0, "imp={imp:?}");
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = step_data();
        let indices: Vec<usize> = (0..x.rows()).collect();
        let config = TreeConfig {
            max_depth: 2,
            min_samples_leaf: 1,
            mtry: 2,
        };
        let tree = DecisionTree::fit(&x, &y, &indices, config, &[1.0, 1.0], &mut rng(1));
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let x = Matrix::new(10, 1, (0..10).map(|i| i as f64).collect());
        let y = vec![3.0; 10];
        let indices: Vec<usize> = (0..10).collect();
        let tree = DecisionTree::fit(&x, &y, &indices, TreeConfig::default(), &[1.0], &mut rng(1));
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[99.0]), 3.0);
    }

    #[test]
    fn zero_weight_features_avoided_when_alternatives_exist() {
        let (x, y) = step_data();
        let indices: Vec<usize> = (0..x.rows()).collect();
        // weight only feature 0 (the noise feature) to zero → splits use f1
        let config = TreeConfig {
            max_depth: 6,
            min_samples_leaf: 2,
            mtry: 1,
        };
        let tree = DecisionTree::fit(&x, &y, &indices, config, &[0.0, 1.0], &mut rng(2));
        assert_eq!(tree.importance()[0], 0.0);
        assert!(tree.importance()[1] > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = step_data();
        let indices: Vec<usize> = (0..x.rows()).collect();
        let cfg = TreeConfig {
            max_depth: 6,
            min_samples_leaf: 2,
            mtry: 1,
        };
        let a = DecisionTree::fit(&x, &y, &indices, cfg, &[1.0, 1.0], &mut rng(7));
        let b = DecisionTree::fit(&x, &y, &indices, cfg, &[1.0, 1.0], &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (x, y) = step_data();
        let indices: Vec<usize> = (0..x.rows()).collect();
        let config = TreeConfig {
            max_depth: 30,
            min_samples_leaf: 50,
            mtry: 2,
        };
        let tree = DecisionTree::fit(&x, &y, &indices, config, &[1.0, 1.0], &mut rng(3));
        // with 200 samples and ≥50 per leaf, at most 4 leaves → ≤ 7 nodes
        assert!(tree.node_count() <= 7, "nodes={}", tree.node_count());
    }

    #[test]
    fn weighted_sampling_distinct_and_bounded() {
        let mut r = rng(5);
        let w = [0.5, 0.0, 0.2, 0.3];
        for _ in 0..100 {
            let picks = weighted_sample_without_replacement(&w, 3, &mut r);
            assert_eq!(picks.len(), 3);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicates in {picks:?}");
        }
        // asking for more than available clamps
        assert_eq!(weighted_sample_without_replacement(&w, 10, &mut r).len(), 4);
    }

    #[test]
    fn weighted_sampling_respects_weights_statistically() {
        let mut r = rng(9);
        let w = [0.9, 0.05, 0.05];
        let mut first_counts = [0usize; 3];
        for _ in 0..2000 {
            let picks = weighted_sample_without_replacement(&w, 1, &mut r);
            first_counts[picks[0]] += 1;
        }
        assert!(first_counts[0] > 1600, "counts={first_counts:?}");
    }

    #[test]
    fn bootstrap_indices_with_repeats_work() {
        let (x, y) = step_data();
        let indices: Vec<usize> = (0..x.rows()).map(|i| i % 50).collect(); // heavy repeats
        let cfg = TreeConfig {
            max_depth: 5,
            min_samples_leaf: 2,
            mtry: 2,
        };
        let tree = DecisionTree::fit(&x, &y, &indices, cfg, &[1.0, 1.0], &mut rng(4));
        assert!(tree.node_count() >= 1);
    }
}
