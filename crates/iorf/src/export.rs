//! Network serialization: adjacency matrices and edge lists as TSV.
//!
//! iRF-LOOP's product is "an n × n directional adjacency matrix" that
//! downstream network-analysis tools consume. This module gives it a FAIR
//! exchange form: a named-column TSV edge list (the format Cytoscape-like
//! tools ingest), with a lossless round-trip back to [`Adjacency`].

use crate::irf_loop::{Adjacency, Edge};

/// Encodes the adjacency as a TSV edge list: header
/// `from\tto\tweight`, one row per nonzero edge, feature names applied
/// when given (falls back to `f{i}`).
pub fn encode_edge_list(adj: &Adjacency, names: Option<&[String]>) -> String {
    if let Some(names) = names {
        assert_eq!(names.len(), adj.n(), "one name per feature");
    }
    let label = |i: usize| -> String {
        names
            .map(|n| n[i].clone())
            .unwrap_or_else(|| format!("f{i}"))
    };
    let mut out = String::from("from\tto\tweight\n");
    for edge in adj.top_edges(adj.n() * adj.n()) {
        out.push_str(&format!(
            "{}\t{}\t{}\n",
            label(edge.from),
            label(edge.to),
            edge.weight
        ));
    }
    out
}

/// Edge-list parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeListError {
    /// Missing or wrong header row.
    BadHeader,
    /// A row failed to parse.
    BadRow {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// An edge referenced a feature not in the name table.
    UnknownFeature {
        /// 1-based line number.
        line: usize,
        /// The unknown label.
        label: String,
    },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::BadHeader => write!(f, "edge list must start with from\\tto\\tweight"),
            EdgeListError::BadRow { line, message } => write!(f, "line {line}: {message}"),
            EdgeListError::UnknownFeature { line, label } => {
                write!(f, "line {line}: unknown feature {label:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {}

/// Parses a TSV edge list back into an adjacency over `names`.
pub fn decode_edge_list(text: &str, names: &[String]) -> Result<Adjacency, EdgeListError> {
    let mut lines = text.lines();
    if lines.next() != Some("from\tto\tweight") {
        return Err(EdgeListError::BadHeader);
    }
    let index_of = |label: &str, line: usize| -> Result<usize, EdgeListError> {
        names
            .iter()
            .position(|n| n == label)
            .ok_or(EdgeListError::UnknownFeature {
                line,
                label: label.to_string(),
            })
    };
    // collect columns, then install (set_column requires whole columns)
    let n = names.len();
    let mut columns: Vec<Vec<f64>> = vec![vec![0.0; n]; n];
    for (i, raw) in lines.enumerate() {
        let line_no = i + 2;
        if raw.is_empty() {
            continue;
        }
        let cols: Vec<&str> = raw.split('\t').collect();
        if cols.len() != 3 {
            return Err(EdgeListError::BadRow {
                line: line_no,
                message: format!("{} columns, need 3", cols.len()),
            });
        }
        let from = index_of(cols[0], line_no)?;
        let to = index_of(cols[1], line_no)?;
        let weight: f64 = cols[2].parse().map_err(|_| EdgeListError::BadRow {
            line: line_no,
            message: format!("bad weight {:?}", cols[2]),
        })?;
        if from == to {
            return Err(EdgeListError::BadRow {
                line: line_no,
                message: "self edges are not representable".into(),
            });
        }
        columns[to][from] = weight;
    }
    let mut adj = Adjacency::new(n);
    for (target, column) in columns.into_iter().enumerate() {
        adj.set_column(target, &column);
    }
    Ok(adj)
}

/// Convenience: the strongest `k` edges with labels, for reports.
pub fn labeled_top_edges(
    adj: &Adjacency,
    names: &[String],
    k: usize,
) -> Vec<(String, String, f64)> {
    adj.top_edges(k)
        .into_iter()
        .map(|Edge { from, to, weight }| (names[from].clone(), names[to].clone(), weight))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Adjacency, Vec<String>) {
        let mut adj = Adjacency::new(3);
        adj.set_column(0, &[0.0, 0.75, 0.25]);
        adj.set_column(2, &[0.6, 0.4, 0.0]);
        let names = vec!["alpha".into(), "beta".into(), "gamma".into()];
        (adj, names)
    }

    #[test]
    fn roundtrip_with_names() {
        let (adj, names) = sample();
        let text = encode_edge_list(&adj, Some(&names));
        assert!(text.starts_with("from\tto\tweight\n"));
        assert!(text.contains("beta\talpha\t0.75"));
        let back = decode_edge_list(&text, &names).unwrap();
        assert_eq!(adj, back);
    }

    #[test]
    fn roundtrip_default_names() {
        let (adj, _) = sample();
        let text = encode_edge_list(&adj, None);
        let names: Vec<String> = (0..3).map(|i| format!("f{i}")).collect();
        assert_eq!(decode_edge_list(&text, &names).unwrap(), adj);
    }

    #[test]
    fn errors_are_specific() {
        let names: Vec<String> = vec!["a".into(), "b".into()];
        assert_eq!(
            decode_edge_list("wrong\theader\n", &names),
            Err(EdgeListError::BadHeader)
        );
        assert!(matches!(
            decode_edge_list("from\tto\tweight\nx\tb\t0.5\n", &names),
            Err(EdgeListError::UnknownFeature { line: 2, .. })
        ));
        assert!(matches!(
            decode_edge_list("from\tto\tweight\na\tb\tnope\n", &names),
            Err(EdgeListError::BadRow { line: 2, .. })
        ));
        assert!(matches!(
            decode_edge_list("from\tto\tweight\na\ta\t0.5\n", &names),
            Err(EdgeListError::BadRow { .. })
        ));
    }

    #[test]
    fn labeled_edges_sorted() {
        let (adj, names) = sample();
        let top = labeled_top_edges(&adj, &names, 2);
        assert_eq!(top[0], ("beta".into(), "alpha".into(), 0.75));
        assert_eq!(top[1], ("alpha".into(), "gamma".into(), 0.6));
    }

    #[test]
    fn empty_adjacency_roundtrips() {
        let adj = Adjacency::new(2);
        let names: Vec<String> = vec!["x".into(), "y".into()];
        let text = encode_edge_list(&adj, Some(&names));
        assert_eq!(text, "from\tto\tweight\n");
        assert_eq!(decode_edge_list(&text, &names).unwrap(), adj);
    }
}
