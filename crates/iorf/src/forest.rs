//! Bagged random forests with OOB error, trained in parallel.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use exec::ThreadPool;

use crate::data::Matrix;
use crate::tree::{DecisionTree, TreeConfig};

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Master seed; tree *t* uses `seed + t`.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 100,
            tree: TreeConfig::default(),
            seed: 0,
        }
    }
}

/// A fitted forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    importance: Vec<f64>,
    oob_mse: Option<f64>,
}

impl RandomForest {
    /// Fits a forest of `config.n_trees` bootstrap trees in parallel,
    /// with feature-sampling `weights` (uniform for a plain RF).
    pub fn fit(
        x: &Matrix,
        y: &[f64],
        config: &ForestConfig,
        weights: &[f64],
        pool: &ThreadPool,
    ) -> Self {
        assert_eq!(x.rows(), y.len());
        assert_eq!(weights.len(), x.cols());
        assert!(config.n_trees > 0, "need at least one tree");
        assert!(x.rows() >= 2, "need at least two samples");
        let n = x.rows();

        // (tree, oob sample indices)
        let fitted: Vec<(DecisionTree, Vec<usize>)> = pool.map_index(config.n_trees, |t| {
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(t as u64));
            let mut in_bag = vec![false; n];
            let indices: Vec<usize> = (0..n)
                .map(|_| {
                    let i = (rng.random::<f64>() * n as f64) as usize;
                    let i = i.min(n - 1);
                    in_bag[i] = true;
                    i
                })
                .collect();
            let tree = DecisionTree::fit(x, y, &indices, config.tree, weights, &mut rng);
            let oob: Vec<usize> = (0..n).filter(|&i| !in_bag[i]).collect();
            (tree, oob)
        });

        // aggregate importance
        let mut importance = vec![0.0; x.cols()];
        for (tree, _) in &fitted {
            for (j, v) in tree.importance().iter().enumerate() {
                importance[j] += v;
            }
        }
        let total: f64 = importance.iter().sum();
        if total > 0.0 {
            for v in &mut importance {
                *v /= total;
            }
        }

        // OOB error: mean over samples of (mean OOB prediction − y)²
        let mut oob_sum = vec![0.0; n];
        let mut oob_count = vec![0usize; n];
        for (tree, oob) in &fitted {
            for &i in oob {
                oob_sum[i] += tree.predict(x.row(i));
                oob_count[i] += 1;
            }
        }
        let mut se = 0.0;
        let mut covered = 0usize;
        for i in 0..n {
            if oob_count[i] > 0 {
                let pred = oob_sum[i] / oob_count[i] as f64;
                se += (pred - y[i]).powi(2);
                covered += 1;
            }
        }
        let oob_mse = (covered > 0).then(|| se / covered as f64);

        RandomForest {
            trees: fitted.into_iter().map(|(t, _)| t).collect(),
            importance,
            oob_mse,
        }
    }

    /// Mean prediction over trees.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Normalized per-feature importance (sums to 1 when any split
    /// happened, all-zero otherwise).
    pub fn importance(&self) -> &[f64] {
        &self.importance
    }

    /// Out-of-bag mean squared error (`None` when no sample was ever OOB).
    pub fn oob_mse(&self) -> Option<f64> {
        self.oob_mse
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Permutation importance: for each feature, how much does the mean
    /// squared error degrade when that feature's column is shuffled?
    /// An independent check on the impurity-based [`RandomForest::importance`]
    /// (they should agree on which features carry signal). Returns raw
    /// MSE increases (may be slightly negative for pure-noise features).
    pub fn permutation_importance(
        &self,
        x: &Matrix,
        y: &[f64],
        seed: u64,
        pool: &ThreadPool,
    ) -> Vec<f64> {
        assert_eq!(x.rows(), y.len());
        let n = x.rows();
        let base_mse: f64 = (0..n)
            .map(|i| (self.predict(x.row(i)) - y[i]).powi(2))
            .sum::<f64>()
            / n as f64;
        pool.map_index(x.cols(), |j| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(j as u64));
            // Fisher–Yates permutation of row indices for column j
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let k = (rng.random::<f64>() * (i + 1) as f64) as usize;
                perm.swap(i, k.min(i));
            }
            let mut row_buf = vec![0.0; x.cols()];
            let mse: f64 = (0..n)
                .map(|i| {
                    row_buf.copy_from_slice(x.row(i));
                    row_buf[j] = x.get(perm[i], j);
                    (self.predict(&row_buf) - y[i]).powi(2)
                })
                .sum::<f64>()
                / n as f64;
            mse - base_mse
        })
    }

    /// R² of predictions against `y` on `x` (in-sample unless you pass
    /// held-out data).
    pub fn r2(&self, x: &Matrix, y: &[f64]) -> f64 {
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let ss_tot: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
        if ss_tot == 0.0 {
            return 0.0;
        }
        let ss_res: f64 = (0..x.rows())
            .map(|i| (y[i] - self.predict(x.row(i))).powi(2))
            .sum();
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 3·x₀ − 2·x₂ + small noise; x₁ is pure noise.
    fn linear_data(n: usize) -> (Matrix, Vec<f64>) {
        let mut data = Vec::with_capacity(n * 3);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let x0 = ((i * 7) % 23) as f64 / 23.0;
            let x1 = ((i * 13) % 31) as f64 / 31.0;
            let x2 = ((i * 5) % 19) as f64 / 19.0;
            data.extend_from_slice(&[x0, x1, x2]);
            y.push(3.0 * x0 - 2.0 * x2 + 0.01 * ((i % 7) as f64 - 3.0));
        }
        (Matrix::new(n, 3, data), y)
    }

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn learns_linear_signal() {
        let (x, y) = linear_data(300);
        let config = ForestConfig {
            n_trees: 60,
            seed: 1,
            ..Default::default()
        };
        let forest = RandomForest::fit(&x, &y, &config, &[1.0; 3], &pool());
        let r2 = forest.r2(&x, &y);
        assert!(r2 > 0.9, "r2={r2}");
        let imp = forest.importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[1] && imp[2] > imp[1], "imp={imp:?}");
    }

    #[test]
    fn oob_error_reasonable() {
        let (x, y) = linear_data(300);
        let config = ForestConfig {
            n_trees: 60,
            seed: 2,
            ..Default::default()
        };
        let forest = RandomForest::fit(&x, &y, &config, &[1.0; 3], &pool());
        let oob = forest.oob_mse().expect("60 trees cover everything OOB");
        let var = {
            let m = y.iter().sum::<f64>() / y.len() as f64;
            y.iter().map(|v| (v - m).powi(2)).sum::<f64>() / y.len() as f64
        };
        assert!(oob < var, "oob {oob} should beat predicting the mean {var}");
    }

    #[test]
    fn deterministic_given_seed_and_threads() {
        let (x, y) = linear_data(120);
        let config = ForestConfig {
            n_trees: 20,
            seed: 3,
            ..Default::default()
        };
        let a = RandomForest::fit(&x, &y, &config, &[1.0; 3], &pool());
        let b = RandomForest::fit(&x, &y, &config, &[1.0; 3], &ThreadPool::new(1));
        // per-tree seeds are independent of thread scheduling
        assert_eq!(a.importance(), b.importance());
        assert_eq!(a.predict(x.row(0)), b.predict(x.row(0)));
    }

    #[test]
    fn importance_all_zero_when_unlearnable() {
        let x = Matrix::new(20, 2, vec![1.0; 40]); // constant features
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let config = ForestConfig {
            n_trees: 10,
            seed: 4,
            ..Default::default()
        };
        let forest = RandomForest::fit(&x, &y, &config, &[1.0; 2], &pool());
        assert!(forest.importance().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn permutation_importance_agrees_with_impurity() {
        let (x, y) = linear_data(300);
        let config = ForestConfig {
            n_trees: 40,
            seed: 8,
            ..Default::default()
        };
        let forest = RandomForest::fit(&x, &y, &config, &[1.0; 3], &pool());
        let perm = forest.permutation_importance(&x, &y, 5, &pool());
        // signal features (0 and 2) degrade prediction when shuffled far
        // more than the noise feature (1)
        assert!(perm[0] > perm[1] * 5.0, "perm={perm:?}");
        assert!(perm[2] > perm[1] * 5.0, "perm={perm:?}");
        // and the two estimators rank identically
        let imp = forest.importance();
        let rank = |v: &[f64]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap());
            idx
        };
        assert_eq!(rank(imp), rank(&perm));
    }

    #[test]
    fn permutation_importance_deterministic() {
        let (x, y) = linear_data(120);
        let config = ForestConfig {
            n_trees: 15,
            seed: 2,
            ..Default::default()
        };
        let forest = RandomForest::fit(&x, &y, &config, &[1.0; 3], &pool());
        let a = forest.permutation_importance(&x, &y, 3, &pool());
        let b = forest.permutation_importance(&x, &y, 3, &ThreadPool::new(1));
        assert_eq!(a, b);
    }

    #[test]
    fn single_tree_forest_works() {
        let (x, y) = linear_data(80);
        let config = ForestConfig {
            n_trees: 1,
            seed: 5,
            ..Default::default()
        };
        let forest = RandomForest::fit(&x, &y, &config, &[1.0; 3], &pool());
        assert_eq!(forest.n_trees(), 1);
    }
}
