//! Iterative random forests (iRF).
//!
//! Basu et al.'s iterative scheme, as used by the paper's iRF-LOOP: fit a
//! forest with uniform feature weights, then refit with feature-sampling
//! weights proportional to the previous iteration's importances. Signal
//! features accumulate weight across iterations; noise features fade —
//! which both sharpens the importance vector and (empirically) stabilizes
//! high-order interactions.

use exec::ThreadPool;

use crate::data::Matrix;
use crate::forest::{ForestConfig, RandomForest};

/// iRF hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrfConfig {
    /// Forest settings used at every iteration.
    pub forest: ForestConfig,
    /// Number of weighted iterations (1 = plain random forest).
    pub iterations: usize,
}

impl Default for IrfConfig {
    fn default() -> Self {
        Self {
            forest: ForestConfig::default(),
            iterations: 3,
        }
    }
}

/// A fitted iRF model.
#[derive(Debug, Clone)]
pub struct IrfModel {
    /// The final-iteration forest.
    pub forest: RandomForest,
    /// Importance vector per iteration (each normalized; last one is the
    /// model's importance).
    pub importance_history: Vec<Vec<f64>>,
}

impl IrfModel {
    /// Fits an iRF model.
    pub fn fit(x: &Matrix, y: &[f64], config: &IrfConfig, pool: &ThreadPool) -> Self {
        assert!(config.iterations >= 1, "need at least one iteration");
        let p = x.cols();
        let mut weights = vec![1.0; p];
        let mut history = Vec::with_capacity(config.iterations);
        let mut forest = None;
        for iter in 0..config.iterations {
            let mut cfg = config.forest;
            // decorrelate iterations without losing determinism
            cfg.seed = config.forest.seed.wrapping_add((iter as u64) << 32);
            let fitted = RandomForest::fit(x, y, &cfg, &weights, pool);
            let imp = fitted.importance().to_vec();
            // next iteration samples features by importance; if the model
            // learned nothing, keep uniform weights rather than zeroing out
            if imp.iter().sum::<f64>() > 0.0 {
                weights = imp.clone();
            }
            history.push(imp);
            forest = Some(fitted);
        }
        IrfModel {
            forest: forest.expect("iterations >= 1"),
            importance_history: history,
        }
    }

    /// Final normalized importance vector.
    pub fn importance(&self) -> &[f64] {
        self.importance_history
            .last()
            .expect("at least one iteration")
    }

    /// How concentrated the importance became: the Gini-style sum of
    /// squared shares (1/p = perfectly diffuse, 1.0 = single feature).
    pub fn importance_concentration(&self) -> f64 {
        self.importance().iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use crate::tree::TreeConfig;

    /// y depends on x0 only; x1..x7 are structured noise.
    fn needle_data(n: usize) -> (Matrix, Vec<f64>) {
        let p = 8;
        let mut data = Vec::with_capacity(n * p);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            for j in 0..p {
                data.push((((i + 1) * (j + 3) * 2654435761) % 1000) as f64 / 1000.0);
            }
            let x0 = data[i * p];
            y.push(if x0 > 0.5 { 5.0 } else { -5.0 });
        }
        (Matrix::new(n, p, data), y)
    }

    fn config(iterations: usize) -> IrfConfig {
        IrfConfig {
            forest: ForestConfig {
                n_trees: 30,
                tree: TreeConfig {
                    max_depth: 8,
                    min_samples_leaf: 3,
                    mtry: 3,
                },
                seed: 11,
            },
            iterations,
        }
    }

    #[test]
    fn identifies_the_needle_feature() {
        let (x, y) = needle_data(250);
        let pool = ThreadPool::new(4);
        let model = IrfModel::fit(&x, &y, &config(3), &pool);
        let imp = model.importance();
        let best = imp
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 0, "imp={imp:?}");
        assert_eq!(model.importance_history.len(), 3);
    }

    #[test]
    fn iteration_concentrates_importance() {
        let (x, y) = needle_data(250);
        let pool = ThreadPool::new(4);
        let rf = IrfModel::fit(&x, &y, &config(1), &pool);
        let irf = IrfModel::fit(&x, &y, &config(4), &pool);
        assert!(
            irf.importance_concentration() >= rf.importance_concentration(),
            "iterated {} vs plain {}",
            irf.importance_concentration(),
            rf.importance_concentration()
        );
        // and the needle's share strictly grows
        assert!(irf.importance()[0] >= rf.importance()[0]);
    }

    #[test]
    fn unlearnable_data_keeps_uniform_weights() {
        let x = Matrix::new(30, 3, vec![1.0; 90]);
        let y: Vec<f64> = (0..30).map(|i| (i % 5) as f64).collect();
        let pool = ThreadPool::new(2);
        let model = IrfModel::fit(&x, &y, &config(3), &pool);
        assert!(model.importance().iter().all(|&v| v == 0.0));
        assert_eq!(model.importance_history.len(), 3);
    }

    #[test]
    fn deterministic() {
        let (x, y) = needle_data(100);
        let pool = ThreadPool::new(3);
        let a = IrfModel::fit(&x, &y, &config(2), &pool);
        let b = IrfModel::fit(&x, &y, &config(2), &pool);
        assert_eq!(a.importance(), b.importance());
    }
}
