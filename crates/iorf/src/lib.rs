//! Iterative random forests and **iRF-LOOP** (§II-B, §V-D).
//!
//! "Using a matrix with *n* features and *m* samples, iRF-LOOP will treat
//! each individual feature as the dependent variable, or Y vector, and
//! create an iRF model with the remaining *n−1* features as the
//! independent variables … the *n* importance vectors are normalized and
//! concatenated into an *n × n* directional adjacency matrix, with values
//! that can be viewed as edge weights between the features."
//!
//! Everything is implemented from scratch:
//!
//! * [`data`] — the samples × features matrix;
//! * [`tree`] — CART regression trees with weighted feature sampling
//!   (the hook iterative reweighting uses);
//! * [`forest`] — bagged forests with OOB error and impurity importance,
//!   trained in parallel on the [`exec`] pool;
//! * [`irf`] — the iterative reweighting loop (plain RF is `iterations = 1`);
//! * [`irf_loop`] — the all-to-all driver producing the adjacency matrix;
//! * [`synth`] — census-like synthetic data with a *planted* dependency
//!   network plus precision/recall scoring of recovered edges — letting
//!   us validate what the paper could only run.

#![deny(missing_docs)]

pub mod data;
pub mod export;
pub mod forest;
pub mod irf;
pub mod irf_loop;
pub mod synth;
pub mod tree;

pub use data::Matrix;
pub use export::{decode_edge_list, encode_edge_list};
pub use forest::{ForestConfig, RandomForest};
pub use irf::{IrfConfig, IrfModel};
pub use irf_loop::{Adjacency, Edge, LoopConfig};
pub use synth::{PlantedNetwork, SynthConfig};
