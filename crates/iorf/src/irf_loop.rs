//! iRF-LOOP: the all-to-all network driver.
//!
//! One iRF model per feature: feature *j* becomes the Y vector, the other
//! *n−1* features the X matrix; the resulting importance vector becomes
//! column *j* of a directional adjacency matrix ("values that can be
//! viewed as edge weights between the features", §II-B). Per-feature runs
//! are independent — exactly the heterogeneous bag-of-tasks the Cheetah/
//! Savanna campaign of §V-D schedules.

use std::time::Instant;

use exec::ThreadPool;

use crate::data::Matrix;
use crate::irf::{IrfConfig, IrfModel};

/// iRF-LOOP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopConfig {
    /// The per-feature iRF settings.
    pub irf: IrfConfig,
}

/// A directed, weighted edge `from → to` ("`from` predicts `to`").
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Predictor feature index.
    pub from: usize,
    /// Target feature index.
    pub to: usize,
    /// Normalized importance weight.
    pub weight: f64,
}

/// The n×n directional adjacency matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Adjacency {
    n: usize,
    /// Row-major weights; `w[from * n + to]`.
    weights: Vec<f64>,
}

impl Adjacency {
    /// Creates an empty adjacency for `n` features.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            weights: vec![0.0; n * n],
        }
    }

    /// Feature count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Weight of `from → to`.
    pub fn weight(&self, from: usize, to: usize) -> f64 {
        self.weights[from * self.n + to]
    }

    /// Installs one target's importance column. `importance` is indexed
    /// by *original* feature index (the target's own slot must be 0).
    pub fn set_column(&mut self, target: usize, importance: &[f64]) {
        assert_eq!(importance.len(), self.n);
        assert_eq!(importance[target], 0.0, "self-edge must be zero");
        for (from, &w) in importance.iter().enumerate() {
            self.weights[from * self.n + target] = w;
        }
    }

    /// All nonzero edges, strongest first.
    pub fn top_edges(&self, k: usize) -> Vec<Edge> {
        let mut edges: Vec<Edge> = (0..self.n)
            .flat_map(|from| {
                (0..self.n).filter_map(move |to| {
                    let weight = self.weight(from, to);
                    (weight > 0.0).then_some(Edge { from, to, weight })
                })
            })
            .collect();
        edges.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        edges.truncate(k);
        edges
    }

    /// Every column (target) sums to 1 or 0 — the "normalized" part of
    /// the iRF-LOOP definition. Exposed for tests/validation.
    pub fn column_sums(&self) -> Vec<f64> {
        (0..self.n)
            .map(|to| (0..self.n).map(|from| self.weight(from, to)).sum())
            .collect()
    }
}

/// Runs one iRF-LOOP task: target feature `target`, returning the
/// importance vector mapped back to full feature indexing (target slot
/// zero, vector normalized to sum 1 unless the model learned nothing).
pub fn run_feature(
    data: &Matrix,
    target: usize,
    config: &LoopConfig,
    pool: &ThreadPool,
) -> Vec<f64> {
    let (x, mapping) = data.without_column(target);
    let y = data.column(target);
    let mut cfg = config.irf;
    // decorrelate per-target runs deterministically
    cfg.forest.seed = cfg
        .forest
        .seed
        .wrapping_add((target as u64).wrapping_mul(0x9E37_79B9));
    let model = IrfModel::fit(&x, &y, &cfg, pool);
    let mut full = vec![0.0; data.cols()];
    for (compact_idx, &orig_idx) in mapping.iter().enumerate() {
        full[orig_idx] = model.importance()[compact_idx];
    }
    full
}

/// Runs the full loop over every feature (parallelism inside each iRF via
/// `pool`; features sequential — the campaign executors own cross-feature
/// parallelism in the §V-D reproduction).
pub fn run_loop(data: &Matrix, config: &LoopConfig, pool: &ThreadPool) -> Adjacency {
    let mut adj = Adjacency::new(data.cols());
    for target in 0..data.cols() {
        let importance = run_feature(data, target, config, pool);
        adj.set_column(target, &importance);
    }
    adj
}

/// Runs the full loop with **cross-feature** parallelism: every target's
/// iRF trains concurrently on the pool (tree-level parallelism nests
/// inside — the pool's helping waiters make that safe). Produces exactly
/// the same adjacency as [`run_loop`].
pub fn run_loop_parallel(data: &Matrix, config: &LoopConfig, pool: &ThreadPool) -> Adjacency {
    let columns = pool.map_index(data.cols(), |target| {
        run_feature(data, target, config, pool)
    });
    let mut adj = Adjacency::new(data.cols());
    for (target, importance) in columns.iter().enumerate() {
        adj.set_column(target, importance);
    }
    adj
}

/// Measures wall-clock training time per feature — the empirical runtime
/// distribution that calibrates the Fig. 6/7 campaign simulations.
pub fn measure_feature_runtimes(
    data: &Matrix,
    config: &LoopConfig,
    pool: &ThreadPool,
) -> Vec<std::time::Duration> {
    (0..data.cols())
        .map(|target| {
            let start = Instant::now();
            let _ = run_feature(data, target, config, pool);
            start.elapsed()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use crate::synth::{PlantedNetwork, SynthConfig};
    use crate::tree::TreeConfig;

    fn fast_config() -> LoopConfig {
        LoopConfig {
            irf: IrfConfig {
                forest: ForestConfig {
                    n_trees: 25,
                    tree: TreeConfig {
                        max_depth: 6,
                        min_samples_leaf: 3,
                        mtry: 4,
                    },
                    seed: 42,
                },
                iterations: 2,
            },
        }
    }

    fn synth() -> (Matrix, PlantedNetwork) {
        SynthConfig {
            samples: 220,
            features: 12,
            roots: 4,
            edge_weight: 1.0,
            noise_sd: 0.25,
            seed: 5,
        }
        .generate()
    }

    #[test]
    fn adjacency_columns_normalized_no_self_edges() {
        let (data, _net) = synth();
        let pool = ThreadPool::new(4);
        let adj = run_loop(&data, &fast_config(), &pool);
        assert_eq!(adj.n(), 12);
        for j in 0..adj.n() {
            assert_eq!(adj.weight(j, j), 0.0, "self edge at {j}");
        }
        for (j, s) in adj.column_sums().iter().enumerate() {
            assert!(
                (*s - 1.0).abs() < 1e-9 || *s == 0.0,
                "column {j} sums to {s}"
            );
        }
    }

    #[test]
    fn recovers_planted_edges() {
        let (data, net) = synth();
        let pool = ThreadPool::new(4);
        let adj = run_loop(&data, &fast_config(), &pool);
        let k = net.edges.len();
        let recovered = adj.top_edges(k);
        let precision = net.precision(&recovered);
        assert!(
            precision >= 0.5,
            "precision@{k} = {precision}; edges={recovered:?}"
        );
    }

    #[test]
    fn parallel_loop_matches_sequential() {
        let (data, _) = synth();
        let pool = ThreadPool::new(4);
        let sequential = run_loop(&data, &fast_config(), &pool);
        let parallel = run_loop_parallel(&data, &fast_config(), &pool);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn run_feature_maps_indices_back() {
        let (data, _) = synth();
        let pool = ThreadPool::new(2);
        let imp = run_feature(&data, 3, &fast_config(), &pool);
        assert_eq!(imp.len(), data.cols());
        assert_eq!(imp[3], 0.0);
    }

    #[test]
    fn top_edges_sorted_and_truncated() {
        let mut adj = Adjacency::new(3);
        adj.set_column(0, &[0.0, 0.7, 0.3]);
        adj.set_column(2, &[0.9, 0.1, 0.0]);
        let top = adj.top_edges(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].weight >= top[1].weight);
        assert_eq!((top[0].from, top[0].to), (0, 2));
    }

    #[test]
    #[should_panic(expected = "self-edge")]
    fn nonzero_self_edge_rejected() {
        let mut adj = Adjacency::new(2);
        adj.set_column(0, &[0.5, 0.5]);
    }

    #[test]
    fn measured_runtimes_have_one_entry_per_feature() {
        let (data, _) = synth();
        let pool = ThreadPool::new(4);
        let times = measure_feature_runtimes(&data, &fast_config(), &pool);
        assert_eq!(times.len(), data.cols());
        assert!(times.iter().all(|t| t.as_nanos() > 0));
    }
}
