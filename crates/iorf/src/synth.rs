//! Census-like synthetic data with a planted dependency network.
//!
//! The paper ran iRF-LOOP on the 2019 American Community Survey (1606
//! features × 3220 counties) to build an all-to-all network of
//! demographic/socioeconomic relationships. ACS data is external; what
//! the experiment *needs* is a feature matrix with (a) genuinely
//! inter-dependent features and (b) per-feature model runtimes with a
//! spread. We generate a layered dependency network: root features are
//! independent noise, each derived feature is a weighted sum of planted
//! parent features plus noise. The planted edge set lets us score
//! recovery — a validation the original data cannot offer.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::data::Matrix;
use crate::irf_loop::Edge;

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Samples (the paper's counties: 3220).
    pub samples: usize,
    /// Features (the paper's ACS columns: 1606 — keep small for tests).
    pub features: usize,
    /// Number of independent root features (must be ≥ 1, < features).
    pub roots: usize,
    /// Weight of each parent in a derived feature.
    pub edge_weight: f64,
    /// Additive noise standard deviation for derived features.
    pub noise_sd: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            samples: 400,
            features: 24,
            roots: 6,
            edge_weight: 1.0,
            noise_sd: 0.3,
            seed: 0,
        }
    }
}

/// The ground-truth network planted by the generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedNetwork {
    /// Planted directed edges `(parent, child)`.
    pub edges: Vec<(usize, usize)>,
}

impl PlantedNetwork {
    /// True when `(from, to)` or `(to, from)` is planted — iRF-LOOP finds
    /// association direction only as far as the data allows, so scoring
    /// accepts either orientation.
    pub fn contains_undirected(&self, from: usize, to: usize) -> bool {
        self.edges.contains(&(from, to)) || self.edges.contains(&(to, from))
    }

    /// Fraction of `recovered` edges that are planted (either direction).
    pub fn precision(&self, recovered: &[Edge]) -> f64 {
        if recovered.is_empty() {
            return 0.0;
        }
        let hits = recovered
            .iter()
            .filter(|e| self.contains_undirected(e.from, e.to))
            .count();
        hits as f64 / recovered.len() as f64
    }

    /// Fraction of planted edges present in `recovered` (either
    /// direction).
    pub fn recall(&self, recovered: &[Edge]) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        let hits = self
            .edges
            .iter()
            .filter(|&&(a, b)| {
                recovered
                    .iter()
                    .any(|e| (e.from == a && e.to == b) || (e.from == b && e.to == a))
            })
            .count();
        hits as f64 / self.edges.len() as f64
    }
}

fn box_muller(rng: &mut StdRng) -> f64 {
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::EPSILON {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl SynthConfig {
    /// Generates the matrix and its planted network.
    pub fn generate(&self) -> (Matrix, PlantedNetwork) {
        assert!(self.samples > 1 && self.features > 1);
        assert!(
            self.roots >= 1 && self.roots < self.features,
            "roots must be in [1, features)"
        );
        assert!(self.noise_sd >= 0.0);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.samples;
        let p = self.features;
        let mut columns: Vec<Vec<f64>> = Vec::with_capacity(p);
        let mut edges = Vec::new();

        for _ in 0..self.roots {
            columns.push((0..n).map(|_| box_muller(&mut rng)).collect());
        }
        for j in self.roots..p {
            // 1–2 parents chosen among existing features
            let n_parents = 1 + (rng.random::<f64>() < 0.5) as usize;
            let mut parents = Vec::with_capacity(n_parents);
            while parents.len() < n_parents {
                let cand = ((rng.random::<f64>() * j as f64) as usize).min(j - 1);
                if !parents.contains(&cand) {
                    parents.push(cand);
                }
            }
            let col: Vec<f64> = (0..n)
                .map(|s| {
                    let signal: f64 = parents
                        .iter()
                        .map(|&pi| self.edge_weight * columns[pi][s])
                        .sum();
                    signal + self.noise_sd * box_muller(&mut rng)
                })
                .collect();
            for &parent in &parents {
                edges.push((parent, j));
            }
            columns.push(col);
        }

        let mut data = Vec::with_capacity(n * p);
        for s in 0..n {
            for col in &columns {
                data.push(col[s]);
            }
        }
        let names = (0..p)
            .map(|j| {
                if j < self.roots {
                    format!("root{j}")
                } else {
                    format!("derived{j}")
                }
            })
            .collect();
        (
            Matrix::new(n, p, data).with_names(names),
            PlantedNetwork { edges },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let cfg = SynthConfig::default();
        let (a, net_a) = cfg.generate();
        let (b, net_b) = cfg.generate();
        assert_eq!(a, b);
        assert_eq!(net_a, net_b);
        assert_eq!(a.rows(), 400);
        assert_eq!(a.cols(), 24);
        assert!(!net_a.edges.is_empty());
        // every derived feature has at least one parent
        let children: std::collections::BTreeSet<usize> =
            net_a.edges.iter().map(|&(_, c)| c).collect();
        assert_eq!(children.len(), 24 - 6);
    }

    #[test]
    fn edges_point_forward() {
        let (_, net) = SynthConfig::default().generate();
        assert!(net.edges.iter().all(|&(p, c)| p < c));
    }

    #[test]
    fn derived_features_correlate_with_parents() {
        let cfg = SynthConfig {
            noise_sd: 0.1,
            ..Default::default()
        };
        let (m, net) = cfg.generate();
        let (parent, child) = net.edges[0];
        let a = m.column(parent);
        let b = m.column(child);
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(&b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
        let corr = cov / (va.sqrt() * vb.sqrt());
        assert!(corr.abs() > 0.4, "corr={corr}");
    }

    #[test]
    fn precision_recall_scoring() {
        let net = PlantedNetwork {
            edges: vec![(0, 1), (1, 2)],
        };
        let recovered = vec![
            Edge {
                from: 1,
                to: 0,
                weight: 0.9,
            }, // reversed planted edge: counts
            Edge {
                from: 0,
                to: 2,
                weight: 0.5,
            }, // not planted
        ];
        assert!((net.precision(&recovered) - 0.5).abs() < 1e-12);
        assert!((net.recall(&recovered) - 0.5).abs() < 1e-12);
        assert_eq!(net.precision(&[]), 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthConfig {
            seed: 1,
            ..Default::default()
        }
        .generate()
        .0;
        let b = SynthConfig {
            seed: 2,
            ..Default::default()
        }
        .generate()
        .0;
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "roots must be")]
    fn degenerate_roots_rejected() {
        SynthConfig {
            roots: 0,
            ..Default::default()
        }
        .generate();
    }
}
