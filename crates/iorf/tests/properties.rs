//! Property tests: tree/forest prediction bounds, importance invariants,
//! adjacency normalization.

use exec::ThreadPool;
use iorf::data::Matrix;
use iorf::forest::{ForestConfig, RandomForest};
use iorf::irf_loop::Adjacency;
use iorf::tree::{DecisionTree, TreeConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_dataset() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (2usize..5, 10usize..60).prop_flat_map(|(cols, rows)| {
        (
            proptest::collection::vec(-100.0f64..100.0, rows * cols),
            proptest::collection::vec(-100.0f64..100.0, rows),
        )
            .prop_map(move |(data, y)| (Matrix::new(rows, cols, data), y))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_predictions_within_target_range((x, y) in arb_dataset(), seed in 0u64..100) {
        let indices: Vec<usize> = (0..x.rows()).collect();
        let weights = vec![1.0; x.cols()];
        let config = TreeConfig { max_depth: 6, min_samples_leaf: 2, mtry: x.cols() };
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = DecisionTree::fit(&x, &y, &indices, config, &weights, &mut rng);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for i in 0..x.rows() {
            let p = tree.predict(x.row(i));
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "prediction {p} outside [{lo}, {hi}]");
        }
        // importance is non-negative
        prop_assert!(tree.importance().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn forest_importance_normalized((x, y) in arb_dataset(), seed in 0u64..100) {
        let pool = ThreadPool::new(2);
        let config = ForestConfig {
            n_trees: 8,
            tree: TreeConfig { max_depth: 5, min_samples_leaf: 2, mtry: 0 },
            seed,
        };
        let forest = RandomForest::fit(&x, &y, &config, &vec![1.0; x.cols()], &pool);
        let total: f64 = forest.importance().sum_check();
        prop_assert!(
            (total - 1.0).abs() < 1e-9 || total == 0.0,
            "importance sums to {total}"
        );
        // predictions bounded by target range (forest = mean of trees)
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = forest.predict(x.row(0));
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn adjacency_column_install_preserves_normalization(
        n in 2usize..10,
        target in 0usize..10,
        raw in proptest::collection::vec(0.0f64..1.0, 10),
    ) {
        let target = target % n;
        // build a normalized importance vector with zero at the target
        let mut imp: Vec<f64> = raw[..n].to_vec();
        imp[target] = 0.0;
        let sum: f64 = imp.iter().sum();
        if sum > 0.0 {
            for v in &mut imp {
                *v /= sum;
            }
        }
        let mut adj = Adjacency::new(n);
        adj.set_column(target, &imp);
        let sums = adj.column_sums();
        let expected = if sum > 0.0 { 1.0 } else { 0.0 };
        prop_assert!((sums[target] - expected).abs() < 1e-9);
        prop_assert_eq!(adj.weight(target, target), 0.0);
        // top_edges never returns self-edges or zero weights
        for e in adj.top_edges(n * n) {
            prop_assert!(e.from != e.to);
            prop_assert!(e.weight > 0.0);
        }
    }

    #[test]
    fn without_column_preserves_all_other_data(
        rows in 2usize..15,
        cols in 2usize..6,
        drop in 0usize..6,
        seed_vals in proptest::collection::vec(-50.0f64..50.0, 2 * 15 * 6),
    ) {
        let drop = drop % cols;
        let data: Vec<f64> = seed_vals[..rows * cols].to_vec();
        let m = Matrix::new(rows, cols, data);
        let (x, mapping) = m.without_column(drop);
        prop_assert_eq!(x.cols(), cols - 1);
        prop_assert_eq!(x.rows(), rows);
        for (newj, &origj) in mapping.iter().enumerate() {
            for r in 0..rows {
                prop_assert_eq!(x.get(r, newj), m.get(r, origj));
            }
        }
        prop_assert!(!mapping.contains(&drop));
    }
}

/// Small helper so the intent reads clearly above.
trait SumCheck {
    fn sum_check(&self) -> f64;
}
impl SumCheck for [f64] {
    fn sum_check(&self) -> f64 {
        self.iter().sum()
    }
}
