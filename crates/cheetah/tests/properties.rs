//! Property tests: sweep expansion, manifests, status, objectives.

use cheetah::campaign::{AppDef, Campaign, SweepGroup};
use cheetah::objective::{Objective, ResultCatalog};
use cheetah::param::{ParamValue, SweepSpec};
use cheetah::status::{RunStatus, StatusBoard};
use cheetah::sweep::Sweep;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = SweepSpec> {
    prop_oneof![
        proptest::collection::btree_set(-100i64..100, 1..6)
            .prop_map(|v| SweepSpec::List(v.into_iter().map(ParamValue::Int).collect())),
        (0i64..50, 1i64..10).prop_map(|(start, step)| SweepSpec::IntRange {
            start,
            end: start + step * 4,
            step,
        }),
    ]
}

fn arb_sweep() -> impl Strategy<Value = Sweep> {
    proptest::collection::btree_map("[a-z]{1,6}", arb_spec(), 1..4).prop_map(|params| {
        let mut sweep = Sweep::new();
        for (k, v) in params {
            sweep = sweep.with(k, v);
        }
        sweep
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cardinality_equals_expansion_length(sweep in arb_sweep()) {
        prop_assert_eq!(sweep.cardinality(), sweep.expand().len());
    }

    #[test]
    fn expansion_covers_the_full_cross_product(sweep in arb_sweep()) {
        let runs = sweep.expand();
        // every run assigns every parameter
        for run in &runs {
            prop_assert_eq!(run.params.len(), sweep.params.len());
        }
        // all configurations distinct (specs are duplicate-free by
        // construction here; duplicate *values* in user lists are legal
        // and handled by the manifest's #k suffixing)
        let mut ids: Vec<String> = runs.iter().map(|r| format!("{:?}", r.params)).collect();
        ids.sort();
        let n = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "duplicate configurations in expansion");
    }

    #[test]
    fn manifest_roundtrips_and_ids_unique(sweep in arb_sweep(), nodes in 1u32..50) {
        let campaign = Campaign::new("prop", "m", AppDef::new("a", "a.exe"))
            .with_group(SweepGroup::new("g", sweep, nodes, 1, 600));
        let manifest = campaign.manifest().unwrap();
        let back = cheetah::manifest::CampaignManifest::from_json(&manifest.to_json()).unwrap();
        prop_assert_eq!(&manifest, &back);
        let mut ids: Vec<&String> = manifest.groups[0].runs.iter().map(|r| &r.id).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
    }

    #[test]
    fn status_board_conserves_runs(
        sweep in arb_sweep(),
        marks in proptest::collection::vec(0u8..5, 0..40),
    ) {
        let campaign = Campaign::new("prop", "m", AppDef::new("a", "a.exe"))
            .with_group(SweepGroup::new("g", sweep, 4, 1, 600));
        let manifest = campaign.manifest().unwrap();
        let mut board = StatusBoard::for_manifest(&manifest);
        let ids: Vec<String> = manifest.groups[0].runs.iter().map(|r| r.id.clone()).collect();
        for (i, &m) in marks.iter().enumerate() {
            let id = &ids[i % ids.len()];
            let status = match m {
                0 => RunStatus::Pending,
                1 => RunStatus::Running,
                2 => RunStatus::Done,
                3 => RunStatus::Failed,
                _ => RunStatus::TimedOut,
            };
            board.set(id, status);
        }
        let summary = board.summary();
        prop_assert_eq!(summary.total(), ids.len());
        // incomplete = pending + running + timed_out
        prop_assert_eq!(
            board.incomplete_runs(&manifest).len(),
            summary.pending + summary.running + summary.timed_out
        );
    }

    #[test]
    fn canonical_json_parses_back_to_the_same_board(
        sweep in arb_sweep(),
        marks in proptest::collection::vec((0u8..5, 0u8..3, 0u8..3), 0..40),
        cause in "[ -~]{0,12}",
    ) {
        let campaign = Campaign::new("prop", "m", AppDef::new("a", "a.exe"))
            .with_group(SweepGroup::new("g", sweep, 4, 1, 600));
        let manifest = campaign.manifest().unwrap();
        let mut board = StatusBoard::for_manifest(&manifest);
        let ids: Vec<String> = manifest.groups[0].runs.iter().map(|r| r.id.clone()).collect();
        for (i, &(m, attempts, fails)) in marks.iter().enumerate() {
            let id = &ids[i % ids.len()];
            for _ in 0..attempts {
                board.record_attempt(id);
            }
            for _ in 0..fails {
                board.record_failure(id, cause.clone());
            }
            let status = match m {
                0 => RunStatus::Pending,
                1 => RunStatus::Running,
                2 => RunStatus::Done,
                3 => RunStatus::Failed,
                _ => RunStatus::TimedOut,
            };
            board.set(id, status);
            if m == 2 {
                board.record_telemetry_ref(id, format!("trace#{i}"));
                board.record_digest_ref(id, "digest#span_us.attempt");
            }
        }
        let parsed = StatusBoard::from_canonical_json(&board.canonical_json()).unwrap();
        prop_assert_eq!(&parsed, &board);
        // and the parse is exact: re-serializing gives the same bytes
        prop_assert_eq!(parsed.canonical_json(), board.canonical_json());
    }

    #[test]
    fn catalog_best_is_extreme_of_ranked(values in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let mut cat = ResultCatalog::new();
        for (i, &v) in values.iter().enumerate() {
            cat.record(&format!("run-{i}"), "metric", v);
        }
        for obj in [Objective::minimize("metric"), Objective::maximize("metric")] {
            let ranked = cat.ranked(&obj);
            let (best_id, best_v) = cat.best(&obj).unwrap();
            prop_assert_eq!(ranked[0].1, best_v);
            prop_assert_eq!(ranked[0].0, best_id);
            for w in ranked.windows(2) {
                prop_assert!(!obj.better(w[1].1, w[0].1), "ranked out of order");
            }
        }
    }
}
