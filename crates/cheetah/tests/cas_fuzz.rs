//! Corruption fuzz for the content-addressed store: `open` must be total.
//!
//! A memoization cache that panics (or errors) on a damaged store turns
//! a disk problem into an unusable campaign — the whole point of the
//! advisory corruption policy is that damage only ever *shrinks* the
//! cache. These tests build a small representative store and feed `open`
//! every single-byte bit-flip, every truncation, and garbage appends:
//! opening must always succeed, never claim a valid prefix longer than
//! the file, only surface CRC-intact entries, and a `put` after damage
//! must repair the file back to a cleanly-scanning state.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use cheetah::cas::{fair_hash128, CasScan, CasStore};

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fair-cas-fuzz-{}-{tag}-{n}.cas",
        std::process::id()
    ))
}

/// `(key, value)` corpus covering empty, short, and larger values.
fn sample_entries() -> Vec<([u8; 8], Vec<u8>)> {
    vec![
        (*b"entry-00", b"".to_vec()),
        (*b"entry-01", b"{\"schema\":\"fair-memo/1\"}".to_vec()),
        (*b"entry-02", vec![0xAB; 300]),
        (*b"entry-03", b"unicode \xE2\x80\x94 payload".to_vec()),
    ]
}

/// Builds the sample store and returns its raw bytes.
fn sample_store_bytes() -> Vec<u8> {
    let path = scratch("sample");
    let mut store = CasStore::open(&path).expect("open fresh");
    for (seed, value) in sample_entries() {
        store.put(fair_hash128(&seed), &value).expect("put");
    }
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    bytes
}

/// Opens a store over arbitrary bytes; asserts the scan stays within the
/// file's bounds and every surfaced entry is one of the originals.
fn open_bytes(tag: &str, bytes: &[u8]) -> (usize, CasScan) {
    let path = scratch(tag);
    std::fs::write(&path, bytes).expect("write fuzz case");
    let store = CasStore::open(&path).expect("open must be total");
    let scan = store.scan();
    assert!(
        scan.valid_len <= bytes.len() as u64,
        "{tag}: valid prefix ({}) exceeds the file ({})",
        scan.valid_len,
        bytes.len()
    );
    assert_eq!(
        scan.valid_len + scan.dropped_bytes,
        bytes.len() as u64,
        "{tag}: scan must account for every byte"
    );
    for (seed, value) in sample_entries() {
        if let Some(stored) = store.get(fair_hash128(&seed)) {
            assert_eq!(
                stored,
                value.as_slice(),
                "{tag}: a surfaced entry must be byte-exact (CRC passed)"
            );
        }
    }
    let len = store.len();
    std::fs::remove_file(&path).ok();
    (len, scan)
}

#[test]
fn every_single_byte_bitflip_opens_cleanly() {
    let pristine = sample_store_bytes();
    assert!(pristine.len() > 100, "sample store suspiciously small");
    for mask in [0x01u8, 0xFF] {
        for i in 0..pristine.len() {
            let mut mutated = pristine.clone();
            mutated[i] ^= mask;
            // must not panic; a flipped frame may drop out (CRC) but can
            // never surface altered bytes (open_bytes asserts that)
            let _ = open_bytes("bitflip", &mutated);
        }
    }
}

#[test]
fn every_truncation_keeps_a_consistent_prefix() {
    let pristine = sample_store_bytes();
    for cut in 0..=pristine.len() {
        let (len, scan) = open_bytes("truncate", &pristine[..cut]);
        // the valid prefix must itself re-scan cleanly, with identical
        // results — recovery is idempotent
        let (len2, scan2) = open_bytes("truncate-again", &pristine[..scan.valid_len as usize]);
        assert_eq!(len, len2, "truncation at {cut}: prefix re-scan diverged");
        assert_eq!(scan2.dropped_bytes, 0, "a valid prefix has no tail");
        assert_eq!(scan2.valid_len, scan.valid_len);
    }
}

#[test]
fn garbage_appends_never_reach_the_entries() {
    let pristine = sample_store_bytes();
    let full = CasStore::open({
        let p = scratch("garbage-ref");
        std::fs::write(&p, &pristine).expect("write");
        p
    })
    .expect("open pristine");
    for garbage in [
        b"not a frame".to_vec(),
        vec![0u8; 64],
        vec![0xFF; 7],
        pristine[..9].to_vec(), // a torn copy of the magic + 1 byte
    ] {
        let mut mutated = pristine.clone();
        mutated.extend_from_slice(&garbage);
        let (len, scan) = open_bytes("garbage", &mutated);
        assert_eq!(len, full.len(), "garbage tail must not add entries");
        assert_eq!(scan.valid_len, pristine.len() as u64);
        assert_eq!(scan.dropped_bytes, garbage.len() as u64);
    }
}

#[test]
fn put_after_damage_repairs_the_store() {
    let pristine = sample_store_bytes();
    // tear mid-frame: drop the last 5 bytes, then append junk
    let mut damaged = pristine[..pristine.len() - 5].to_vec();
    damaged.extend_from_slice(b"\x00\x00junk");
    let path = scratch("repair");
    std::fs::write(&path, &damaged).expect("write damaged");

    let mut store = CasStore::open(&path).expect("open damaged");
    assert!(store.scan().dropped_bytes > 0, "damage must be observed");
    let lost = sample_entries().len() - store.len();
    assert!(lost >= 1, "the torn final frame must be lost");

    // the next put triggers rewrite-to-tmp-then-rename: afterwards the
    // file scans clean and holds the surviving entries plus the new one
    store
        .put(fair_hash128(b"fresh-after-damage"), b"re-executed output")
        .expect("repairing put");
    let reopened = CasStore::open(&path).expect("reopen repaired");
    assert_eq!(
        reopened.scan().dropped_bytes,
        0,
        "repair must leave no tail"
    );
    assert_eq!(reopened.len(), store.len());
    assert_eq!(
        reopened.get(fair_hash128(b"fresh-after-damage")),
        Some(b"re-executed output".as_slice())
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn zero_length_and_magic_only_stores_are_empty() {
    let (len, scan) = open_bytes("empty", &[]);
    assert_eq!((len, scan.frames), (0, 0));
    let (len, scan) = open_bytes("magic-only", b"FAIRCAS1");
    assert_eq!((len, scan.frames), (0, 0));
    assert_eq!(
        scan.dropped_bytes, 0,
        "a bare magic header is a clean store"
    );
}
