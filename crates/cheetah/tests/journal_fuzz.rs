//! Corruption fuzz for journal recovery: `recover` must be total.
//!
//! A durability layer that panics on a bad log converts a disk problem
//! into a lost campaign. These tests build a small, representative
//! journal and then feed `recover` every single-byte bit-flip and every
//! truncation of it — recovery must always return (`Ok` with a valid
//! prefix, or a typed `Corrupt`/`BadRecord` error), never panic, and
//! whatever prefix it accepts must scan within the file's bounds.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use cheetah::journal::{
    recover, FsyncPolicy, JournalError, JournalRecord, JournalWriter, RecoveredJournal,
};
use cheetah::status::{RunStatus, StatusBoard};

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fair-journal-fuzz-{}-{tag}-{n}.journal",
        std::process::id()
    ))
}

fn sample_board() -> StatusBoard {
    let mut board = StatusBoard::default();
    board.set("g/a-0", RunStatus::Done);
    board.set("g/a-1", RunStatus::Pending);
    board.record_attempt("g/a-0");
    board.record_failure("g/a-1", "node-crash".to_string());
    board.record_telemetry_ref("g/a-0", "trace#2".to_string());
    board.record_digest_ref("g/a-0", "digest#span_us.attempt".to_string());
    board
}

/// A small journal exercising every record variant.
fn sample_journal_bytes() -> Vec<u8> {
    let path = scratch("sample");
    let mut writer = JournalWriter::create(&path, FsyncPolicy::Never).expect("create");
    let board = sample_board();
    for record in [
        JournalRecord::Snapshot {
            board: board.clone(),
        },
        JournalRecord::Attempt {
            run: "g/a-1".to_string(),
        },
        JournalRecord::Status {
            run: "g/a-1".to_string(),
            status: RunStatus::Running,
        },
        JournalRecord::Failure {
            run: "g/a-1".to_string(),
            cause: "walltime".to_string(),
        },
        JournalRecord::TelemetryRef {
            run: "g/a-1".to_string(),
            reference: "trace#3".to_string(),
        },
        JournalRecord::Epoch {
            index: 0,
            now_us: 3_600_000_000,
            completed: 1,
            timed_out: 0,
        },
        JournalRecord::ShardMerged {
            shard: 1,
            board: board.clone(),
        },
        JournalRecord::Snapshot { board },
        JournalRecord::Complete,
    ] {
        writer.append(&record).expect("append");
    }
    writer.sync().expect("sync");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    bytes
}

/// Recovery on arbitrary bytes must return, never panic, and never claim
/// a valid prefix longer than the input.
fn recover_bytes(tag: &str, bytes: &[u8]) -> Result<RecoveredJournal, JournalError> {
    let path = scratch(tag);
    std::fs::write(&path, bytes).expect("write fuzz case");
    let result = recover(&path);
    std::fs::remove_file(&path).ok();
    if let Ok(recovered) = &result {
        assert!(
            recovered.valid_len <= bytes.len() as u64,
            "{tag}: valid prefix ({}) exceeds the file ({})",
            recovered.valid_len,
            bytes.len()
        );
    }
    result
}

#[test]
fn every_single_byte_bitflip_recovers_or_errors_cleanly() {
    let pristine = sample_journal_bytes();
    assert!(pristine.len() > 100, "sample journal suspiciously small");
    // flip one low bit and all eight bits of every byte position
    for mask in [0x01u8, 0xFF] {
        for i in 0..pristine.len() {
            let mut mutated = pristine.clone();
            mutated[i] ^= mask;
            // must not panic; both outcomes are acceptable — a CRC'd
            // frame rejects the flip (torn tail or hard error), or the
            // flip hides in a torn region
            let _ = recover_bytes("bitflip", &mutated);
        }
    }
}

#[test]
fn every_truncation_recovers_a_consistent_prefix() {
    let pristine = sample_journal_bytes();
    for cut in 0..=pristine.len() {
        let result = recover_bytes("truncate", &pristine[..cut]);
        // a pure truncation is exactly a torn tail: recovery must accept
        // it (hard errors are reserved for *mid-log* damage)
        let recovered = result.unwrap_or_else(|err| {
            panic!(
                "truncation at {cut}/{} must recover, got {err}",
                pristine.len()
            )
        });
        assert!(recovered.valid_len <= cut as u64);
        // the recovered prefix must itself re-scan cleanly
        let again = recover_bytes("truncate-again", &pristine[..recovered.valid_len as usize])
            .expect("valid prefix must recover");
        assert_eq!(again.records, recovered.records);
        assert_eq!(again.board, recovered.board);
    }
}

#[test]
fn zero_length_journal_recovers_an_empty_board() {
    let recovered = recover_bytes("empty", &[]).expect("zero-length journal");
    assert_eq!(recovered.records.len(), 0);
    assert_eq!(recovered.board, StatusBoard::default());
    assert!(!recovered.complete);
}

#[test]
fn snapshot_only_journal_recovers_the_snapshot() {
    let path = scratch("snapshot-only");
    let mut writer = JournalWriter::create(&path, FsyncPolicy::Never).expect("create");
    let board = sample_board();
    writer
        .append(&JournalRecord::Snapshot {
            board: board.clone(),
        })
        .expect("append");
    writer.sync().expect("sync");
    let recovered = recover(&path).expect("snapshot-only journal");
    std::fs::remove_file(&path).ok();
    assert_eq!(recovered.board, board);
    assert_eq!(recovered.records.len(), 1);
    assert!(!recovered.complete);
}

#[test]
fn mutated_complete_journals_never_report_false_completion() {
    // flipping bytes must never turn an incomplete journal into a
    // "complete" one: completion requires an intact Complete frame
    let pristine = sample_journal_bytes();
    // cut the final Complete frame off
    let without_complete = &pristine[..pristine.len() - 1];
    let recovered = recover_bytes("no-complete", without_complete).expect("torn complete");
    assert!(
        !recovered.complete,
        "a torn Complete frame must not count as completion"
    );
}
