//! Run and campaign status tracking.
//!
//! "An API to submit a campaign and query its status is provided to
//! investigate and interact with the campaign" (§IV), and resubmission of
//! a partially completed SweepGroup "simply" continues where it stopped
//! (§V-D). Status lives in a [`StatusBoard`] keyed by run id; persistence
//! to the campaign directory is handled by [`crate::layout`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::manifest::{CampaignManifest, RunManifest};

/// Lifecycle state of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunStatus {
    /// Not started.
    Pending,
    /// Currently executing.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with an error.
    Failed,
    /// Killed by the allocation's walltime end; eligible for resubmission.
    TimedOut,
}

impl RunStatus {
    /// The variant's canonical name — identical to its serde form.
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Pending => "Pending",
            RunStatus::Running => "Running",
            RunStatus::Done => "Done",
            RunStatus::Failed => "Failed",
            RunStatus::TimedOut => "TimedOut",
        }
    }

    /// The inverse of [`RunStatus::as_str`]: parses a canonical variant
    /// name back into the status. Used by
    /// [`StatusBoard::from_canonical_json`] and the journal decoder, so
    /// durable state is readable without serde.
    pub fn parse_name(name: &str) -> Option<Self> {
        match name {
            "Pending" => Some(RunStatus::Pending),
            "Running" => Some(RunStatus::Running),
            "Done" => Some(RunStatus::Done),
            "Failed" => Some(RunStatus::Failed),
            "TimedOut" => Some(RunStatus::TimedOut),
            _ => None,
        }
    }

    /// True for states that no longer occupy resources.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            RunStatus::Done | RunStatus::Failed | RunStatus::TimedOut
        )
    }

    /// True for runs a resubmission should execute again.
    pub fn needs_rerun(self) -> bool {
        matches!(
            self,
            RunStatus::Pending | RunStatus::Running | RunStatus::TimedOut
        )
    }

    /// Policy-gated rerun check: like [`RunStatus::needs_rerun`], but a
    /// `Failed` run also reruns while its failure count stays within
    /// `retry_budget` — the automated path back to the queue that replaces
    /// the paper's manually curated failed-run lists (§II-B).
    pub fn needs_rerun_with_budget(self, failures: u32, retry_budget: u32) -> bool {
        match self {
            RunStatus::Failed => failures <= retry_budget,
            other => other.needs_rerun(),
        }
    }
}

/// Escapes `s` into `out` as a JSON string literal, using exactly the
/// escape set the canonical writer has always emitted (pinned by the
/// `canonical_json_matches_serde` test). Shared with [`crate::journal`]
/// so journal payloads and snapshots agree byte-for-byte.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    // Copy in unescaped chunks: only `"`, `\`, and control bytes need
    // escaping, and all three are single bytes in UTF-8, so a byte scan
    // is safe and the common all-clean string is one memcpy.
    let mut rest = s;
    while let Some(pos) = rest
        .bytes()
        .position(|b| matches!(b, b'"' | b'\\') || b < 0x20)
    {
        out.push_str(&rest[..pos]);
        match rest.as_bytes()[pos] {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\r' => out.push_str("\\r"),
            b'\t' => out.push_str("\\t"),
            b => out.push_str(&format!("\\u{:04x}", u32::from(b))),
        }
        rest = &rest[pos + 1..];
    }
    out.push_str(rest);
    out.push('"');
}

/// Status of every run in a campaign.
///
/// Besides the per-run lifecycle state, the board records *execution
/// provenance*: how many attempts each run has consumed and why the last
/// one failed. Both maps are serde-defaulted so status files written
/// before this schema extension still load.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatusBoard {
    statuses: BTreeMap<String, RunStatus>,
    /// Attempts started per run (absent = 0).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    attempts: BTreeMap<String, u32>,
    /// Failed attempts per run (absent = 0).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    failures: BTreeMap<String, u32>,
    /// Human-readable cause of the run's most recent failure.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    last_failure: BTreeMap<String, String>,
    /// Pointer from each run into the campaign's telemetry export —
    /// `<artifact>#<track>`, e.g. `trace.json#3` — so status queries can
    /// jump straight to the run's timeline lane.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    telemetry_refs: BTreeMap<String, String>,
    /// Pointer from each run into the campaign's percentile-digest
    /// export — `digest#<key>`, e.g. `digest#span_us.attempt` — naming
    /// the `fair-telemetry-digest/1` digest that summarizes the run's
    /// span population.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    digest_refs: BTreeMap<String, String>,
}

impl StatusBoard {
    /// A board with every manifest run `Pending`.
    pub fn for_manifest(manifest: &CampaignManifest) -> Self {
        let statuses = manifest
            .groups
            .iter()
            .flat_map(|g| g.runs.iter())
            .map(|r| (r.id.clone(), RunStatus::Pending))
            .collect();
        Self {
            statuses,
            attempts: BTreeMap::new(),
            failures: BTreeMap::new(),
            last_failure: BTreeMap::new(),
            telemetry_refs: BTreeMap::new(),
            digest_refs: BTreeMap::new(),
        }
    }

    /// Records where `run_id`'s telemetry lives (artifact + track, e.g.
    /// `trace.json#3`). Overwrites any earlier pointer — the latest
    /// execution owns the run's timeline.
    pub fn record_telemetry_ref(&mut self, run_id: &str, reference: impl Into<String>) {
        self.telemetry_refs
            .insert(run_id.to_string(), reference.into());
    }

    /// The run's telemetry pointer, if one was recorded.
    pub fn telemetry_ref(&self, run_id: &str) -> Option<&str> {
        self.telemetry_refs.get(run_id).map(String::as_str)
    }

    /// Records which digest of the campaign's `fair-telemetry-digest/1`
    /// export summarizes `run_id` (e.g. `digest#span_us.attempt`).
    /// Overwrites any earlier pointer.
    pub fn record_digest_ref(&mut self, run_id: &str, reference: impl Into<String>) {
        self.digest_refs
            .insert(run_id.to_string(), reference.into());
    }

    /// The run's digest pointer, if one was recorded.
    pub fn digest_ref(&self, run_id: &str) -> Option<&str> {
        self.digest_refs.get(run_id).map(String::as_str)
    }

    /// Records the start of one more attempt of `run_id`; returns the new
    /// attempt count (1 for the first attempt).
    pub fn record_attempt(&mut self, run_id: &str) -> u32 {
        if let Some(n) = self.attempts.get_mut(run_id) {
            *n += 1;
            return *n;
        }
        self.attempts.insert(run_id.to_string(), 1);
        1
    }

    /// Attempts started so far for `run_id` (0 if never attempted).
    pub fn attempts(&self, run_id: &str) -> u32 {
        self.attempts.get(run_id).copied().unwrap_or(0)
    }

    /// Marks `run_id` failed with a machine-readable cause, updating the
    /// lifecycle state, the failure count, and the provenance record.
    pub fn record_failure(&mut self, run_id: &str, cause: impl Into<String>) {
        self.set(run_id, RunStatus::Failed);
        if let Some(n) = self.failures.get_mut(run_id) {
            *n += 1;
        } else {
            self.failures.insert(run_id.to_string(), 1);
        }
        if let Some(slot) = self.last_failure.get_mut(run_id) {
            *slot = cause.into();
        } else {
            self.last_failure.insert(run_id.to_string(), cause.into());
        }
    }

    /// Failed attempts recorded so far for `run_id` (0 if none).
    pub fn failures(&self, run_id: &str) -> u32 {
        self.failures.get(run_id).copied().unwrap_or(0)
    }

    /// The cause of `run_id`'s most recent failure, if any was recorded.
    pub fn last_failure_cause(&self, run_id: &str) -> Option<&str> {
        self.last_failure.get(run_id).map(String::as_str)
    }

    /// Sets one run's status.
    pub fn set(&mut self, run_id: &str, status: RunStatus) {
        if let Some(slot) = self.statuses.get_mut(run_id) {
            *slot = status;
        } else {
            self.statuses.insert(run_id.to_string(), status);
        }
    }

    /// Gets one run's status (`Pending` if unknown).
    pub fn get(&self, run_id: &str) -> RunStatus {
        self.statuses
            .get(run_id)
            .copied()
            .unwrap_or(RunStatus::Pending)
    }

    /// Iterates `(run_id, status)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, RunStatus)> {
        self.statuses.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Aggregates counts.
    pub fn summary(&self) -> CampaignStatus {
        let mut s = CampaignStatus::default();
        for &v in self.statuses.values() {
            match v {
                RunStatus::Pending => s.pending += 1,
                RunStatus::Running => s.running += 1,
                RunStatus::Done => s.done += 1,
                RunStatus::Failed => s.failed += 1,
                RunStatus::TimedOut => s.timed_out += 1,
            }
        }
        s
    }

    /// Extracts the sub-board for a shard's sub-manifest: every run of
    /// `manifest` with its current state, attempts, failures, cause, and
    /// telemetry pointer copied over (runs unknown to `self` start
    /// `Pending`). The sharded campaign drivers hand each shard a
    /// sub-board so shards never share mutable state, then fold the
    /// results back with [`StatusBoard::merge_from`].
    pub fn sub_board(&self, manifest: &CampaignManifest) -> StatusBoard {
        let mut sub = StatusBoard::default();
        for run in manifest.groups.iter().flat_map(|g| g.runs.iter()) {
            let id = run.id.as_str();
            sub.statuses.insert(id.to_string(), self.get(id));
            if let Some(&n) = self.attempts.get(id) {
                sub.attempts.insert(id.to_string(), n);
            }
            if let Some(&n) = self.failures.get(id) {
                sub.failures.insert(id.to_string(), n);
            }
            if let Some(cause) = self.last_failure.get(id) {
                sub.last_failure.insert(id.to_string(), cause.clone());
            }
            if let Some(r) = self.telemetry_refs.get(id) {
                sub.telemetry_refs.insert(id.to_string(), r.clone());
            }
            if let Some(r) = self.digest_refs.get(id) {
                sub.digest_refs.insert(id.to_string(), r.clone());
            }
        }
        sub
    }

    /// Folds a shard's sub-board back into this board: every run the
    /// sub-board knows about overwrites this board's record for that run.
    /// Consumes the sub-board, so run ids and provenance strings are
    /// *moved* into this board rather than re-allocated — the shard merge
    /// path hands each sub-board back by value, and a merge of N runs
    /// performs zero string allocations.
    /// Because all maps are `BTreeMap`s, the merged board's serialized
    /// form depends only on the final per-run records — never on merge
    /// order — which is what makes the merge associative and the parallel
    /// drivers' output byte-identical to serial execution.
    pub fn merge_from(&mut self, sub: StatusBoard) {
        for (id, status) in sub.statuses {
            self.statuses.insert(id, status);
        }
        for (id, n) in sub.attempts {
            self.attempts.insert(id, n);
        }
        for (id, n) in sub.failures {
            self.failures.insert(id, n);
        }
        for (id, cause) in sub.last_failure {
            self.last_failure.insert(id, cause);
        }
        for (id, r) in sub.telemetry_refs {
            self.telemetry_refs.insert(id, r);
        }
        for (id, r) in sub.digest_refs {
            self.digest_refs.insert(id, r);
        }
    }

    /// Serializes the board to compact JSON with a hand-rolled writer,
    /// byte-identical to `serde_json::to_string` (pinned by a test).
    /// The golden-fixture corpus and the determinism-differential harness
    /// compare this form: it is deterministic (all maps are `BTreeMap`s)
    /// and independent of which JSON backend the build links, so
    /// committed fixture bytes are stable across environments.
    pub fn canonical_json(&self) -> String {
        let mut out = String::new();
        self.canonical_json_into(&mut out);
        out
    }

    /// Appends the canonical JSON form to `out` without allocating an
    /// intermediate string — journal snapshots embed boards of
    /// thousands of runs, where the temporary and its copy are
    /// measurable.
    pub fn canonical_json_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        fn push_str(out: &mut String, s: &str) {
            push_json_string(out, s);
        }
        fn push_map<V>(
            out: &mut String,
            open: usize,
            name: &str,
            map: &BTreeMap<String, V>,
            mut value: impl FnMut(&mut String, &V),
        ) {
            if out.len() > open + 1 {
                out.push(',');
            }
            push_str(out, name);
            out.push_str(":{");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_str(out, k);
                out.push(':');
                value(out, v);
            }
            out.push('}');
        }

        // Rough per-entry sizing so a large snapshot encodes without
        // repeated growth copies.
        let entries = self.statuses.len()
            + self.attempts.len()
            + self.failures.len()
            + self.last_failure.len()
            + self.telemetry_refs.len()
            + self.digest_refs.len();
        out.reserve(entries * 24 + 128);
        let open = out.len();
        out.push('{');
        push_map(out, open, "statuses", &self.statuses, |o, v| {
            push_str(o, v.as_str());
        });
        if !self.attempts.is_empty() {
            push_map(out, open, "attempts", &self.attempts, |o, v| {
                let _ = write!(o, "{v}");
            });
        }
        if !self.failures.is_empty() {
            push_map(out, open, "failures", &self.failures, |o, v| {
                let _ = write!(o, "{v}");
            });
        }
        if !self.last_failure.is_empty() {
            push_map(out, open, "last_failure", &self.last_failure, |o, v| {
                push_str(o, v);
            });
        }
        if !self.telemetry_refs.is_empty() {
            push_map(out, open, "telemetry_refs", &self.telemetry_refs, |o, v| {
                push_str(o, v);
            });
        }
        if !self.digest_refs.is_empty() {
            push_map(out, open, "digest_refs", &self.digest_refs, |o, v| {
                push_str(o, v);
            });
        }
        out.push('}');
    }

    /// Parses a board back out of its [`StatusBoard::canonical_json`]
    /// form without serde, using `telemetry::jsonin` — the same
    /// dependency-free reader the offline tooling uses. This is the
    /// snapshot decoder for [`crate::journal`] recovery: a journaled
    /// campaign must be recoverable even in the stub-only offline
    /// workspace where serde_json is not functional.
    ///
    /// The parser is strict: unknown top-level keys, non-string run ids,
    /// unknown status names, and non-`u32` counters are all errors, so a
    /// corrupted snapshot surfaces as a typed failure instead of a
    /// silently emptier board. `parse(canonical_json(b)) == b` is pinned
    /// by a proptest.
    pub fn from_canonical_json(doc: &str) -> Result<Self, String> {
        let value = telemetry::jsonin::parse(doc)?;
        Self::from_json_value(&value)
    }

    /// Like [`StatusBoard::from_canonical_json`], but from an
    /// already-parsed `telemetry::jsonin` value.
    pub fn from_json_value(value: &telemetry::jsonin::Value) -> Result<Self, String> {
        use telemetry::jsonin::Value;

        fn str_map(section: &str, value: &Value) -> Result<BTreeMap<String, String>, String> {
            let members = value
                .as_obj()
                .ok_or_else(|| format!("status board: {section} is not an object"))?;
            members
                .iter()
                .map(|(run, v)| match v.as_str() {
                    Some(s) => Ok((run.clone(), s.to_string())),
                    None => Err(format!("status board: {section}[{run:?}] is not a string")),
                })
                .collect()
        }
        fn count_map(section: &str, value: &Value) -> Result<BTreeMap<String, u32>, String> {
            let members = value
                .as_obj()
                .ok_or_else(|| format!("status board: {section} is not an object"))?;
            members
                .iter()
                .map(
                    |(run, v)| match v.as_u64().and_then(|n| u32::try_from(n).ok()) {
                        Some(n) => Ok((run.clone(), n)),
                        None => Err(format!("status board: {section}[{run:?}] is not a u32")),
                    },
                )
                .collect()
        }

        let members = value
            .as_obj()
            .ok_or_else(|| "status board: document is not an object".to_string())?;
        let mut board = StatusBoard::default();
        for (key, section) in members {
            match key.as_str() {
                "statuses" => {
                    for (run, status) in str_map("statuses", section)? {
                        let status = RunStatus::parse_name(&status).ok_or_else(|| {
                            format!("status board: statuses[{run:?}] has unknown status {status:?}")
                        })?;
                        board.statuses.insert(run, status);
                    }
                }
                "attempts" => board.attempts = count_map("attempts", section)?,
                "failures" => board.failures = count_map("failures", section)?,
                "last_failure" => board.last_failure = str_map("last_failure", section)?,
                "telemetry_refs" => board.telemetry_refs = str_map("telemetry_refs", section)?,
                "digest_refs" => board.digest_refs = str_map("digest_refs", section)?,
                other => return Err(format!("status board: unknown section {other:?}")),
            }
        }
        Ok(board)
    }

    /// The per-run status map (crate-internal: journal board diffing).
    pub(crate) fn statuses_map(&self) -> &BTreeMap<String, RunStatus> {
        &self.statuses
    }

    /// The per-run attempt counts (crate-internal: journal board diffing).
    pub(crate) fn attempts_map(&self) -> &BTreeMap<String, u32> {
        &self.attempts
    }

    /// The per-run failure counts (crate-internal: journal board diffing).
    pub(crate) fn failures_map(&self) -> &BTreeMap<String, u32> {
        &self.failures
    }

    /// The per-run failure causes (crate-internal: journal board diffing).
    pub(crate) fn last_failure_map(&self) -> &BTreeMap<String, String> {
        &self.last_failure
    }

    /// The per-run telemetry refs (crate-internal: journal board diffing).
    pub(crate) fn telemetry_refs_map(&self) -> &BTreeMap<String, String> {
        &self.telemetry_refs
    }

    /// The per-run digest refs (crate-internal: journal board diffing).
    pub(crate) fn digest_refs_map(&self) -> &BTreeMap<String, String> {
        &self.digest_refs
    }

    /// The runs a resubmission must still execute — the heart of "users
    /// may simply re-submit a partially completed SweepGroup".
    pub fn incomplete_runs<'m>(&self, manifest: &'m CampaignManifest) -> Vec<&'m RunManifest> {
        manifest
            .groups
            .iter()
            .flat_map(|g| g.runs.iter())
            .filter(|r| self.get(&r.id).needs_rerun())
            .collect()
    }

    /// Like [`StatusBoard::incomplete_runs`], but `Failed` runs whose
    /// recorded failure count is still within `retry_budget` are also
    /// returned — the automated requeue path a resilience policy drives.
    pub fn incomplete_runs_with_budget<'m>(
        &self,
        manifest: &'m CampaignManifest,
        retry_budget: u32,
    ) -> Vec<&'m RunManifest> {
        manifest
            .groups
            .iter()
            .flat_map(|g| g.runs.iter())
            .filter(|r| {
                self.get(&r.id)
                    .needs_rerun_with_budget(self.failures(&r.id), retry_budget)
            })
            .collect()
    }
}

/// Aggregate campaign status counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStatus {
    /// Runs not yet started.
    pub pending: usize,
    /// Runs currently executing.
    pub running: usize,
    /// Runs completed successfully.
    pub done: usize,
    /// Runs that failed.
    pub failed: usize,
    /// Runs cut off by walltime.
    pub timed_out: usize,
}

impl CampaignStatus {
    /// Total runs accounted for.
    pub fn total(&self) -> usize {
        self.pending + self.running + self.done + self.failed + self.timed_out
    }

    /// True when every run is `Done`.
    pub fn is_complete(&self) -> bool {
        self.total() > 0 && self.done == self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{AppDef, Campaign, SweepGroup};
    use crate::param::SweepSpec;
    use crate::sweep::Sweep;

    fn manifest() -> CampaignManifest {
        Campaign::new("c", "m", AppDef::new("a", "a.exe"))
            .with_group(SweepGroup::new(
                "g",
                Sweep::new().with("n", SweepSpec::list([1, 2, 3])),
                2,
                1,
                60,
            ))
            .manifest()
            .unwrap()
    }

    #[test]
    fn board_starts_all_pending() {
        let m = manifest();
        let board = StatusBoard::for_manifest(&m);
        let s = board.summary();
        assert_eq!(s.pending, 3);
        assert_eq!(s.total(), 3);
        assert!(!s.is_complete());
    }

    #[test]
    fn transitions_and_summary() {
        let m = manifest();
        let mut board = StatusBoard::for_manifest(&m);
        board.set("g/n-1", RunStatus::Done);
        board.set("g/n-2", RunStatus::TimedOut);
        let s = board.summary();
        assert_eq!((s.done, s.timed_out, s.pending), (1, 1, 1));
    }

    #[test]
    fn incomplete_runs_drive_resubmission() {
        let m = manifest();
        let mut board = StatusBoard::for_manifest(&m);
        board.set("g/n-1", RunStatus::Done);
        board.set("g/n-2", RunStatus::TimedOut);
        let rerun: Vec<&str> = board
            .incomplete_runs(&m)
            .iter()
            .map(|r| r.id.as_str())
            .collect();
        assert_eq!(rerun, ["g/n-2", "g/n-3"]);
    }

    #[test]
    fn failed_runs_are_not_rerun_by_default() {
        // failures need human triage; the paper's workflow curates a list
        let m = manifest();
        let mut board = StatusBoard::for_manifest(&m);
        board.set("g/n-1", RunStatus::Failed);
        board.set("g/n-2", RunStatus::Done);
        board.set("g/n-3", RunStatus::Done);
        assert!(board.incomplete_runs(&m).is_empty());
        assert!(!board.summary().is_complete());
    }

    #[test]
    fn unknown_run_is_pending() {
        let board = StatusBoard::default();
        assert_eq!(board.get("nope"), RunStatus::Pending);
    }

    #[test]
    fn failed_runs_rerun_within_budget() {
        let m = manifest();
        let mut board = StatusBoard::for_manifest(&m);
        board.record_attempt("g/n-1");
        board.record_failure("g/n-1", "node-crash");
        board.set("g/n-2", RunStatus::Done);
        board.set("g/n-3", RunStatus::Done);
        // plain query still excludes failures (human-triage semantics)
        assert!(board.incomplete_runs(&m).is_empty());
        // a budget of 2 retries readmits the single failure
        let rerun: Vec<&str> = board
            .incomplete_runs_with_budget(&m, 2)
            .iter()
            .map(|r| r.id.as_str())
            .collect();
        assert_eq!(rerun, ["g/n-1"]);
        // two more failures exhaust the budget
        board.record_failure("g/n-1", "node-crash");
        board.record_failure("g/n-1", "hang");
        assert!(board.incomplete_runs_with_budget(&m, 2).is_empty());
        assert_eq!(board.failures("g/n-1"), 3);
        assert_eq!(board.last_failure_cause("g/n-1"), Some("hang"));
    }

    #[test]
    fn attempt_counts_accumulate() {
        let mut board = StatusBoard::default();
        assert_eq!(board.attempts("r"), 0);
        assert_eq!(board.record_attempt("r"), 1);
        assert_eq!(board.record_attempt("r"), 2);
        assert_eq!(board.attempts("r"), 2);
    }

    #[test]
    fn provenance_survives_serde_round_trip() {
        let m = manifest();
        let mut board = StatusBoard::for_manifest(&m);
        board.record_attempt("g/n-1");
        board.record_attempt("g/n-1");
        board.record_failure("g/n-1", "fs-stall hang");
        board.record_telemetry_ref("g/n-1", "trace.json#1");
        board.record_digest_ref("g/n-1", "digest#span_us.attempt");
        board.set("g/n-2", RunStatus::Done);
        let json = serde_json::to_string(&board).expect("serialize");
        let back: StatusBoard = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, board);
        assert_eq!(back.attempts("g/n-1"), 2);
        assert_eq!(back.failures("g/n-1"), 1);
        assert_eq!(back.last_failure_cause("g/n-1"), Some("fs-stall hang"));
        assert_eq!(back.telemetry_ref("g/n-1"), Some("trace.json#1"));
        assert_eq!(back.telemetry_ref("g/n-2"), None);
        assert_eq!(back.digest_ref("g/n-1"), Some("digest#span_us.attempt"));
        assert_eq!(back.digest_ref("g/n-2"), None);
    }

    #[test]
    fn pre_provenance_status_files_still_load() {
        // a status file written before the provenance fields existed
        let legacy = r#"{"statuses":{"g/n-1":"Done","g/n-2":"Failed"}}"#;
        let board: StatusBoard = serde_json::from_str(legacy).expect("legacy load");
        assert_eq!(board.get("g/n-1"), RunStatus::Done);
        assert_eq!(board.attempts("g/n-2"), 0);
        assert_eq!(board.last_failure_cause("g/n-2"), None);
    }

    #[test]
    fn sub_board_and_merge_round_trip() {
        let m = manifest();
        let mut board = StatusBoard::for_manifest(&m);
        board.record_attempt("g/n-1");
        board.record_failure("g/n-1", "node-crash");
        board.record_telemetry_ref("g/n-1", "trace#1");
        board.set("g/n-2", RunStatus::Done);

        // a "shard" holding only runs 1 and 3
        let mut sub_manifest = m.clone();
        sub_manifest.groups[0].runs.retain(|r| r.id != "g/n-2");
        board.record_digest_ref("g/n-1", "digest#span_us.attempt");
        let mut sub = board.sub_board(&sub_manifest);
        assert_eq!(sub.get("g/n-1"), RunStatus::Failed);
        assert_eq!(sub.attempts("g/n-1"), 1);
        assert_eq!(sub.telemetry_ref("g/n-1"), Some("trace#1"));
        assert_eq!(sub.digest_ref("g/n-1"), Some("digest#span_us.attempt"));
        assert_eq!(sub.get("g/n-3"), RunStatus::Pending);
        // the sub-board must not know about runs outside its manifest
        assert_eq!(sub.summary().total(), 2);

        // the shard makes progress; merging folds it back
        sub.record_attempt("g/n-3");
        sub.set("g/n-3", RunStatus::Done);
        sub.set("g/n-1", RunStatus::Done);
        sub.record_digest_ref("g/n-3", "digest#span_us.allocation");
        board.merge_from(sub);
        assert_eq!(board.digest_ref("g/n-3"), Some("digest#span_us.allocation"));
        assert_eq!(board.get("g/n-1"), RunStatus::Done);
        assert_eq!(board.get("g/n-2"), RunStatus::Done);
        assert_eq!(board.get("g/n-3"), RunStatus::Done);
        assert_eq!(board.attempts("g/n-3"), 1);
        // untouched provenance survives the merge
        assert_eq!(board.failures("g/n-1"), 1);
        assert!(board.summary().is_complete());
    }

    fn provenance_board() -> StatusBoard {
        let m = manifest();
        let mut board = StatusBoard::for_manifest(&m);
        board.record_attempt("g/n-1");
        board.record_failure("g/n-1", "fs-stall \"hang\"\n");
        board.record_telemetry_ref("g/n-1", "trace.json#1");
        board.record_digest_ref("g/n-1", "digest#span_us.attempt");
        board.set("g/n-2", RunStatus::Done);
        board
    }

    #[test]
    fn canonical_json_is_stable() {
        // serde-independent golden bytes: this is the exact form the
        // fixture corpus and the parallel-determinism harness compare
        let board = provenance_board();
        assert_eq!(
            board.canonical_json(),
            concat!(
                r#"{"statuses":{"g/n-1":"Failed","g/n-2":"Done","g/n-3":"Pending"},"#,
                r#""attempts":{"g/n-1":1},"failures":{"g/n-1":1},"#,
                r#""last_failure":{"g/n-1":"fs-stall \"hang\"\n"},"#,
                r#""telemetry_refs":{"g/n-1":"trace.json#1"},"#,
                r#""digest_refs":{"g/n-1":"digest#span_us.attempt"}}"#
            )
        );
        // empty provenance maps are omitted, mirroring the serde skips
        let empty = StatusBoard::for_manifest(&manifest());
        assert_eq!(
            empty.canonical_json(),
            r#"{"statuses":{"g/n-1":"Pending","g/n-2":"Pending","g/n-3":"Pending"}}"#
        );
    }

    #[test]
    fn canonical_json_matches_serde() {
        for board in [provenance_board(), StatusBoard::for_manifest(&manifest())] {
            assert_eq!(
                board.canonical_json(),
                serde_json::to_string(&board).expect("serialize"),
            );
            let back: StatusBoard =
                serde_json::from_str(&board.canonical_json()).expect("canonical form parses");
            assert_eq!(back, board);
        }
    }

    #[test]
    fn from_canonical_json_round_trips() {
        for board in [
            provenance_board(),
            StatusBoard::for_manifest(&manifest()),
            StatusBoard::default(),
        ] {
            let parsed = StatusBoard::from_canonical_json(&board.canonical_json()).expect("parses");
            assert_eq!(parsed, board);
        }
    }

    #[test]
    fn from_canonical_json_rejects_malformed_boards() {
        for (doc, why) in [
            ("", "empty document"),
            ("[]", "not an object"),
            (r#"{"statuses":{"r":"Sleeping"}}"#, "unknown status name"),
            (r#"{"statuses":{"r":1}}"#, "non-string status"),
            (r#"{"attempts":{"r":-1}}"#, "negative attempt count"),
            (r#"{"attempts":{"r":1.5}}"#, "fractional attempt count"),
            (r#"{"attempts":{"r":4294967296}}"#, "attempt count > u32"),
            (r#"{"statuses":{},"extra":{}}"#, "unknown section"),
            (r#"{"last_failure":{"r":null}}"#, "non-string cause"),
        ] {
            assert!(
                StatusBoard::from_canonical_json(doc).is_err(),
                "{why}: {doc:?} should not parse"
            );
        }
    }

    #[test]
    fn run_status_parse_name_inverts_as_str() {
        for status in [
            RunStatus::Pending,
            RunStatus::Running,
            RunStatus::Done,
            RunStatus::Failed,
            RunStatus::TimedOut,
        ] {
            assert_eq!(RunStatus::parse_name(status.as_str()), Some(status));
        }
        assert_eq!(RunStatus::parse_name("pending"), None);
    }

    #[test]
    fn completion() {
        let m = manifest();
        let mut board = StatusBoard::for_manifest(&m);
        for id in ["g/n-1", "g/n-2", "g/n-3"] {
            board.set(id, RunStatus::Done);
        }
        assert!(board.summary().is_complete());
    }
}
