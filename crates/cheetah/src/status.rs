//! Run and campaign status tracking.
//!
//! "An API to submit a campaign and query its status is provided to
//! investigate and interact with the campaign" (§IV), and resubmission of
//! a partially completed SweepGroup "simply" continues where it stopped
//! (§V-D). Status lives in a [`StatusBoard`] keyed by run id; persistence
//! to the campaign directory is handled by [`crate::layout`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::manifest::{CampaignManifest, RunManifest};

/// Lifecycle state of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunStatus {
    /// Not started.
    Pending,
    /// Currently executing.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with an error.
    Failed,
    /// Killed by the allocation's walltime end; eligible for resubmission.
    TimedOut,
}

impl RunStatus {
    /// True for states that no longer occupy resources.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            RunStatus::Done | RunStatus::Failed | RunStatus::TimedOut
        )
    }

    /// True for runs a resubmission should execute again.
    pub fn needs_rerun(self) -> bool {
        matches!(
            self,
            RunStatus::Pending | RunStatus::Running | RunStatus::TimedOut
        )
    }
}

/// Status of every run in a campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatusBoard {
    statuses: BTreeMap<String, RunStatus>,
}

impl StatusBoard {
    /// A board with every manifest run `Pending`.
    pub fn for_manifest(manifest: &CampaignManifest) -> Self {
        let statuses = manifest
            .groups
            .iter()
            .flat_map(|g| g.runs.iter())
            .map(|r| (r.id.clone(), RunStatus::Pending))
            .collect();
        Self { statuses }
    }

    /// Sets one run's status.
    pub fn set(&mut self, run_id: &str, status: RunStatus) {
        self.statuses.insert(run_id.to_string(), status);
    }

    /// Gets one run's status (`Pending` if unknown).
    pub fn get(&self, run_id: &str) -> RunStatus {
        self.statuses
            .get(run_id)
            .copied()
            .unwrap_or(RunStatus::Pending)
    }

    /// Iterates `(run_id, status)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, RunStatus)> {
        self.statuses.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Aggregates counts.
    pub fn summary(&self) -> CampaignStatus {
        let mut s = CampaignStatus::default();
        for &v in self.statuses.values() {
            match v {
                RunStatus::Pending => s.pending += 1,
                RunStatus::Running => s.running += 1,
                RunStatus::Done => s.done += 1,
                RunStatus::Failed => s.failed += 1,
                RunStatus::TimedOut => s.timed_out += 1,
            }
        }
        s
    }

    /// The runs a resubmission must still execute — the heart of "users
    /// may simply re-submit a partially completed SweepGroup".
    pub fn incomplete_runs<'m>(&self, manifest: &'m CampaignManifest) -> Vec<&'m RunManifest> {
        manifest
            .groups
            .iter()
            .flat_map(|g| g.runs.iter())
            .filter(|r| self.get(&r.id).needs_rerun())
            .collect()
    }
}

/// Aggregate campaign status counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStatus {
    /// Runs not yet started.
    pub pending: usize,
    /// Runs currently executing.
    pub running: usize,
    /// Runs completed successfully.
    pub done: usize,
    /// Runs that failed.
    pub failed: usize,
    /// Runs cut off by walltime.
    pub timed_out: usize,
}

impl CampaignStatus {
    /// Total runs accounted for.
    pub fn total(&self) -> usize {
        self.pending + self.running + self.done + self.failed + self.timed_out
    }

    /// True when every run is `Done`.
    pub fn is_complete(&self) -> bool {
        self.total() > 0 && self.done == self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{AppDef, Campaign, SweepGroup};
    use crate::param::SweepSpec;
    use crate::sweep::Sweep;

    fn manifest() -> CampaignManifest {
        Campaign::new("c", "m", AppDef::new("a", "a.exe"))
            .with_group(SweepGroup::new(
                "g",
                Sweep::new().with("n", SweepSpec::list([1, 2, 3])),
                2,
                1,
                60,
            ))
            .manifest()
            .unwrap()
    }

    #[test]
    fn board_starts_all_pending() {
        let m = manifest();
        let board = StatusBoard::for_manifest(&m);
        let s = board.summary();
        assert_eq!(s.pending, 3);
        assert_eq!(s.total(), 3);
        assert!(!s.is_complete());
    }

    #[test]
    fn transitions_and_summary() {
        let m = manifest();
        let mut board = StatusBoard::for_manifest(&m);
        board.set("g/n-1", RunStatus::Done);
        board.set("g/n-2", RunStatus::TimedOut);
        let s = board.summary();
        assert_eq!((s.done, s.timed_out, s.pending), (1, 1, 1));
    }

    #[test]
    fn incomplete_runs_drive_resubmission() {
        let m = manifest();
        let mut board = StatusBoard::for_manifest(&m);
        board.set("g/n-1", RunStatus::Done);
        board.set("g/n-2", RunStatus::TimedOut);
        let rerun: Vec<&str> = board
            .incomplete_runs(&m)
            .iter()
            .map(|r| r.id.as_str())
            .collect();
        assert_eq!(rerun, ["g/n-2", "g/n-3"]);
    }

    #[test]
    fn failed_runs_are_not_rerun_by_default() {
        // failures need human triage; the paper's workflow curates a list
        let m = manifest();
        let mut board = StatusBoard::for_manifest(&m);
        board.set("g/n-1", RunStatus::Failed);
        board.set("g/n-2", RunStatus::Done);
        board.set("g/n-3", RunStatus::Done);
        assert!(board.incomplete_runs(&m).is_empty());
        assert!(!board.summary().is_complete());
    }

    #[test]
    fn unknown_run_is_pending() {
        let board = StatusBoard::default();
        assert_eq!(board.get("nope"), RunStatus::Pending);
    }

    #[test]
    fn completion() {
        let m = manifest();
        let mut board = StatusBoard::for_manifest(&m);
        for id in ["g/n-1", "g/n-2", "g/n-3"] {
            board.set(id, RunStatus::Done);
        }
        assert!(board.summary().is_complete());
    }
}
