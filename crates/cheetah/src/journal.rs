//! Crash-safe campaign durability: an append-only, CRC32-framed journal
//! of [`StatusBoard`] mutations with snapshot compaction and torn-tail
//! recovery.
//!
//! Every driver in the workspace holds campaign state in memory; a crash
//! loses the campaign. The journal is the durability core under the
//! ROADMAP's crash-safe daemon item: each state transition the drivers
//! make (attempt started, failure recorded, status set, shard merged) is
//! appended as one framed record, and a periodic [`JournalRecord::Snapshot`]
//! — the board's [`StatusBoard::canonical_json`] — bounds how much of the
//! log recovery has to replay.
//!
//! # On-disk format
//!
//! ```text
//! file   := magic frame*
//! magic  := "FAIRJNL1"                      (8 bytes)
//! frame  := len:u32le crc:u32le payload     (payload is `len` bytes)
//! ```
//!
//! `crc` is the IEEE CRC-32 of the payload bytes. The payload is one
//! compact JSON record (see [`JournalRecord`]) written by a hand-rolled
//! encoder and read back with `telemetry::jsonin`, so journals are
//! readable in the stub-only offline workspace where serde_json is
//! non-functional.
//!
//! # Torn tail vs. corruption
//!
//! A crash mid-append leaves a *torn tail*: a final frame whose header or
//! payload does not reach EOF, or whose CRC fails because only part of
//! the payload hit the disk. [`scan_bytes`] treats any such defect *that
//! touches EOF* as torn — the valid prefix is recovered and the tail
//! length reported so the caller can truncate and warn. A CRC or framing
//! defect strictly *before* the final frame cannot be produced by an
//! append crash and is reported as hard [`JournalError::Corrupt`].
//!
//! Recovery ([`recover`]) replays the last snapshot plus the record
//! suffix after it; [`recover_for_append`] additionally truncates the
//! torn tail so the journal is append-clean again.

use std::collections::BTreeSet;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use crate::status::{push_json_string, RunStatus, StatusBoard};

/// The 8-byte file magic every journal starts with.
pub const JOURNAL_MAGIC: &[u8; 8] = b"FAIRJNL1";

/// Frame header size: `len:u32le` + `crc:u32le`.
const FRAME_HEADER: u64 = 8;

/// Upper bound on one record's payload. A frame claiming more than this
/// is treated as corruption even if the bytes are present — a flipped
/// length byte must not make the reader swallow the rest of the log as
/// one giant "record".
const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

// The CRC-32 lives in `telemetry::framing` so the journal and the live
// telemetry stream (`telemetry::stream`) can never drift apart; the
// symbol is re-exported here for API compatibility.
pub use telemetry::framing::crc32;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a journal could not be written, read, or replayed.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The log is damaged somewhere a crash cannot explain: bad magic,
    /// an oversized frame, or a CRC failure strictly before the final
    /// frame. Recovery refuses to guess past this point.
    Corrupt {
        /// Byte offset of the damaged frame (or 0 for the header).
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// A frame passed its CRC but its payload is not a valid record —
    /// a writer bug or a semantic schema mismatch, not bit rot.
    BadRecord {
        /// Byte offset of the offending frame.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// During a journaled resume, the deterministic re-simulation
    /// produced a record stream that disagrees with what the durable
    /// journal says happened — the campaign inputs (manifest, seeds,
    /// policy) no longer match the journal.
    Diverged {
        /// Index of the first disagreeing record.
        record: u64,
        /// What disagreed.
        detail: String,
    },
    /// A [`CrashPoint`] fired: the writer stopped mid-frame to simulate
    /// a crash at a configured journal offset.
    CrashInjected {
        /// Journal length (bytes) at which the simulated crash hit.
        offset: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { offset, detail } => {
                write!(f, "journal corrupt at byte {offset}: {detail}")
            }
            JournalError::BadRecord { offset, detail } => {
                write!(f, "journal record at byte {offset} is invalid: {detail}")
            }
            JournalError::Diverged { record, detail } => {
                write!(
                    f,
                    "journal diverged from re-simulation at record {record}: {detail}"
                )
            }
            JournalError::CrashInjected { offset } => {
                write!(f, "injected crash at journal offset {offset}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// One durable StatusBoard mutation (or marker), the unit the journal
/// frames. Records carry everything needed to re-apply the mutation to a
/// board; markers ([`JournalRecord::Epoch`], [`JournalRecord::Complete`])
/// carry progress metadata the resume path validates against.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A full board snapshot (the compaction point): recovery replays
    /// from the *last* snapshot, everything before it is dead weight.
    Snapshot {
        /// The complete board at the time of the snapshot.
        board: StatusBoard,
    },
    /// One run's lifecycle state changed.
    Status {
        /// Run id.
        run: String,
        /// New state.
        status: RunStatus,
    },
    /// One more attempt of a run started.
    Attempt {
        /// Run id.
        run: String,
    },
    /// A run failed (state → `Failed`, failure count +1, cause recorded).
    Failure {
        /// Run id.
        run: String,
        /// Machine-readable failure cause.
        cause: String,
    },
    /// A run's telemetry pointer was recorded.
    TelemetryRef {
        /// Run id.
        run: String,
        /// `<artifact>#<track>` pointer.
        reference: String,
    },
    /// A run's digest pointer was recorded.
    DigestRef {
        /// Run id.
        run: String,
        /// `digest#<key>` pointer.
        reference: String,
    },
    /// Marker: one driver epoch (allocation) finished. Carries enough
    /// progress metadata for a resume to validate it is replaying the
    /// same campaign.
    Epoch {
        /// Zero-based allocation index.
        index: u64,
        /// Simulated clock (µs) when the allocation ended.
        now_us: u64,
        /// Runs completed in this allocation.
        completed: u64,
        /// Runs timed out in this allocation.
        timed_out: u64,
    },
    /// A parallel shard's final sub-board was merged, in plan order.
    ShardMerged {
        /// Shard index in the schedule plan.
        shard: u64,
        /// The shard's final sub-board.
        board: StatusBoard,
    },
    /// Marker: the campaign driver ran to completion; the journal is
    /// final.
    Complete,
}

fn push_field(out: &mut String, key: &str, value: &str) {
    out.push(',');
    push_json_string(out, key);
    out.push(':');
    push_json_string(out, value);
}

fn push_num_field(out: &mut String, key: &str, value: u64) {
    out.push(',');
    push_json_string(out, key);
    out.push(':');
    out.push_str(&value.to_string());
}

/// Embeds a board as a raw nested JSON object (`"key":{...}`) — its
/// canonical form is already JSON, so re-escaping it into a string field
/// would double the encoding cost of every snapshot.
fn push_board_field(out: &mut String, key: &str, board: &StatusBoard) {
    out.push(',');
    push_json_string(out, key);
    out.push(':');
    board.canonical_json_into(out);
}

impl JournalRecord {
    /// Encodes the record as its compact JSON payload. Byte-deterministic
    /// (fixed field order, canonical escaping), which is what lets the
    /// resume path compare re-derived records against durable ones and
    /// the framing goldens stay byte-stable.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    /// Appends the encoded payload to `out` without allocating a fresh
    /// string — the writer's hot path reuses one scratch buffer across
    /// every append.
    pub fn encode_into(&self, out: &mut String) {
        out.push_str("{\"t\":");
        match self {
            JournalRecord::Snapshot { board } => {
                out.push_str("\"snapshot\"");
                push_board_field(out, "board", board);
            }
            JournalRecord::Status { run, status } => {
                out.push_str("\"status\"");
                push_field(out, "run", run);
                push_field(out, "status", status.as_str());
            }
            JournalRecord::Attempt { run } => {
                out.push_str("\"attempt\"");
                push_field(out, "run", run);
            }
            JournalRecord::Failure { run, cause } => {
                out.push_str("\"failure\"");
                push_field(out, "run", run);
                push_field(out, "cause", cause);
            }
            JournalRecord::TelemetryRef { run, reference } => {
                out.push_str("\"telemetry_ref\"");
                push_field(out, "run", run);
                push_field(out, "ref", reference);
            }
            JournalRecord::DigestRef { run, reference } => {
                out.push_str("\"digest_ref\"");
                push_field(out, "run", run);
                push_field(out, "ref", reference);
            }
            JournalRecord::Epoch {
                index,
                now_us,
                completed,
                timed_out,
            } => {
                out.push_str("\"epoch\"");
                push_num_field(out, "index", *index);
                push_num_field(out, "now_us", *now_us);
                push_num_field(out, "completed", *completed);
                push_num_field(out, "timed_out", *timed_out);
            }
            JournalRecord::ShardMerged { shard, board } => {
                out.push_str("\"shard_merged\"");
                push_num_field(out, "shard", *shard);
                push_board_field(out, "board", board);
            }
            JournalRecord::Complete => out.push_str("\"complete\""),
        }
        out.push('}');
    }

    /// Decodes one payload. Inverse of [`JournalRecord::encode`]; strict
    /// about the tag, required fields, and nested board validity.
    pub fn decode(payload: &str) -> Result<Self, String> {
        let value = telemetry::jsonin::parse(payload)?;
        let tag = value
            .get("t")
            .and_then(|t| t.as_str())
            .ok_or_else(|| "record has no \"t\" tag".to_string())?;
        let text = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("{tag} record: missing string field {key:?}"))
        };
        let num = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(telemetry::jsonin::Value::as_u64)
                .ok_or_else(|| format!("{tag} record: missing integer field {key:?}"))
        };
        let board = |key: &str| -> Result<StatusBoard, String> {
            let nested = value
                .get(key)
                .ok_or_else(|| format!("{tag} record: missing field {key:?}"))?;
            StatusBoard::from_json_value(nested)
        };
        match tag {
            "snapshot" => Ok(JournalRecord::Snapshot {
                board: board("board")?,
            }),
            "status" => Ok(JournalRecord::Status {
                run: text("run")?,
                status: {
                    let name = text("status")?;
                    RunStatus::parse_name(&name)
                        .ok_or_else(|| format!("status record: unknown status {name:?}"))?
                },
            }),
            "attempt" => Ok(JournalRecord::Attempt { run: text("run")? }),
            "failure" => Ok(JournalRecord::Failure {
                run: text("run")?,
                cause: text("cause")?,
            }),
            "telemetry_ref" => Ok(JournalRecord::TelemetryRef {
                run: text("run")?,
                reference: text("ref")?,
            }),
            "digest_ref" => Ok(JournalRecord::DigestRef {
                run: text("run")?,
                reference: text("ref")?,
            }),
            "epoch" => Ok(JournalRecord::Epoch {
                index: num("index")?,
                now_us: num("now_us")?,
                completed: num("completed")?,
                timed_out: num("timed_out")?,
            }),
            "shard_merged" => Ok(JournalRecord::ShardMerged {
                shard: num("shard")?,
                board: board("board")?,
            }),
            "complete" => Ok(JournalRecord::Complete),
            other => Err(format!("unknown record tag {other:?}")),
        }
    }

    /// Re-applies the mutation to `board`. Markers are no-ops.
    pub fn apply(&self, board: &mut StatusBoard) {
        match self {
            JournalRecord::Snapshot { board: snap } => *board = snap.clone(),
            JournalRecord::Status { run, status } => board.set(run, *status),
            JournalRecord::Attempt { run } => {
                board.record_attempt(run);
            }
            JournalRecord::Failure { run, cause } => board.record_failure(run, cause.clone()),
            JournalRecord::TelemetryRef { run, reference } => {
                board.record_telemetry_ref(run, reference.clone());
            }
            JournalRecord::DigestRef { run, reference } => {
                board.record_digest_ref(run, reference.clone());
            }
            JournalRecord::Epoch { .. } | JournalRecord::Complete => {}
            // Replay borrows the record, so the merged board is cloned
            // here; recovery is cold, the hot-path merge moves instead.
            JournalRecord::ShardMerged { board: sub, .. } => board.merge_from(sub.clone()),
        }
    }

    /// True for the records that establish a durable recovery point —
    /// [`FsyncPolicy::PerSnapshot`] syncs after these.
    pub fn is_sync_point(&self) -> bool {
        matches!(
            self,
            JournalRecord::Snapshot { .. }
                | JournalRecord::ShardMerged { .. }
                | JournalRecord::Complete
        )
    }
}

/// Computes the mutation records that turn `old` into `new` — the diff a
/// journaling driver appends after each epoch instead of a full snapshot.
///
/// The board's state is monotone under the drivers (runs are never
/// removed, counters never decrease), so the diff is: per run, the
/// attempt-count delta as [`JournalRecord::Attempt`]s, the failure-count
/// delta as [`JournalRecord::Failure`]s (which imply `Failed` state),
/// then a [`JournalRecord::Status`] only if the final state differs from
/// what the failures imply, then ref-pointer updates. Replaying the diff
/// over `old` reproduces `new` exactly — pinned by tests and, ultimately,
/// by the crash-differential harness.
pub fn diff_boards(old: &StatusBoard, new: &StatusBoard) -> Vec<JournalRecord> {
    let mut records = Vec::new();
    let runs: BTreeSet<&String> = new
        .statuses_map()
        .keys()
        .chain(new.attempts_map().keys())
        .chain(new.failures_map().keys())
        .chain(new.telemetry_refs_map().keys())
        .chain(new.digest_refs_map().keys())
        .collect();
    for run in runs {
        diff_run(old, new, run, &mut records);
    }
    records
}

/// [`diff_boards`] restricted to the given runs — the fast path for a
/// journaling driver that knows which runs an epoch touched, so the diff
/// costs O(touched) instead of O(board). `runs` may be unsorted and hold
/// duplicates; the records come out in sorted run order either way, so
/// the result is exactly [`diff_boards`]' when the boards differ only at
/// the given runs.
pub fn diff_board_runs<'a>(
    old: &StatusBoard,
    new: &StatusBoard,
    runs: impl IntoIterator<Item = &'a str>,
) -> Vec<JournalRecord> {
    let mut sorted: Vec<&str> = runs.into_iter().collect();
    sorted.sort_unstable();
    sorted.dedup();
    let mut records = Vec::new();
    for run in sorted {
        diff_run(old, new, run, &mut records);
    }
    records
}

/// The per-run diff body shared by [`diff_boards`] and
/// [`diff_board_runs`].
fn diff_run(old: &StatusBoard, new: &StatusBoard, run: &str, records: &mut Vec<JournalRecord>) {
    let old_attempts = old.attempts_map().get(run).copied().unwrap_or(0);
    let new_attempts = new.attempts_map().get(run).copied().unwrap_or(0);
    for _ in old_attempts..new_attempts {
        records.push(JournalRecord::Attempt {
            run: run.to_string(),
        });
    }

    let old_failures = old.failures_map().get(run).copied().unwrap_or(0);
    let new_failures = new.failures_map().get(run).copied().unwrap_or(0);
    if new_failures > old_failures {
        let cause = new.last_failure_map().get(run).cloned().unwrap_or_default();
        for _ in old_failures..new_failures {
            records.push(JournalRecord::Failure {
                run: run.to_string(),
                cause: cause.clone(),
            });
        }
    }

    // state the board is left in after the failure records replay
    let implied = if new_failures > old_failures {
        Some(RunStatus::Failed)
    } else {
        old.statuses_map().get(run).copied()
    };
    let target = new.statuses_map().get(run).copied();
    if let Some(status) = target {
        if implied != Some(status) {
            records.push(JournalRecord::Status {
                run: run.to_string(),
                status,
            });
        }
    }

    let new_ref = new.telemetry_refs_map().get(run);
    if new_ref.is_some() && new_ref != old.telemetry_refs_map().get(run) {
        if let Some(reference) = new_ref {
            records.push(JournalRecord::TelemetryRef {
                run: run.to_string(),
                reference: reference.clone(),
            });
        }
    }
    let new_digest = new.digest_refs_map().get(run);
    if new_digest.is_some() && new_digest != old.digest_refs_map().get(run) {
        if let Some(reference) = new_digest {
            records.push(JournalRecord::DigestRef {
                run: run.to_string(),
                reference: reference.clone(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// When the journal writer calls `fsync`.
///
/// The writer buffers appended frames in process and writes them
/// through at sync points, when the buffer crosses
/// [`FLUSH_THRESHOLD`] bytes, on an explicit [`JournalWriter::sync`],
/// or on drop. Syncing always flushes first, so a policy's recovery
/// points are on disk exactly when the policy promises them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never sync explicitly; appends are buffered in process and
    /// written through at recovery points and in batches, and
    /// durability rides on the OS page cache.
    Never,
    /// Sync after snapshot / shard-merge / complete records — the
    /// recommended policy: every recovery point is durable, per-record
    /// appends are not individually synced.
    PerSnapshot,
    /// Sync after every record (maximum durability, maximum cost).
    PerRecord,
}

/// A simulated crash at a configured journal offset: the writer writes
/// bytes only up to `at_bytes` of total journal length, then fails with
/// [`JournalError::CrashInjected`] — leaving a torn tail on disk exactly
/// as a real mid-append crash would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Journal length (bytes, including the magic) at which to "crash".
    pub at_bytes: u64,
}

/// Buffered appends are written through once they cross this size even
/// between sync points, bounding how much an in-process buffer can hold
/// back from the page cache.
pub const FLUSH_THRESHOLD: usize = 64 * 1024;

/// Appends framed records to a journal file, buffering frames in
/// process and writing them through at sync points, at
/// [`FLUSH_THRESHOLD`], on [`JournalWriter::sync`], or on drop.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    /// Logical journal length: bytes flushed to the file plus bytes
    /// still sitting in `buf`.
    len: u64,
    /// Frames appended but not yet written to the file.
    buf: Vec<u8>,
    /// Scratch payload buffer reused across appends.
    payload: String,
    records_appended: u64,
    fsync: FsyncPolicy,
    crash: Option<CrashPoint>,
}

impl JournalWriter {
    /// Creates (or truncates) a journal at `path` and writes the magic.
    pub fn create(path: &Path, fsync: FsyncPolicy) -> Result<Self, JournalError> {
        Self::create_with(path, fsync, None)
    }

    /// Like [`JournalWriter::create`], but with an optional crash point
    /// active from the very first byte (so even the magic can tear).
    pub fn create_with(
        path: &Path,
        fsync: FsyncPolicy,
        crash: Option<CrashPoint>,
    ) -> Result<Self, JournalError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut writer = Self {
            file,
            len: 0,
            buf: Vec::new(),
            payload: String::new(),
            records_appended: 0,
            fsync,
            crash,
        };
        writer.buffer_bytes(JOURNAL_MAGIC)?;
        writer.flush_buf()?;
        Ok(writer)
    }

    /// Installs (or clears) a crash point on an open writer.
    pub fn set_crash_point(&mut self, crash: Option<CrashPoint>) {
        self.crash = crash;
    }

    /// Total logical journal length in bytes (including the magic and
    /// any frames still buffered in process).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when nothing beyond the magic has been written.
    pub fn is_empty(&self) -> bool {
        self.len <= JOURNAL_MAGIC.len() as u64
    }

    /// Records appended through this writer.
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Appends `bytes` to the in-process buffer, tearing at the exact
    /// crash offset when a crash point is installed. Torn bytes are
    /// flushed to the file before the error returns, so the on-disk
    /// tail looks exactly like a mid-append crash.
    fn buffer_bytes(&mut self, bytes: &[u8]) -> Result<(), JournalError> {
        if let Some(crash) = self.crash {
            let room = crash.at_bytes.saturating_sub(self.len);
            if (bytes.len() as u64) > room {
                let cut = usize::try_from(room).unwrap_or(bytes.len());
                self.buf.extend_from_slice(&bytes[..cut]);
                self.len += cut as u64;
                self.flush_buf()?;
                self.file.flush()?;
                return Err(JournalError::CrashInjected { offset: self.len });
            }
        }
        self.buf.extend_from_slice(bytes);
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Writes every buffered frame through to the file.
    fn flush_buf(&mut self) -> Result<(), JournalError> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Appends one framed record, honouring the fsync policy and any
    /// installed crash point.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let mut payload = std::mem::take(&mut self.payload);
        payload.clear();
        record.encode_into(&mut payload);
        let result = self.append_payload(payload.as_bytes(), record.is_sync_point());
        self.payload = payload;
        result
    }

    fn append_payload(&mut self, bytes: &[u8], sync_point: bool) -> Result<(), JournalError> {
        if bytes.len() as u64 > u64::from(MAX_PAYLOAD) {
            return Err(JournalError::BadRecord {
                offset: self.len,
                detail: format!("payload of {} bytes exceeds MAX_PAYLOAD", bytes.len()),
            });
        }
        self.buffer_bytes(&(bytes.len() as u32).to_le_bytes())?;
        self.buffer_bytes(&crc32(bytes).to_le_bytes())?;
        self.buffer_bytes(bytes)?;
        self.records_appended += 1;
        match self.fsync {
            // Recovery points always write through to the file even
            // without fsync, so a reader sees them as soon as the
            // append returns.
            FsyncPolicy::Never => {
                if sync_point || self.buf.len() >= FLUSH_THRESHOLD {
                    self.flush_buf()?;
                }
            }
            FsyncPolicy::PerSnapshot => {
                if sync_point {
                    self.sync()?;
                } else if self.buf.len() >= FLUSH_THRESHOLD {
                    self.flush_buf()?;
                }
            }
            FsyncPolicy::PerRecord => self.sync()?,
        }
        Ok(())
    }

    /// Flushes buffered frames and forces the journal to stable
    /// storage.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.flush_buf()?;
        self.file.sync_data()?;
        Ok(())
    }

    /// End-of-campaign close-out: flushes buffered frames, and forces
    /// stable storage unless the policy is [`FsyncPolicy::Never`] —
    /// that policy promises zero fsyncs, with durability riding on the
    /// OS page cache.
    pub fn finish(&mut self) -> Result<(), JournalError> {
        match self.fsync {
            FsyncPolicy::Never => self.flush_buf(),
            FsyncPolicy::PerSnapshot | FsyncPolicy::PerRecord => self.sync(),
        }
    }
}

impl Drop for JournalWriter {
    /// Best-effort flush so cleanly dropped writers never lose
    /// buffered frames; sync-policy guarantees are unaffected because
    /// every sync point already flushed.
    fn drop(&mut self) {
        let _ = self.flush_buf();
    }
}

// ---------------------------------------------------------------------
// Reader / recovery
// ---------------------------------------------------------------------

/// The outcome of scanning a journal's bytes: the valid record prefix
/// plus how much (if anything) was torn off the tail.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalScan {
    /// Every record in the valid prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Length in bytes of the valid prefix (including the magic; 0 for
    /// an empty or header-torn file).
    pub valid_len: u64,
    /// Bytes past the valid prefix that a crash tore (0 = clean file).
    pub torn_bytes: u64,
}

/// A recovered journal: the replayed board plus everything a resume
/// needs to validate and continue it.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJournal {
    /// The board state the journal proves durable: last snapshot plus
    /// the record suffix after it.
    pub board: StatusBoard,
    /// The full valid record sequence (from the file start, snapshots
    /// included), in append order.
    pub records: Vec<JournalRecord>,
    /// Length in bytes of the valid prefix.
    pub valid_len: u64,
    /// Bytes truncated (or to truncate) as a torn tail.
    pub torn_bytes: u64,
    /// True when the final record is [`JournalRecord::Complete`]: the
    /// campaign finished and the journal is final.
    pub complete: bool,
}

/// Scans raw journal bytes into records, applying the torn-tail rules
/// documented at module level. Never panics: any input is either a valid
/// prefix + torn tail or a typed error (pinned by the corruption-fuzz
/// tests).
pub fn scan_bytes(bytes: &[u8]) -> Result<JournalScan, JournalError> {
    let magic_len = JOURNAL_MAGIC.len();
    if bytes.len() < magic_len {
        // a partial magic is a torn first write; anything else is not
        // a journal at all
        if JOURNAL_MAGIC.starts_with(bytes) {
            return Ok(JournalScan {
                records: Vec::new(),
                valid_len: 0,
                torn_bytes: bytes.len() as u64,
            });
        }
        return Err(JournalError::Corrupt {
            offset: 0,
            detail: "bad magic".to_string(),
        });
    }
    if &bytes[..magic_len] != JOURNAL_MAGIC {
        return Err(JournalError::Corrupt {
            offset: 0,
            detail: "bad magic".to_string(),
        });
    }

    let mut records = Vec::new();
    let mut offset = magic_len as u64;
    let total = bytes.len() as u64;
    while offset < total {
        let remaining = total - offset;
        if remaining < FRAME_HEADER {
            // torn frame header
            return Ok(JournalScan {
                records,
                valid_len: offset,
                torn_bytes: remaining,
            });
        }
        let at = offset as usize;
        let len_bytes: [u8; 4] = bytes[at..at + 4].try_into().unwrap_or([0; 4]);
        let crc_bytes: [u8; 4] = bytes[at + 4..at + 8].try_into().unwrap_or([0; 4]);
        let payload_len = u32::from_le_bytes(len_bytes);
        let stored_crc = u32::from_le_bytes(crc_bytes);
        if u64::from(payload_len) > remaining - FRAME_HEADER {
            // the payload does not fit in the file: torn tail
            return Ok(JournalScan {
                records,
                valid_len: offset,
                torn_bytes: remaining,
            });
        }
        if payload_len > MAX_PAYLOAD {
            return Err(JournalError::Corrupt {
                offset,
                detail: format!("frame claims {payload_len} payload bytes"),
            });
        }
        let payload_start = at + FRAME_HEADER as usize;
        let payload = &bytes[payload_start..payload_start + payload_len as usize];
        let frame_end = offset + FRAME_HEADER + u64::from(payload_len);
        if crc32(payload) != stored_crc {
            if frame_end == total {
                // last frame short on durable bytes: torn tail
                return Ok(JournalScan {
                    records,
                    valid_len: offset,
                    torn_bytes: remaining,
                });
            }
            return Err(JournalError::Corrupt {
                offset,
                detail: "CRC mismatch before the final frame".to_string(),
            });
        }
        let text = std::str::from_utf8(payload).map_err(|e| JournalError::BadRecord {
            offset,
            detail: format!("payload is not UTF-8: {e}"),
        })?;
        let record = JournalRecord::decode(text)
            .map_err(|detail| JournalError::BadRecord { offset, detail })?;
        records.push(record);
        offset = frame_end;
    }
    Ok(JournalScan {
        records,
        valid_len: offset,
        torn_bytes: 0,
    })
}

/// Replays a record sequence into a board: state from the last
/// [`JournalRecord::Snapshot`] (or an empty board), then every record
/// after it applied in order.
pub fn replay_records(records: &[JournalRecord]) -> StatusBoard {
    let base = records
        .iter()
        .rposition(|r| matches!(r, JournalRecord::Snapshot { .. }));
    let mut board = StatusBoard::default();
    let suffix = match base {
        Some(i) => &records[i..],
        None => records,
    };
    for record in suffix {
        record.apply(&mut board);
    }
    board
}

/// Reads and replays the journal at `path`: last snapshot + suffix. A
/// torn tail is reported (not an error); mid-log corruption is.
pub fn recover(path: &Path) -> Result<RecoveredJournal, JournalError> {
    let bytes = std::fs::read(path)?;
    let scan = scan_bytes(&bytes)?;
    let board = replay_records(&scan.records);
    let complete = matches!(scan.records.last(), Some(JournalRecord::Complete));
    Ok(RecoveredJournal {
        board,
        records: scan.records,
        valid_len: scan.valid_len,
        torn_bytes: scan.torn_bytes,
        complete,
    })
}

/// [`recover`], then truncates any torn tail and reopens the journal for
/// appending (rewriting the magic if even the header was torn). Returns
/// the recovery outcome plus a writer positioned at the valid end.
pub fn recover_for_append(
    path: &Path,
    fsync: FsyncPolicy,
) -> Result<(RecoveredJournal, JournalWriter), JournalError> {
    let recovered = recover(path)?;
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let mut len = recovered.valid_len;
    if recovered.torn_bytes > 0 {
        eprintln!(
            "journal {}: truncating torn tail of {} bytes at offset {}",
            path.display(),
            recovered.torn_bytes,
            recovered.valid_len
        );
    }
    file.set_len(len)?;
    if len < JOURNAL_MAGIC.len() as u64 {
        file.seek(SeekFrom::Start(0))?;
        file.write_all(JOURNAL_MAGIC)?;
        len = JOURNAL_MAGIC.len() as u64;
    } else {
        file.seek(SeekFrom::End(0))?;
    }
    let writer = JournalWriter {
        file,
        len,
        buf: Vec::new(),
        payload: String::new(),
        records_appended: 0,
        fsync,
        crash: None,
    };
    Ok((recovered, writer))
}

/// Rewrites the journal in place as magic + one snapshot of the
/// recovered board (+ the `Complete` marker when the log was final) —
/// the compaction step that drops the replayed prefix. Atomic via a
/// `.compact` sibling and rename. Returns the new length.
pub fn compact(path: &Path, fsync: FsyncPolicy) -> Result<u64, JournalError> {
    let recovered = recover(path)?;
    let tmp = path.with_extension("compact");
    let mut writer = JournalWriter::create(&tmp, fsync)?;
    writer.append(&JournalRecord::Snapshot {
        board: recovered.board,
    })?;
    if recovered.complete {
        writer.append(&JournalRecord::Complete)?;
    }
    writer.sync()?;
    let len = writer.len();
    drop(writer);
    std::fs::rename(&tmp, path)?;
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static NEXT: AtomicUsize = AtomicUsize::new(0);

    fn temp_journal(tag: &str) -> PathBuf {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "fair-journal-test-{}-{tag}-{n}.journal",
            std::process::id()
        ))
    }

    fn sample_board() -> StatusBoard {
        let mut board = StatusBoard::default();
        board.set("g/n-1", RunStatus::Done);
        board.set("g/n-2", RunStatus::Pending);
        board.record_attempt("g/n-1");
        board
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Snapshot {
                board: StatusBoard::default(),
            },
            JournalRecord::Attempt {
                run: "g/n-1".into(),
            },
            JournalRecord::Status {
                run: "g/n-1".into(),
                status: RunStatus::Done,
            },
            JournalRecord::Failure {
                run: "g/n-2".into(),
                cause: "node-crash \"x\"\n".into(),
            },
            JournalRecord::TelemetryRef {
                run: "g/n-1".into(),
                reference: "trace#3".into(),
            },
            JournalRecord::DigestRef {
                run: "g/n-1".into(),
                reference: "digest#span_us.attempt".into(),
            },
            JournalRecord::Epoch {
                index: 0,
                now_us: 1_234_567,
                completed: 1,
                timed_out: 0,
            },
            JournalRecord::Snapshot {
                board: sample_board(),
            },
            JournalRecord::ShardMerged {
                shard: 2,
                board: sample_board(),
            },
            JournalRecord::Complete,
        ]
    }

    fn write_journal(path: &Path, records: &[JournalRecord]) {
        let mut w = JournalWriter::create(path, FsyncPolicy::Never).unwrap();
        for r in records {
            w.append(r).unwrap();
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // the classic IEEE check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_encode_decode_round_trip() {
        for record in sample_records() {
            let payload = record.encode();
            let back = JournalRecord::decode(&payload).unwrap_or_else(|e| panic!("{payload}: {e}"));
            assert_eq!(back, record);
        }
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        for bad in [
            "",
            "{}",
            "[]",
            r#"{"t":"nope"}"#,
            r#"{"t":"status","run":"r"}"#,
            r#"{"t":"status","run":"r","status":"Nope"}"#,
            r#"{"t":"attempt"}"#,
            r#"{"t":"epoch","index":1}"#,
            r#"{"t":"snapshot","board":"not json"}"#,
            r#"{"t":"shard_merged","shard":-1,"board":"{}"}"#,
        ] {
            assert!(
                JournalRecord::decode(bad).is_err(),
                "{bad:?} should not decode"
            );
        }
    }

    #[test]
    fn write_then_recover_round_trips() {
        let path = temp_journal("roundtrip");
        let records = sample_records();
        write_journal(&path, &records);
        let recovered = recover(&path).unwrap();
        assert_eq!(recovered.records, records);
        assert_eq!(recovered.torn_bytes, 0);
        assert!(recovered.complete);
        // replay = last snapshot + suffix
        let mut expected = sample_board();
        expected.merge_from(sample_board());
        assert_eq!(recovered.board, expected);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_length_journal_recovers_empty() {
        let path = temp_journal("zero");
        std::fs::write(&path, b"").unwrap();
        let recovered = recover(&path).unwrap();
        assert!(recovered.records.is_empty());
        assert_eq!(recovered.board, StatusBoard::default());
        assert_eq!((recovered.valid_len, recovered.torn_bytes), (0, 0));
        assert!(!recovered.complete);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_only_journal_recovers_the_snapshot() {
        let path = temp_journal("snaponly");
        write_journal(
            &path,
            &[JournalRecord::Snapshot {
                board: sample_board(),
            }],
        );
        let recovered = recover(&path).unwrap();
        assert_eq!(recovered.board, sample_board());
        assert!(!recovered.complete);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_recovered() {
        let path = temp_journal("torn");
        let records = sample_records();
        write_journal(&path, &records);
        let clean = std::fs::read(&path).unwrap();
        // chop the final frame in half: torn tail, full prefix recovered
        let cut = clean.len() - 5;
        std::fs::write(&path, &clean[..cut]).unwrap();
        let recovered = recover(&path).unwrap();
        assert_eq!(recovered.records.len(), records.len() - 1);
        assert!(recovered.torn_bytes > 0);
        assert!(!recovered.complete);

        // recover_for_append truncates the tail and can continue
        let (_, mut writer) = recover_for_append(&path, FsyncPolicy::Never).unwrap();
        writer.append(&JournalRecord::Complete).unwrap();
        let healed = recover(&path).unwrap();
        assert_eq!(healed.torn_bytes, 0);
        assert!(healed.complete);
        assert_eq!(healed.records.len(), records.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error() {
        let path = temp_journal("midlog");
        write_journal(&path, &sample_records());
        let mut bytes = std::fs::read(&path).unwrap();
        // flip a byte well inside the first record's payload
        bytes[20] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match recover(&path) {
            Err(JournalError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_a_hard_error() {
        let path = temp_journal("magic");
        std::fs::write(&path, b"NOTAJRNL").unwrap();
        assert!(matches!(
            recover(&path),
            Err(JournalError::Corrupt { offset: 0, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_point_tears_the_tail_exactly() {
        let path = temp_journal("crash");
        let records = sample_records();
        // measure the clean length first
        write_journal(&path, &records);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // re-run with a crash 3 bytes short of the end
        let crash = CrashPoint {
            at_bytes: clean_len - 3,
        };
        let mut w = JournalWriter::create_with(&path, FsyncPolicy::Never, Some(crash)).unwrap();
        let mut failed = None;
        for r in &records {
            if let Err(e) = w.append(r) {
                failed = Some(e);
                break;
            }
        }
        assert!(
            matches!(failed, Some(JournalError::CrashInjected { .. })),
            "{failed:?}"
        );
        drop(w);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len - 3);
        let recovered = recover(&path).unwrap();
        assert_eq!(recovered.records.len(), records.len() - 1);
        assert!(recovered.torn_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_point_can_tear_the_magic() {
        let path = temp_journal("crashmagic");
        let crash = CrashPoint { at_bytes: 3 };
        assert!(matches!(
            JournalWriter::create_with(&path, FsyncPolicy::Never, Some(crash)),
            Err(JournalError::CrashInjected { offset: 3 })
        ));
        let recovered = recover(&path).unwrap();
        assert_eq!(recovered.valid_len, 0);
        assert_eq!(recovered.torn_bytes, 3);
        // recover_for_append rewrites the magic and the log is usable
        let (_, mut writer) = recover_for_append(&path, FsyncPolicy::Never).unwrap();
        writer.append(&JournalRecord::Complete).unwrap();
        assert!(recover(&path).unwrap().complete);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_drops_the_prefix_and_preserves_state() {
        let path = temp_journal("compact");
        write_journal(&path, &sample_records());
        let before = recover(&path).unwrap();
        let old_len = std::fs::metadata(&path).unwrap().len();
        let new_len = compact(&path, FsyncPolicy::Never).unwrap();
        assert!(new_len < old_len, "{new_len} vs {old_len}");
        let after = recover(&path).unwrap();
        assert_eq!(after.board, before.board);
        assert_eq!(after.complete, before.complete);
        assert_eq!(after.records.len(), 2); // snapshot + complete
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn diff_boards_replays_to_the_new_board() {
        let old = StatusBoard::default();
        let mut mid = old.clone();
        mid.record_attempt("a");
        mid.set("a", RunStatus::Done);
        mid.record_attempt("b");
        mid.record_failure("b", "hang");
        mid.record_telemetry_ref("b", "trace#1");
        let mut new = mid.clone();
        new.record_attempt("b");
        new.set("b", RunStatus::Done);
        new.record_digest_ref("b", "digest#span_us.attempt");
        new.set("c", RunStatus::TimedOut);

        for (from, to) in [(&old, &mid), (&mid, &new), (&old, &new)] {
            let mut replayed = from.clone();
            for record in diff_boards(from, to) {
                record.apply(&mut replayed);
            }
            assert_eq!(&replayed, to, "diff {from:?} -> {to:?}");
            assert_eq!(replayed.canonical_json(), to.canonical_json());
        }
        // no-op diff is empty
        assert!(diff_boards(&new, &new).is_empty());
    }

    #[test]
    fn diff_boards_emits_status_after_failures() {
        // a run that failed and was then retried to Done in the same
        // epoch needs both the failure and the final status
        let old = StatusBoard::default();
        let mut new = StatusBoard::default();
        new.record_attempt("r");
        new.record_failure("r", "crash");
        new.record_attempt("r");
        new.set("r", RunStatus::Done);
        let records = diff_boards(&old, &new);
        assert!(records
            .iter()
            .any(|r| matches!(r, JournalRecord::Failure { .. })));
        assert!(records.iter().any(|r| matches!(
            r,
            JournalRecord::Status {
                status: RunStatus::Done,
                ..
            }
        )));
        let mut replayed = old.clone();
        for r in &records {
            r.apply(&mut replayed);
        }
        assert_eq!(replayed, new);
    }
}
