//! Parameter values and sweep specifications.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single parameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ParamValue {
    /// Integer parameter.
    Int(i64),
    /// Floating-point parameter.
    Float(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-text parameter.
    Str(String),
}

impl ParamValue {
    /// Renders the value the way it appears in run ids and command lines.
    pub fn render(&self) -> String {
        match self {
            ParamValue::Int(v) => v.to_string(),
            ParamValue::Float(v) => format!("{v}"),
            ParamValue::Bool(v) => v.to_string(),
            ParamValue::Str(v) => v.clone(),
        }
    }

    /// The value as `i64` when it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` when numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ParamValue::Int(v) => Some(*v as f64),
            ParamValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` when textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}
impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}
impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_string())
    }
}
impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

/// How one parameter varies across a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepSpec {
    /// An explicit list of values.
    List(Vec<ParamValue>),
    /// Integers `start, start+step, … ≤ end` (inclusive).
    IntRange {
        /// First value.
        start: i64,
        /// Inclusive upper bound.
        end: i64,
        /// Positive step.
        step: i64,
    },
    /// Evenly spaced floats `start, start+step, … ≤ end` (inclusive, with
    /// endpoint rounding tolerance).
    FloatRange {
        /// First value.
        start: f64,
        /// Inclusive upper bound.
        end: f64,
        /// Positive step.
        step: f64,
    },
    /// Geometric series `start, start*factor, … ≤ end` (inclusive,
    /// floating point).
    LogRange {
        /// First value (positive).
        start: f64,
        /// Inclusive upper bound.
        end: f64,
        /// Factor > 1.
        factor: f64,
    },
}

/// Inclusive upper-bound check with a relative endpoint tolerance that is
/// symmetric in sign.
///
/// The old form `v <= end * (1.0 + 1e-12)` moves the bound *toward zero*
/// when `end` is negative, so a sweep ending exactly at `-1.0` silently
/// dropped its endpoint. Adding `|end| * 1e-12` widens the range on both
/// sides of zero.
fn le_with_endpoint_tolerance(v: f64, end: f64) -> bool {
    v <= end + end.abs() * 1e-12
}

impl SweepSpec {
    /// A single fixed value (a degenerate sweep).
    pub fn fixed(value: impl Into<ParamValue>) -> Self {
        SweepSpec::List(vec![value.into()])
    }

    /// A list sweep from anything convertible.
    pub fn list<T: Into<ParamValue>>(values: impl IntoIterator<Item = T>) -> Self {
        SweepSpec::List(values.into_iter().map(Into::into).collect())
    }

    /// Expands the spec into concrete values.
    ///
    /// # Panics
    /// On degenerate ranges (zero/negative step, factor ≤ 1, non-positive
    /// log start).
    pub fn expand(&self) -> Vec<ParamValue> {
        match self {
            SweepSpec::List(values) => values.clone(),
            SweepSpec::IntRange { start, end, step } => {
                assert!(*step > 0, "IntRange step must be positive");
                let mut out = Vec::new();
                let mut v = *start;
                while v <= *end {
                    out.push(ParamValue::Int(v));
                    // checked: `v += step` overflowed (and panicked in
                    // debug) for ranges ending near i64::MAX
                    match v.checked_add(*step) {
                        Some(next) => v = next,
                        None => break,
                    }
                }
                out
            }
            SweepSpec::FloatRange { start, end, step } => {
                assert!(
                    step.is_finite() && *step > 0.0,
                    "FloatRange step must be positive and finite"
                );
                assert!(
                    start.is_finite() && end.is_finite(),
                    "FloatRange bounds must be finite"
                );
                let mut out = Vec::new();
                // index-based so long sweeps don't accumulate rounding
                let mut i = 0u64;
                loop {
                    let v = start + i as f64 * step;
                    if !le_with_endpoint_tolerance(v, *end) {
                        break;
                    }
                    out.push(ParamValue::Float(v));
                    i += 1;
                }
                out
            }
            SweepSpec::LogRange { start, end, factor } => {
                assert!(*start > 0.0, "LogRange start must be positive");
                assert!(*factor > 1.0, "LogRange factor must exceed 1");
                let mut out = Vec::new();
                let mut v = *start;
                // tiny epsilon so exact endpoints survive rounding
                while le_with_endpoint_tolerance(v, *end) {
                    out.push(ParamValue::Float(v));
                    v *= factor;
                }
                out
            }
        }
    }

    /// Number of values the spec expands to.
    pub fn cardinality(&self) -> usize {
        match self {
            SweepSpec::List(values) => values.len(),
            _ => self.expand().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_forms() {
        assert_eq!(ParamValue::Int(3).render(), "3");
        assert_eq!(ParamValue::Float(0.5).render(), "0.5");
        assert_eq!(ParamValue::Bool(true).render(), "true");
        assert_eq!(ParamValue::from("x").render(), "x");
    }

    #[test]
    fn conversions() {
        assert_eq!(ParamValue::Int(3).as_float(), Some(3.0));
        assert_eq!(ParamValue::Float(2.5).as_int(), None);
        assert_eq!(ParamValue::from("s").as_str(), Some("s"));
    }

    #[test]
    fn int_range_inclusive() {
        let spec = SweepSpec::IntRange {
            start: 2,
            end: 10,
            step: 4,
        };
        assert_eq!(
            spec.expand(),
            vec![ParamValue::Int(2), ParamValue::Int(6), ParamValue::Int(10)]
        );
        assert_eq!(spec.cardinality(), 3);
    }

    #[test]
    fn int_range_single_point() {
        let spec = SweepSpec::IntRange {
            start: 5,
            end: 5,
            step: 1,
        };
        assert_eq!(spec.expand(), vec![ParamValue::Int(5)]);
    }

    #[test]
    fn log_range_hits_endpoint() {
        let spec = SweepSpec::LogRange {
            start: 1.0,
            end: 8.0,
            factor: 2.0,
        };
        let vals: Vec<f64> = spec
            .expand()
            .iter()
            .map(|v| v.as_float().unwrap())
            .collect();
        assert_eq!(vals, vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn int_range_near_i64_max_terminates() {
        // Regression: `v += step` overflowed once the cursor passed the
        // inclusive end near i64::MAX.
        let spec = SweepSpec::IntRange {
            start: i64::MAX - 2,
            end: i64::MAX,
            step: 2,
        };
        assert_eq!(
            spec.expand(),
            vec![ParamValue::Int(i64::MAX - 2), ParamValue::Int(i64::MAX)]
        );
        let spec = SweepSpec::IntRange {
            start: i64::MAX,
            end: i64::MAX,
            step: 1,
        };
        assert_eq!(spec.expand(), vec![ParamValue::Int(i64::MAX)]);
    }

    #[test]
    fn float_range_linear() {
        let spec = SweepSpec::FloatRange {
            start: 0.0,
            end: 1.0,
            step: 0.25,
        };
        let vals: Vec<f64> = spec
            .expand()
            .iter()
            .map(|v| v.as_float().unwrap())
            .collect();
        assert_eq!(vals, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn float_range_negative_end_keeps_endpoint() {
        // Regression: the asymmetric tolerance `end * (1 + 1e-12)` pulled
        // a negative bound toward zero, dropping an exactly-reached
        // endpoint like -1.0.
        let spec = SweepSpec::FloatRange {
            start: -2.0,
            end: -1.0,
            step: 0.25,
        };
        let vals: Vec<f64> = spec
            .expand()
            .iter()
            .map(|v| v.as_float().unwrap())
            .collect();
        assert_eq!(vals, vec![-2.0, -1.75, -1.5, -1.25, -1.0]);
    }

    #[test]
    fn float_range_endpoint_tolerance_is_sign_symmetric() {
        // an endpoint reached with rounding error survives on both sides
        // of zero: 0.1 is inexact in binary, so start + 2*step lands a few
        // ulps off the written endpoint
        let positive = SweepSpec::FloatRange {
            start: 0.1,
            end: 0.3,
            step: 0.1,
        };
        assert_eq!(positive.cardinality(), 3);
        let negative = SweepSpec::FloatRange {
            start: -0.3,
            end: -0.1,
            step: 0.1,
        };
        assert_eq!(negative.cardinality(), 3);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        SweepSpec::IntRange {
            start: 0,
            end: 5,
            step: 0,
        }
        .expand();
    }

    #[test]
    fn fixed_and_list_helpers() {
        assert_eq!(SweepSpec::fixed(7).cardinality(), 1);
        assert_eq!(SweepSpec::list([1, 2, 3]).cardinality(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let spec = SweepSpec::list(["a", "b"]);
        let json = serde_json::to_string(&spec).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
