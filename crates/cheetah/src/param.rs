//! Parameter values and sweep specifications.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single parameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ParamValue {
    /// Integer parameter.
    Int(i64),
    /// Floating-point parameter.
    Float(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-text parameter.
    Str(String),
}

impl ParamValue {
    /// Renders the value the way it appears in run ids and command lines.
    pub fn render(&self) -> String {
        match self {
            ParamValue::Int(v) => v.to_string(),
            ParamValue::Float(v) => format!("{v}"),
            ParamValue::Bool(v) => v.to_string(),
            ParamValue::Str(v) => v.clone(),
        }
    }

    /// The value as `i64` when it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` when numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ParamValue::Int(v) => Some(*v as f64),
            ParamValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` when textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}
impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}
impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_string())
    }
}
impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

/// How one parameter varies across a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepSpec {
    /// An explicit list of values.
    List(Vec<ParamValue>),
    /// Integers `start, start+step, … ≤ end` (inclusive).
    IntRange {
        /// First value.
        start: i64,
        /// Inclusive upper bound.
        end: i64,
        /// Positive step.
        step: i64,
    },
    /// Geometric series `start, start*factor, … ≤ end` (inclusive,
    /// floating point).
    LogRange {
        /// First value (positive).
        start: f64,
        /// Inclusive upper bound.
        end: f64,
        /// Factor > 1.
        factor: f64,
    },
}

impl SweepSpec {
    /// A single fixed value (a degenerate sweep).
    pub fn fixed(value: impl Into<ParamValue>) -> Self {
        SweepSpec::List(vec![value.into()])
    }

    /// A list sweep from anything convertible.
    pub fn list<T: Into<ParamValue>>(values: impl IntoIterator<Item = T>) -> Self {
        SweepSpec::List(values.into_iter().map(Into::into).collect())
    }

    /// Expands the spec into concrete values.
    ///
    /// # Panics
    /// On degenerate ranges (zero/negative step, factor ≤ 1, non-positive
    /// log start).
    pub fn expand(&self) -> Vec<ParamValue> {
        match self {
            SweepSpec::List(values) => values.clone(),
            SweepSpec::IntRange { start, end, step } => {
                assert!(*step > 0, "IntRange step must be positive");
                let mut out = Vec::new();
                let mut v = *start;
                while v <= *end {
                    out.push(ParamValue::Int(v));
                    v += step;
                }
                out
            }
            SweepSpec::LogRange { start, end, factor } => {
                assert!(*start > 0.0, "LogRange start must be positive");
                assert!(*factor > 1.0, "LogRange factor must exceed 1");
                let mut out = Vec::new();
                let mut v = *start;
                // tiny epsilon so exact endpoints survive rounding
                while v <= *end * (1.0 + 1e-12) {
                    out.push(ParamValue::Float(v));
                    v *= factor;
                }
                out
            }
        }
    }

    /// Number of values the spec expands to.
    pub fn cardinality(&self) -> usize {
        match self {
            SweepSpec::List(values) => values.len(),
            _ => self.expand().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_forms() {
        assert_eq!(ParamValue::Int(3).render(), "3");
        assert_eq!(ParamValue::Float(0.5).render(), "0.5");
        assert_eq!(ParamValue::Bool(true).render(), "true");
        assert_eq!(ParamValue::from("x").render(), "x");
    }

    #[test]
    fn conversions() {
        assert_eq!(ParamValue::Int(3).as_float(), Some(3.0));
        assert_eq!(ParamValue::Float(2.5).as_int(), None);
        assert_eq!(ParamValue::from("s").as_str(), Some("s"));
    }

    #[test]
    fn int_range_inclusive() {
        let spec = SweepSpec::IntRange {
            start: 2,
            end: 10,
            step: 4,
        };
        assert_eq!(
            spec.expand(),
            vec![ParamValue::Int(2), ParamValue::Int(6), ParamValue::Int(10)]
        );
        assert_eq!(spec.cardinality(), 3);
    }

    #[test]
    fn int_range_single_point() {
        let spec = SweepSpec::IntRange {
            start: 5,
            end: 5,
            step: 1,
        };
        assert_eq!(spec.expand(), vec![ParamValue::Int(5)]);
    }

    #[test]
    fn log_range_hits_endpoint() {
        let spec = SweepSpec::LogRange {
            start: 1.0,
            end: 8.0,
            factor: 2.0,
        };
        let vals: Vec<f64> = spec
            .expand()
            .iter()
            .map(|v| v.as_float().unwrap())
            .collect();
        assert_eq!(vals, vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        SweepSpec::IntRange {
            start: 0,
            end: 5,
            step: 0,
        }
        .expand();
    }

    #[test]
    fn fixed_and_list_helpers() {
        assert_eq!(SweepSpec::fixed(7).cardinality(), 1);
        assert_eq!(SweepSpec::list([1, 2, 3]).cardinality(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let spec = SweepSpec::list(["a", "b"]);
        let json = serde_json::to_string(&spec).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
