//! **Cheetah**: campaign composition (§IV).
//!
//! > "Cheetah's composition interface provides an API that allows focusing
//! > on expressing parameters across the software stack, while omitting
//! > low-level system details … The composition engine further adopts its
//! > own directory schema to represent a campaign end-point."
//!
//! A **campaign** is an ensemble study composed of one or more parameter
//! **sweeps**, grouped into **sweep groups** that carry the resource
//! envelope (nodes × walltime) they should run under — exactly the
//! Campaign/Sweep/SweepGroup model of §V-D. Cheetah's output is a JSON
//! [`manifest`] (the Cheetah↔Savanna interoperability layer) plus an
//! on-disk [`layout`] with one directory per run; execution belongs to
//! `savanna`.
//!
//! * [`param`] — parameter values and sweep specifications (lists, integer
//!   ranges, log ranges);
//! * [`sweep`] — cross-product expansion into run configurations;
//! * [`campaign`] — campaigns, sweep groups, and composition;
//! * [`manifest`] — the JSON interop schema consumed by Savanna;
//! * [`layout`] — the campaign directory schema and per-run metadata;
//! * [`status`] — run/campaign status tracking and resume support;
//! * [`journal`] — crash-safe durability: an append-only, CRC32-framed
//!   log of status mutations with snapshot compaction and torn-tail
//!   recovery;
//! * [`objective`] — §II-C codesign objectives and the result catalog
//!   ("the output of a codesign campaign is a catalog that describes the
//!   impact of different parameters on different output metrics").

#![deny(missing_docs)]

pub mod campaign;
pub mod cas;
pub mod journal;
pub mod layout;
pub mod manifest;
pub mod objective;
pub mod param;
pub mod status;
pub mod sweep;

pub use campaign::{AppDef, Campaign, SweepGroup};
pub use cas::{discard_store, fair_hash128, CasError, CasScan, CasStore, Hash128};
pub use journal::{
    CrashPoint, FsyncPolicy, JournalError, JournalRecord, JournalWriter, RecoveredJournal,
};
pub use manifest::{CampaignManifest, GroupManifest, RunManifest};
pub use objective::{Direction, MarginalImpact, Objective, ResultCatalog};
pub use param::{ParamValue, SweepSpec};
pub use status::{CampaignStatus, RunStatus};
pub use sweep::{RunConfig, Sweep};
