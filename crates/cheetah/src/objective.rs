//! Codesign objectives and the campaign result catalog (§II-C).
//!
//! "The output of a codesign campaign is a catalog that describes the
//! impact of different parameters on different output metrics. … A
//! codesign abstraction that allows declaring an *objective* of the study
//! using different metrics such as searching for optimal runtime,
//! minimizing storage space, reducing communication overhead etc. can
//! further help build high-level composition and query interfaces."
//!
//! [`ResultCatalog`] collects per-run metric maps; [`Objective`] declares
//! what "better" means for a metric; the query interface answers the two
//! questions codesign teams ask: *which configuration wins* and *what is
//! the marginal impact of each parameter*.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::manifest::CampaignManifest;
use crate::param::ParamValue;

/// What "better" means for the objective metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Smaller metric values win (runtime, storage, overhead).
    Minimize,
    /// Larger metric values win (throughput, accuracy).
    Maximize,
}

/// A declared study objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// Metric name as recorded in the catalog.
    pub metric: String,
    /// Optimization direction.
    pub direction: Direction,
}

impl Objective {
    /// Minimize a metric.
    pub fn minimize(metric: impl Into<String>) -> Self {
        Self {
            metric: metric.into(),
            direction: Direction::Minimize,
        }
    }

    /// Maximize a metric.
    pub fn maximize(metric: impl Into<String>) -> Self {
        Self {
            metric: metric.into(),
            direction: Direction::Maximize,
        }
    }

    /// True when `a` is better than `b` under this objective.
    pub fn better(&self, a: f64, b: f64) -> bool {
        match self.direction {
            Direction::Minimize => a < b,
            Direction::Maximize => a > b,
        }
    }
}

/// Per-parameter marginal impact on a metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarginalImpact {
    /// Parameter name.
    pub param: String,
    /// `(value, mean metric, runs)` per observed parameter value, in
    /// value order.
    pub by_value: Vec<(String, f64, usize)>,
    /// Spread between the best and worst value means — a quick "does this
    /// knob matter" signal.
    pub spread: f64,
}

/// The codesign result catalog: metrics recorded per run id.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResultCatalog {
    records: BTreeMap<String, BTreeMap<String, f64>>,
}

impl ResultCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one metric for one run (overwrites an earlier value).
    pub fn record(&mut self, run_id: &str, metric: &str, value: f64) {
        assert!(value.is_finite(), "metrics must be finite");
        self.records
            .entry(run_id.to_string())
            .or_default()
            .insert(metric.to_string(), value);
    }

    /// Number of runs with at least one metric.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no metrics are recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// A metric value for a run, if recorded.
    pub fn get(&self, run_id: &str, metric: &str) -> Option<f64> {
        self.records
            .get(run_id)
            .and_then(|m| m.get(metric))
            .copied()
    }

    /// The best run under an objective: `(run_id, value)`.
    pub fn best(&self, objective: &Objective) -> Option<(&str, f64)> {
        self.records
            .iter()
            .filter_map(|(id, metrics)| metrics.get(&objective.metric).map(|&v| (id.as_str(), v)))
            .reduce(|best, cand| {
                if objective.better(cand.1, best.1) {
                    cand
                } else {
                    best
                }
            })
    }

    /// All runs ranked under an objective, best first.
    pub fn ranked(&self, objective: &Objective) -> Vec<(&str, f64)> {
        let mut rows: Vec<(&str, f64)> = self
            .records
            .iter()
            .filter_map(|(id, metrics)| metrics.get(&objective.metric).map(|&v| (id.as_str(), v)))
            .collect();
        rows.sort_by(|a, b| {
            let ord = a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal);
            match objective.direction {
                Direction::Minimize => ord,
                Direction::Maximize => ord.reverse(),
            }
        });
        rows
    }

    /// Marginal impact of every swept parameter on a metric: group runs
    /// by each parameter's value and average the metric per group. Runs
    /// without the metric are skipped.
    pub fn marginal_impacts(
        &self,
        manifest: &CampaignManifest,
        metric: &str,
    ) -> Vec<MarginalImpact> {
        // parameter name → value string → (sum, count)
        let mut acc: BTreeMap<String, BTreeMap<String, (f64, usize)>> = BTreeMap::new();
        for group in &manifest.groups {
            for run in &group.runs {
                let Some(value) = self.get(&run.id, metric) else {
                    continue;
                };
                for (param, pv) in &run.params.params {
                    let slot = acc
                        .entry(param.clone())
                        .or_default()
                        .entry(render_sortable(pv))
                        .or_insert((0.0, 0));
                    slot.0 += value;
                    slot.1 += count_one();
                }
            }
        }
        acc.into_iter()
            .map(|(param, groups)| {
                let by_value: Vec<(String, f64, usize)> = groups
                    .into_iter()
                    .map(|(v, (sum, n))| (v, sum / n as f64, n))
                    .collect();
                let means: Vec<f64> = by_value.iter().map(|&(_, m, _)| m).collect();
                let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                    - means.iter().cloned().fold(f64::INFINITY, f64::min);
                MarginalImpact {
                    param,
                    by_value,
                    spread,
                }
            })
            .collect()
    }

    /// Serializes to pretty JSON (the campaign's distributable artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("catalog serializes")
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

const fn count_one() -> usize {
    1
}

/// Renders parameter values so numeric values sort numerically in the
/// by-value tables (zero-padded integers).
fn render_sortable(v: &ParamValue) -> String {
    match v {
        ParamValue::Int(i) => format!("{i:+020}"),
        other => other.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{AppDef, Campaign, SweepGroup};
    use crate::param::SweepSpec;
    use crate::sweep::Sweep;

    fn manifest() -> CampaignManifest {
        Campaign::new("codesign", "m", AppDef::new("sim", "sim.exe"))
            .with_group(SweepGroup::new(
                "g",
                Sweep::new()
                    .with("nprocs", SweepSpec::list([1i64, 2, 4]))
                    .with("agg", SweepSpec::list(["posix", "mpiio"])),
                4,
                1,
                600,
            ))
            .manifest()
            .unwrap()
    }

    fn filled_catalog(m: &CampaignManifest) -> ResultCatalog {
        let mut cat = ResultCatalog::new();
        for group in &m.groups {
            for run in &group.runs {
                let n = run.params.get("nprocs").unwrap().as_int().unwrap() as f64;
                let agg = run.params.get("agg").unwrap().as_str().unwrap();
                // runtime improves with nprocs; mpiio has a fixed edge
                let runtime = 100.0 / n + if agg == "mpiio" { 0.0 } else { 5.0 };
                cat.record(&run.id, "runtime", runtime);
                cat.record(&run.id, "storage_gb", 2.0 * n);
            }
        }
        cat
    }

    #[test]
    fn best_and_ranked() {
        let m = manifest();
        let cat = filled_catalog(&m);
        let obj = Objective::minimize("runtime");
        let (best_id, best_v) = cat.best(&obj).unwrap();
        assert!(best_id.contains("nprocs-4") && best_id.contains("agg-mpiio"));
        assert!((best_v - 25.0).abs() < 1e-9);
        let ranked = cat.ranked(&obj);
        assert_eq!(ranked.len(), 6);
        assert!(ranked.windows(2).all(|w| w[0].1 <= w[1].1));

        // opposite objective flips the winner
        let (worst_under_max, _) = cat.best(&Objective::maximize("runtime")).unwrap();
        assert!(worst_under_max.contains("nprocs-1"));
    }

    #[test]
    fn conflicting_objectives_have_different_winners() {
        let m = manifest();
        let cat = filled_catalog(&m);
        let fast = cat.best(&Objective::minimize("runtime")).unwrap().0;
        let small = cat.best(&Objective::minimize("storage_gb")).unwrap().0;
        assert!(fast.contains("nprocs-4"));
        assert!(small.contains("nprocs-1"));
    }

    #[test]
    fn marginal_impacts_identify_the_knob_that_matters() {
        let m = manifest();
        let cat = filled_catalog(&m);
        let impacts = cat.marginal_impacts(&m, "runtime");
        let nprocs = impacts.iter().find(|i| i.param == "nprocs").unwrap();
        let agg = impacts.iter().find(|i| i.param == "agg").unwrap();
        // nprocs swings runtime by 75 s, agg by only 5 s
        assert!((nprocs.spread - 75.0).abs() < 1e-9, "{:?}", nprocs);
        assert!((agg.spread - 5.0).abs() < 1e-9);
        // per-value means ordered by value, 2 runs each for nprocs values
        assert!(nprocs.by_value.iter().all(|&(_, _, n)| n == 2));
        assert!(agg.by_value.iter().all(|&(_, _, n)| n == 3));
    }

    #[test]
    fn missing_metric_runs_are_skipped() {
        let m = manifest();
        let mut cat = ResultCatalog::new();
        cat.record("g/agg-posix__nprocs-1", "runtime", 42.0);
        let impacts = cat.marginal_impacts(&m, "runtime");
        let nprocs = impacts.iter().find(|i| i.param == "nprocs").unwrap();
        assert_eq!(nprocs.by_value.len(), 1);
        assert!(cat.best(&Objective::minimize("nope")).is_none());
    }

    #[test]
    fn json_roundtrip() {
        let m = manifest();
        let cat = filled_catalog(&m);
        let back = ResultCatalog::from_json(&cat.to_json()).unwrap();
        assert_eq!(cat, back);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_metric_rejected() {
        ResultCatalog::new().record("r", "m", f64::NAN);
    }
}
