//! The Cheetah↔Savanna interoperability manifest.
//!
//! "Cheetah and Savanna communicate via an interoperability layer designed
//! to represent an abstract manifest of the campaign. This layer
//! implements a JSON schema to describe the full campaign" (§IV). The
//! structs here are that schema; `savanna` consumes them without any
//! knowledge of how they were composed.

use serde::{Deserialize, Serialize};

use crate::campaign::AppDef;
use crate::sweep::RunConfig;

/// One run in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Globally unique run id (`group/config-id`).
    pub id: String,
    /// Owning group name.
    pub group: String,
    /// The parameter assignment.
    pub params: RunConfig,
    /// Relative working directory for the run.
    pub workdir: String,
}

/// One sweep group in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupManifest {
    /// Group name.
    pub name: String,
    /// Nodes per allocation.
    pub nodes: u32,
    /// Nodes per run.
    pub per_run_nodes: u32,
    /// Walltime per allocation, seconds.
    pub walltime_secs: u64,
    /// The runs.
    pub runs: Vec<RunManifest>,
}

/// The full campaign manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Campaign name.
    pub campaign: String,
    /// Target machine.
    pub machine: String,
    /// Application definition.
    pub app: AppDef,
    /// Manifest schema version.
    pub schema_version: u32,
    /// Sweep groups.
    pub groups: Vec<GroupManifest>,
}

impl CampaignManifest {
    /// Current manifest schema version.
    pub const SCHEMA_VERSION: u32 = 1;

    /// Total runs across groups.
    pub fn total_runs(&self) -> usize {
        self.groups.iter().map(|g| g.runs.len()).sum()
    }

    /// Finds a run by id.
    pub fn find_run(&self, id: &str) -> Option<&RunManifest> {
        self.groups
            .iter()
            .flat_map(|g| g.runs.iter())
            .find(|r| r.id == id)
    }

    /// Finds a group by name.
    pub fn group(&self, name: &str) -> Option<&GroupManifest> {
        self.groups.iter().find(|g| g.name == name)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Parses from JSON, rejecting unknown schema versions.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let m: CampaignManifest = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if m.schema_version != Self::SCHEMA_VERSION {
            return Err(format!(
                "unsupported manifest schema version {} (expected {})",
                m.schema_version,
                Self::SCHEMA_VERSION
            ));
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, SweepGroup};
    use crate::param::SweepSpec;
    use crate::sweep::Sweep;

    fn manifest() -> CampaignManifest {
        Campaign::new("c", "m", AppDef::new("app", "app.exe"))
            .with_group(SweepGroup::new(
                "g1",
                Sweep::new().with("n", SweepSpec::list([1, 2])),
                4,
                1,
                600,
            ))
            .manifest()
            .unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let m = manifest();
        let back = CampaignManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn version_gate() {
        let mut m = manifest();
        m.schema_version = 99;
        let err = CampaignManifest::from_json(&m.to_json()).unwrap_err();
        assert!(err.contains("schema version"));
    }

    #[test]
    fn lookup_helpers() {
        let m = manifest();
        assert_eq!(m.total_runs(), 2);
        assert!(m.find_run("g1/n-1").is_some());
        assert!(m.find_run("g1/n-9").is_none());
        assert!(m.group("g1").is_some());
        assert!(m.group("g2").is_none());
    }
}
