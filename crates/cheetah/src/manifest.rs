//! The Cheetah↔Savanna interoperability manifest.
//!
//! "Cheetah and Savanna communicate via an interoperability layer designed
//! to represent an abstract manifest of the campaign. This layer
//! implements a JSON schema to describe the full campaign" (§IV). The
//! structs here are that schema; `savanna` consumes them without any
//! knowledge of how they were composed.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::campaign::AppDef;
use crate::sweep::RunConfig;

/// One run in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Globally unique run id (`group/config-id`).
    pub id: String,
    /// Owning group name.
    pub group: String,
    /// The parameter assignment.
    pub params: RunConfig,
    /// Relative working directory for the run.
    pub workdir: String,
}

/// One sweep group in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupManifest {
    /// Group name.
    pub name: String,
    /// Nodes per allocation.
    pub nodes: u32,
    /// Nodes per run.
    pub per_run_nodes: u32,
    /// Walltime per allocation, seconds.
    pub walltime_secs: u64,
    /// The runs.
    pub runs: Vec<RunManifest>,
}

impl GroupManifest {
    /// Parameter census: how many of the group's runs assign each
    /// parameter name. Names assigned by no run do not appear.
    pub fn param_census(&self) -> BTreeMap<&str, usize> {
        let mut census = BTreeMap::new();
        for run in &self.runs {
            for name in run.params.params.keys() {
                *census.entry(name.as_str()).or_insert(0) += 1;
            }
        }
        census
    }

    /// Parameters that take at least two distinct rendered values across
    /// the group's runs — the group's *sweep axes*. A parameter pinned to
    /// one value everywhere is configuration, not a swept dimension.
    pub fn swept_params(&self) -> BTreeSet<&str> {
        let mut values: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
        for run in &self.runs {
            for (name, value) in &run.params.params {
                values
                    .entry(name.as_str())
                    .or_default()
                    .insert(value.render());
            }
        }
        values
            .into_iter()
            .filter(|(_, v)| v.len() >= 2)
            .map(|(k, _)| k)
            .collect()
    }
}

/// The full campaign manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Campaign name.
    pub campaign: String,
    /// Target machine.
    pub machine: String,
    /// Application definition.
    pub app: AppDef,
    /// Manifest schema version.
    pub schema_version: u32,
    /// Sweep groups.
    pub groups: Vec<GroupManifest>,
}

impl CampaignManifest {
    /// Current manifest schema version.
    pub const SCHEMA_VERSION: u32 = 1;

    /// Total runs across groups.
    pub fn total_runs(&self) -> usize {
        self.groups.iter().map(|g| g.runs.len()).sum()
    }

    /// Finds a run by id.
    pub fn find_run(&self, id: &str) -> Option<&RunManifest> {
        self.groups
            .iter()
            .flat_map(|g| g.runs.iter())
            .find(|r| r.id == id)
    }

    /// Finds a group by name.
    pub fn group(&self, name: &str) -> Option<&GroupManifest> {
        self.groups.iter().find(|g| g.name == name)
    }

    /// Every parameter name assigned by at least one run, across all
    /// groups.
    pub fn assigned_params(&self) -> BTreeSet<&str> {
        self.groups
            .iter()
            .flat_map(|g| g.param_census().into_keys())
            .collect()
    }

    /// Union of every group's swept (multi-valued) parameter names — the
    /// campaign's sweep axes, the inputs a reuser must vary to reproduce
    /// the study.
    pub fn swept_params(&self) -> BTreeSet<&str> {
        self.groups.iter().flat_map(|g| g.swept_params()).collect()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Parses from JSON, rejecting unknown schema versions.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let m: CampaignManifest = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if m.schema_version != Self::SCHEMA_VERSION {
            return Err(format!(
                "unsupported manifest schema version {} (expected {})",
                m.schema_version,
                Self::SCHEMA_VERSION
            ));
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, SweepGroup};
    use crate::param::SweepSpec;
    use crate::sweep::Sweep;

    fn manifest() -> CampaignManifest {
        Campaign::new("c", "m", AppDef::new("app", "app.exe"))
            .with_group(SweepGroup::new(
                "g1",
                Sweep::new().with("n", SweepSpec::list([1, 2])),
                4,
                1,
                600,
            ))
            .manifest()
            .unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let m = manifest();
        let back = CampaignManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn version_gate() {
        let mut m = manifest();
        m.schema_version = 99;
        let err = CampaignManifest::from_json(&m.to_json()).unwrap_err();
        assert!(err.contains("schema version"));
    }

    #[test]
    fn param_flow_accessors_distinguish_swept_from_pinned() {
        // "n" sweeps over two values; "mode" is pinned to one
        let m = Campaign::new("c", "m", AppDef::new("app", "app.exe"))
            .with_group(SweepGroup::new(
                "g1",
                Sweep::new()
                    .with("n", SweepSpec::list([1, 2]))
                    .with("mode", SweepSpec::fixed("fast")),
                4,
                1,
                600,
            ))
            .manifest()
            .unwrap();
        let group = &m.groups[0];
        assert_eq!(group.param_census()["n"], 2);
        assert_eq!(group.param_census()["mode"], 2);
        assert_eq!(
            group.swept_params().into_iter().collect::<Vec<_>>(),
            vec!["n"]
        );
        assert_eq!(
            m.assigned_params().into_iter().collect::<Vec<_>>(),
            vec!["mode", "n"]
        );
        assert_eq!(m.swept_params().into_iter().collect::<Vec<_>>(), vec!["n"]);
    }

    #[test]
    fn lookup_helpers() {
        let m = manifest();
        assert_eq!(m.total_runs(), 2);
        assert!(m.find_run("g1/n-1").is_some());
        assert!(m.find_run("g1/n-9").is_none());
        assert!(m.group("g1").is_some());
        assert!(m.group("g2").is_none());
    }
}
