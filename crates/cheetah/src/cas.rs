//! Content-addressed storage for memoized campaign outputs.
//!
//! The memoization layer (ROADMAP: "Provenance graph + content-addressed
//! memoization") needs two primitives, both provided here with zero
//! external dependencies:
//!
//! * [`fair_hash128`] — a stable, hand-rolled 128-bit hash over bytes.
//!   Cache keys are `fair_hash128(canonical key document)`, so the hash
//!   must never change across releases without a deliberate schema bump:
//!   the committed key goldens in `tests/fixtures/*.keys.json` pin it.
//! * [`CasStore`] — an append-only, CRC32-framed key→value store on
//!   disk, following the durability discipline of [`crate::journal`]: a
//!   torn or corrupted tail is *dropped*, never guessed at, and opening
//!   a damaged store is total — damaged entries simply become cache
//!   misses, which the memoized drivers answer by re-executing.
//!
//! # On-disk format
//!
//! ```text
//! file  := magic frame*
//! magic := "FAIRCAS1"                        (8 bytes)
//! frame := len:u32le crc:u32le key:16 value  (len = 16 + value length)
//! ```
//!
//! `crc` is the IEEE CRC-32 ([`crate::journal::crc32`]) of the
//! `key || value` payload. Later frames for the same key win, so a store
//! can be refreshed in place by appending.
//!
//! # Corruption policy
//!
//! [`CasStore::open`] scans the file front to back and keeps every frame
//! up to the first defect; everything from the first bad byte on is
//! ignored and truncated away on the next [`CasStore::put`]. Unlike the
//! journal — where mid-log damage voids the log's replay guarantee and
//! is a hard error — a cache is *advisory*: the worst a lost entry can
//! cause is recomputation, so recovery here never refuses to open.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::journal::crc32;

/// The 8-byte file magic every CAS store starts with.
pub const CAS_MAGIC: &[u8; 8] = b"FAIRCAS1";

/// Frame header size: `len:u32le` + `crc:u32le`.
const FRAME_HEADER: usize = 8;

/// Key size inside a frame payload.
const KEY_BYTES: usize = 16;

/// Upper bound on one frame's payload (key + value). A frame claiming
/// more is treated as corruption even if the bytes are present, so a
/// flipped length byte cannot make the scanner swallow the rest of the
/// store as one giant value.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

// ---------------------------------------------------------------------
// Hash128
// ---------------------------------------------------------------------

/// A 128-bit content hash, printable as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hash128 {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl Hash128 {
    /// The 16-byte big-endian encoding (`hi` then `lo`) used in store
    /// frames.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.hi.to_be_bytes());
        out[8..].copy_from_slice(&self.lo.to_be_bytes());
        out
    }

    /// Reads a hash back from its 16-byte big-endian encoding.
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        let mut hi = [0u8; 8];
        let mut lo = [0u8; 8];
        hi.copy_from_slice(&bytes[..8]);
        lo.copy_from_slice(&bytes[8..]);
        Self {
            hi: u64::from_be_bytes(hi),
            lo: u64::from_be_bytes(lo),
        }
    }

    /// The 32-character lowercase hex rendering (the form provenance
    /// documents and key goldens carry).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the 32-character hex rendering back.
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&hex[..16], 16).ok()?;
        let lo = u64::from_str_radix(&hex[16..], 16).ok()?;
        Some(Self { hi, lo })
    }
}

impl fmt::Display for Hash128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// MurmurHash3-style x64 finalizer: full-avalanche bijection on `u64`.
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// Hashes `bytes` to a stable 128-bit value.
///
/// The construction follows MurmurHash3's x64/128 variant (two lanes of
/// multiply-rotate-xor over 16-byte blocks, a masked tail, and the
/// `fmix64` finalizer), hand-rolled so the workspace stays free of new
/// dependencies. The function is **frozen**: the committed key goldens
/// fail CI if its output ever drifts.
pub fn fair_hash128(bytes: &[u8]) -> Hash128 {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;
    let seed = 0x6661_6972u64; // "fair"
    let mut h1 = seed;
    let mut h2 = seed;
    let len = bytes.len();

    let mut chunks = bytes.chunks_exact(16);
    for block in &mut chunks {
        let mut k1 = u64::from_le_bytes(block[..8].try_into().unwrap_or([0; 8]));
        let mut k2 = u64::from_le_bytes(block[8..].try_into().unwrap_or([0; 8]));
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 = (h1 ^ k1)
            .rotate_left(27)
            .wrapping_add(h2)
            .wrapping_mul(5)
            .wrapping_add(0x52dc_e729);
        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 = (h2 ^ k2)
            .rotate_left(31)
            .wrapping_add(h1)
            .wrapping_mul(5)
            .wrapping_add(0x3849_5ab5);
    }

    let tail = chunks.remainder();
    let mut k1 = 0u64;
    let mut k2 = 0u64;
    for (i, &b) in tail.iter().enumerate() {
        if i < 8 {
            k1 |= u64::from(b) << (8 * i);
        } else {
            k2 |= u64::from(b) << (8 * (i - 8));
        }
    }
    if !tail.is_empty() {
        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    Hash128 { hi: h1, lo: h2 }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a CAS store could not be written. Reading never fails: a damaged
/// store opens as the valid prefix of itself.
#[derive(Debug)]
pub enum CasError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A value exceeds the frame size bound.
    Oversized {
        /// The offending value's length in bytes.
        len: usize,
    },
}

impl fmt::Display for CasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CasError::Io(e) => write!(f, "cas store I/O error: {e}"),
            CasError::Oversized { len } => {
                write!(
                    f,
                    "cas value of {len} bytes exceeds the {MAX_PAYLOAD}-byte frame bound"
                )
            }
        }
    }
}

impl std::error::Error for CasError {}

impl From<std::io::Error> for CasError {
    fn from(e: std::io::Error) -> Self {
        CasError::Io(e)
    }
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// What [`CasStore::open`] observed on disk, for telemetry and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CasScan {
    /// Frames accepted (including superseded duplicates).
    pub frames: usize,
    /// Bytes of the valid prefix (magic + accepted frames).
    pub valid_len: u64,
    /// Bytes ignored after the first defect (0 for a clean store).
    pub dropped_bytes: u64,
}

/// An on-disk content-addressed store: 128-bit keys to byte values.
///
/// All entries are held in memory after `open` (memoized campaign
/// outputs are small JSON documents); `put` appends one frame and keeps
/// the in-memory view in sync. See the module docs for the format and
/// corruption policy.
#[derive(Debug)]
pub struct CasStore {
    path: PathBuf,
    entries: BTreeMap<Hash128, Vec<u8>>,
    scan: CasScan,
    /// True once the on-disk file is known to equal the in-memory view
    /// (after the first successful repair-on-put or on a clean open).
    clean: bool,
    /// Append handle, opened lazily by the first `put` and kept for the
    /// store's lifetime so a campaign's worth of puts is one open.
    file: Option<std::fs::File>,
}

impl CasStore {
    /// Opens (or implicitly creates) the store at `path`.
    ///
    /// Total over arbitrary file contents: a missing file is an empty
    /// store, and any defect — bad magic, torn frame, CRC failure,
    /// oversized length — ends the scan at the last valid frame. The
    /// damaged tail is truncated away by the next [`CasStore::put`].
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, CasError> {
        let path = path.into();
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(CasError::Io(e)),
        };
        let (entries, scan) = scan_frames(&bytes);
        // An empty/missing file is not "clean": the first put must lay
        // down the magic header via the rewrite path.
        let clean = !bytes.is_empty() && scan.dropped_bytes == 0;
        Ok(Self {
            path,
            entries,
            scan,
            clean,
            file: None,
        })
    }

    /// The value stored for `key`, if any.
    pub fn get(&self, key: Hash128) -> Option<&[u8]> {
        self.entries.get(&key).map(Vec::as_slice)
    }

    /// Whether `key` has a value.
    pub fn contains(&self, key: Hash128) -> bool {
        self.entries.contains_key(&key)
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// What `open` observed on disk.
    pub fn scan(&self) -> CasScan {
        self.scan
    }

    /// Stores `value` under `key`, appending one frame.
    ///
    /// The first `put` after opening a damaged (or empty) store rewrites
    /// the file to the accepted prefix first, so appends always land on
    /// a frame boundary. The write is a plain append — no fsync: the
    /// cache is *advisory*, a power-cut's torn tail is just a future
    /// miss (the CRC scanner drops it), so per-frame durability would
    /// buy nothing and cost an fsync per memoized run. Callers that want
    /// the batch on stable storage call [`CasStore::sync`] once at the
    /// end of the campaign.
    pub fn put(&mut self, key: Hash128, value: &[u8]) -> Result<(), CasError> {
        if value.len() + KEY_BYTES > MAX_PAYLOAD as usize {
            return Err(CasError::Oversized { len: value.len() });
        }
        if !self.clean {
            self.rewrite()?;
        }
        if self.file.is_none() {
            self.file = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)?,
            );
        }
        let frame = encode_frame(key, value);
        self.file
            .as_mut()
            .expect("append handle just ensured")
            .write_all(&frame)?;
        self.scan.valid_len += frame.len() as u64;
        self.scan.frames += 1;
        self.entries.insert(key, value.to_vec());
        Ok(())
    }

    /// Flushes all appended frames to stable storage (one fsync).
    ///
    /// A no-op if nothing was put since `open`/the last sync.
    pub fn sync(&mut self) -> Result<(), CasError> {
        if let Some(file) = &mut self.file {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Rewrites the file to exactly the in-memory entries (dropping any
    /// damaged tail and superseded duplicates).
    fn rewrite(&mut self) -> Result<(), CasError> {
        let mut bytes = Vec::with_capacity(self.scan.valid_len as usize + 8);
        bytes.extend_from_slice(CAS_MAGIC);
        for (key, value) in &self.entries {
            bytes.extend_from_slice(&encode_frame(*key, value));
        }
        let tmp = self.path.with_extension("cas-rewrite");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &self.path)?;
        // any open append handle now points at the renamed-away inode
        self.file = None;
        self.scan = CasScan {
            frames: self.entries.len(),
            valid_len: bytes.len() as u64,
            dropped_bytes: 0,
        };
        self.clean = true;
        Ok(())
    }
}

/// Deletes the store file at `path` (missing file is fine) — the cache
/// equivalent of `savanna::discard_journal`.
pub fn discard_store(path: &Path) -> Result<(), CasError> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(CasError::Io(e)),
    }
}

fn encode_frame(key: Hash128, value: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(KEY_BYTES + value.len());
    payload.extend_from_slice(&key.to_bytes());
    payload.extend_from_slice(value);
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Scans raw store bytes into entries plus what was accepted/dropped.
/// Total: never panics, never errors — defects end the scan.
fn scan_frames(bytes: &[u8]) -> (BTreeMap<Hash128, Vec<u8>>, CasScan) {
    let mut entries = BTreeMap::new();
    let mut scan = CasScan::default();
    if bytes.len() < CAS_MAGIC.len() || &bytes[..CAS_MAGIC.len()] != CAS_MAGIC {
        scan.dropped_bytes = bytes.len() as u64;
        return (entries, scan);
    }
    let mut pos = CAS_MAGIC.len();
    scan.valid_len = pos as u64;
    while bytes.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len < KEY_BYTES as u32 || len > MAX_PAYLOAD {
            break;
        }
        let start = pos + FRAME_HEADER;
        let end = match start.checked_add(len as usize) {
            Some(end) if end <= bytes.len() => end,
            _ => break, // torn tail
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break;
        }
        let mut key_bytes = [0u8; KEY_BYTES];
        key_bytes.copy_from_slice(&payload[..KEY_BYTES]);
        entries.insert(
            Hash128::from_bytes(&key_bytes),
            payload[KEY_BYTES..].to_vec(),
        );
        scan.frames += 1;
        pos = end;
        scan.valid_len = pos as u64;
    }
    scan.dropped_bytes = (bytes.len() - scan.valid_len as usize) as u64;
    (entries, scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("fair-cas-{}-{tag}-{n}.cas", std::process::id()))
    }

    #[test]
    fn hash_is_stable_and_length_sensitive() {
        // frozen reference values: if these change, every committed
        // cache key golden breaks — bump the key schema instead
        assert_eq!(
            fair_hash128(b"").to_hex(),
            fair_hash128(b"").to_hex(),
            "hash must be deterministic"
        );
        assert_ne!(fair_hash128(b"a"), fair_hash128(b"b"));
        assert_ne!(fair_hash128(b"a"), fair_hash128(b"aa"));
        // tails shorter/longer than one 16-byte block both mix
        assert_ne!(fair_hash128(&[0u8; 15]), fair_hash128(&[0u8; 16]));
        assert_ne!(fair_hash128(&[0u8; 16]), fair_hash128(&[0u8; 17]));
    }

    #[test]
    fn hex_roundtrip() {
        let h = fair_hash128(b"roundtrip");
        assert_eq!(Hash128::from_hex(&h.to_hex()), Some(h));
        assert_eq!(Hash128::from_bytes(&h.to_bytes()), h);
        assert_eq!(Hash128::from_hex("zz"), None);
    }

    #[test]
    fn put_get_persist() {
        let path = scratch("roundtrip");
        let k1 = fair_hash128(b"k1");
        let k2 = fair_hash128(b"k2");
        {
            let mut store = CasStore::open(&path).expect("open");
            assert!(store.is_empty());
            store.put(k1, b"value-one").expect("put");
            store.put(k2, b"value-two").expect("put");
            assert_eq!(store.get(k1), Some(&b"value-one"[..]));
        }
        let store = CasStore::open(&path).expect("reopen");
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(k2), Some(&b"value-two"[..]));
        assert_eq!(store.scan().dropped_bytes, 0);
        discard_store(&path).expect("cleanup");
    }

    #[test]
    fn later_frames_win() {
        let path = scratch("shadow");
        let k = fair_hash128(b"k");
        let mut store = CasStore::open(&path).expect("open");
        store.put(k, b"old").expect("put");
        store.put(k, b"new").expect("put");
        drop(store);
        let store = CasStore::open(&path).expect("reopen");
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(k), Some(&b"new"[..]));
        discard_store(&path).expect("cleanup");
    }

    #[test]
    fn damaged_tail_is_dropped_and_repaired_on_put() {
        let path = scratch("tail");
        let k1 = fair_hash128(b"k1");
        let k2 = fair_hash128(b"k2");
        {
            let mut store = CasStore::open(&path).expect("open");
            store.put(k1, b"keep-me").expect("put");
            store.put(k2, b"corrupt-me").expect("put");
        }
        // flip a byte inside the second frame's payload
        let mut bytes = std::fs::read(&path).expect("read");
        let n = bytes.len();
        bytes[n - 2] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");

        let mut store = CasStore::open(&path).expect("open damaged");
        assert_eq!(store.get(k1), Some(&b"keep-me"[..]));
        assert_eq!(store.get(k2), None, "damaged entry must read as a miss");
        assert!(store.scan().dropped_bytes > 0);
        // the next put repairs the file; a reopen then sees both entries
        store.put(k2, b"repaired").expect("put after damage");
        let store = CasStore::open(&path).expect("reopen");
        assert_eq!(store.scan().dropped_bytes, 0);
        assert_eq!(store.get(k1), Some(&b"keep-me"[..]));
        assert_eq!(store.get(k2), Some(&b"repaired"[..]));
        discard_store(&path).expect("cleanup");
    }

    #[test]
    fn garbage_file_opens_empty() {
        let path = scratch("garbage");
        std::fs::write(&path, b"definitely not a cas store").expect("write");
        let store = CasStore::open(&path).expect("open");
        assert!(store.is_empty());
        assert!(store.scan().dropped_bytes > 0);
        discard_store(&path).expect("cleanup");
    }
}
