//! Campaigns and sweep groups.

use serde::{Deserialize, Serialize};

use crate::manifest::{CampaignManifest, GroupManifest, RunManifest};
use crate::sweep::{RunConfig, Sweep};

/// The science application a campaign drives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppDef {
    /// Application name.
    pub name: String,
    /// Executable (or logical task name for in-process executors).
    pub executable: String,
}

impl AppDef {
    /// Creates an application definition.
    pub fn new(name: impl Into<String>, executable: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            executable: executable.into(),
        }
    }
}

/// A group of sweeps sharing a resource envelope. "The Campaign
/// abstraction in Cheetah allows creating a large ensemble study composed
/// of one or more parameter 'Sweeps', which may be grouped into
/// 'SweepGroups'" (§V-D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGroup {
    /// Group name (unique within the campaign).
    pub name: String,
    /// The sweeps; the group's runs are the concatenation of each sweep's
    /// expansion.
    pub sweeps: Vec<Sweep>,
    /// Nodes the group requests per allocation.
    pub nodes: u32,
    /// Nodes each individual run occupies.
    pub per_run_nodes: u32,
    /// Walltime per allocation, seconds.
    pub walltime_secs: u64,
}

impl SweepGroup {
    /// Creates a group with a single sweep.
    pub fn new(
        name: impl Into<String>,
        sweep: Sweep,
        nodes: u32,
        per_run_nodes: u32,
        walltime_secs: u64,
    ) -> Self {
        Self {
            name: name.into(),
            sweeps: vec![sweep],
            nodes,
            per_run_nodes,
            walltime_secs,
        }
    }

    /// All run configurations in the group, sweep by sweep.
    pub fn runs(&self) -> Vec<RunConfig> {
        self.sweeps.iter().flat_map(Sweep::expand).collect()
    }

    /// Number of runs.
    pub fn cardinality(&self) -> usize {
        self.sweeps.iter().map(Sweep::cardinality).sum()
    }

    /// Validates resource sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("sweep group needs a name".into());
        }
        if self.nodes == 0 || self.per_run_nodes == 0 {
            return Err(format!(
                "group {:?}: node counts must be positive",
                self.name
            ));
        }
        if self.per_run_nodes > self.nodes {
            return Err(format!(
                "group {:?}: per-run nodes ({}) exceed group nodes ({})",
                self.name, self.per_run_nodes, self.nodes
            ));
        }
        if self.walltime_secs == 0 {
            return Err(format!("group {:?}: walltime must be positive", self.name));
        }
        Ok(())
    }
}

/// A complete codesign/ensemble campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Campaign name.
    pub name: String,
    /// Target machine name (informational; execution binds it).
    pub machine: String,
    /// The application under study.
    pub app: AppDef,
    /// Sweep groups.
    pub groups: Vec<SweepGroup>,
}

impl Campaign {
    /// Creates an empty campaign.
    pub fn new(name: impl Into<String>, machine: impl Into<String>, app: AppDef) -> Self {
        Self {
            name: name.into(),
            machine: machine.into(),
            app,
            groups: Vec::new(),
        }
    }

    /// Adds a sweep group; builder-style.
    pub fn with_group(mut self, group: SweepGroup) -> Self {
        self.groups.push(group);
        self
    }

    /// Total runs across all groups.
    pub fn total_runs(&self) -> usize {
        self.groups.iter().map(SweepGroup::cardinality).sum()
    }

    /// Validates the whole campaign (names unique, groups sane).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("campaign needs a name".into());
        }
        let mut names: Vec<&str> = self.groups.iter().map(|g| g.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        if names.len() != before {
            return Err("sweep group names must be unique".into());
        }
        for g in &self.groups {
            g.validate()?;
        }
        Ok(())
    }

    /// Compiles the campaign into the Cheetah↔Savanna JSON manifest.
    /// Run ids are `{group}/{config-id}`; duplicate configurations within
    /// a group get a `#k` suffix so ids stay unique.
    pub fn manifest(&self) -> Result<CampaignManifest, String> {
        self.validate()?;
        let groups = self
            .groups
            .iter()
            .map(|g| {
                let mut seen = std::collections::BTreeMap::new();
                let runs = g
                    .runs()
                    .into_iter()
                    .map(|config| {
                        let base = config.id();
                        let n = seen.entry(base.clone()).or_insert(0u32);
                        let id = if *n == 0 {
                            base.clone()
                        } else {
                            format!("{base}#{n}")
                        };
                        *n += 1;
                        let workdir = format!("{}/{}/{}", self.name, g.name, id);
                        RunManifest {
                            id: format!("{}/{}", g.name, id),
                            group: g.name.clone(),
                            params: config,
                            workdir,
                        }
                    })
                    .collect();
                GroupManifest {
                    name: g.name.clone(),
                    nodes: g.nodes,
                    per_run_nodes: g.per_run_nodes,
                    walltime_secs: g.walltime_secs,
                    runs,
                }
            })
            .collect();
        Ok(CampaignManifest {
            campaign: self.name.clone(),
            machine: self.machine.clone(),
            app: self.app.clone(),
            schema_version: CampaignManifest::SCHEMA_VERSION,
            groups,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::SweepSpec;

    fn sample_campaign() -> Campaign {
        let sweep = Sweep::new()
            .with(
                "feature",
                SweepSpec::IntRange {
                    start: 0,
                    end: 9,
                    step: 1,
                },
            )
            .with("trees", SweepSpec::fixed(100));
        Campaign::new("irf-loop", "institutional", AppDef::new("irf", "irf.exe"))
            .with_group(SweepGroup::new("features", sweep, 20, 1, 7200))
    }

    #[test]
    fn totals_and_validation() {
        let c = sample_campaign();
        assert_eq!(c.total_runs(), 10);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn duplicate_group_names_rejected() {
        let mut c = sample_campaign();
        c.groups.push(c.groups[0].clone());
        assert!(c.validate().is_err());
    }

    #[test]
    fn group_resource_validation() {
        let mut g = SweepGroup::new("g", Sweep::new(), 4, 8, 100);
        assert!(g.validate().is_err(), "per-run > group nodes");
        g.per_run_nodes = 2;
        assert!(g.validate().is_ok());
        g.nodes = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn manifest_ids_unique_and_workdirs_nested() {
        let manifest = sample_campaign().manifest().unwrap();
        assert_eq!(manifest.total_runs(), 10);
        let g = &manifest.groups[0];
        let mut ids: Vec<&String> = g.runs.iter().map(|r| &r.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 10);
        assert!(g.runs[0].workdir.starts_with("irf-loop/features/"));
    }

    #[test]
    fn duplicate_configs_get_suffixes() {
        // two identical sweeps in one group → duplicate configurations
        let sweep = Sweep::new().with("x", SweepSpec::fixed(1));
        let mut group = SweepGroup::new("g", sweep.clone(), 1, 1, 60);
        group.sweeps.push(sweep);
        let c = Campaign::new("c", "m", AppDef::new("a", "a.exe")).with_group(group);
        let manifest = c.manifest().unwrap();
        let ids: Vec<&String> = manifest.groups[0].runs.iter().map(|r| &r.id).collect();
        assert_eq!(ids, ["g/x-1", "g/x-1#1"]);
    }

    #[test]
    fn invalid_campaign_fails_manifest() {
        let c = Campaign::new("", "m", AppDef::new("a", "a"));
        assert!(c.manifest().is_err());
    }
}
