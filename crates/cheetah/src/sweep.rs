//! Cross-product sweep expansion.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::param::{ParamValue, SweepSpec};

/// One concrete run configuration: a full assignment of parameter values.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunConfig {
    /// Parameter assignments, name-ordered.
    pub params: BTreeMap<String, ParamValue>,
}

impl RunConfig {
    /// Gets a parameter by name.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.params.get(name)
    }

    /// A filesystem-safe identifier, e.g. `nprocs-4__solver-cg`.
    /// Characters outside `[A-Za-z0-9._-]` are replaced with `_`.
    pub fn id(&self) -> String {
        let sanitize = |s: &str| -> String {
            s.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        };
        self.params
            .iter()
            .map(|(k, v)| format!("{}-{}", sanitize(k), sanitize(&v.render())))
            .collect::<Vec<_>>()
            .join("__")
    }
}

/// A parameter sweep: one [`SweepSpec`] per parameter name; runs are the
/// cross product.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Sweep {
    /// Per-parameter specifications (name-ordered, so expansion order is
    /// deterministic).
    pub params: BTreeMap<String, SweepSpec>,
}

impl Sweep {
    /// Creates an empty sweep.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a parameter; builder-style.
    pub fn with(mut self, name: impl Into<String>, spec: SweepSpec) -> Self {
        self.params.insert(name.into(), spec);
        self
    }

    /// Number of run configurations in the cross product. An empty sweep
    /// has cardinality 1 (the single empty configuration).
    pub fn cardinality(&self) -> usize {
        self.params.values().map(SweepSpec::cardinality).product()
    }

    /// Expands the cross product in row-major order (last-added parameter
    /// varies fastest under name ordering).
    pub fn expand(&self) -> Vec<RunConfig> {
        let names: Vec<&String> = self.params.keys().collect();
        let values: Vec<Vec<ParamValue>> = self.params.values().map(SweepSpec::expand).collect();
        if values.iter().any(Vec::is_empty) {
            return Vec::new();
        }
        let total: usize = values.iter().map(Vec::len).product();
        let mut out = Vec::with_capacity(total);
        let mut indices = vec![0usize; names.len()];
        loop {
            let mut params = BTreeMap::new();
            for (k, name) in names.iter().enumerate() {
                params.insert((*name).clone(), values[k][indices[k]].clone());
            }
            out.push(RunConfig { params });
            // odometer increment, last dimension fastest
            let mut dim = names.len();
            loop {
                if dim == 0 {
                    return out;
                }
                dim -= 1;
                indices[dim] += 1;
                if indices[dim] < values[dim].len() {
                    break;
                }
                indices[dim] = 0;
            }
            if names.is_empty() {
                return out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sweep_is_single_empty_run() {
        let s = Sweep::new();
        assert_eq!(s.cardinality(), 1);
        let runs = s.expand();
        assert_eq!(runs.len(), 1);
        assert!(runs[0].params.is_empty());
    }

    #[test]
    fn cross_product_cardinality() {
        let s = Sweep::new()
            .with("a", SweepSpec::list([1, 2, 3]))
            .with("b", SweepSpec::list(["x", "y"]));
        assert_eq!(s.cardinality(), 6);
        let runs = s.expand();
        assert_eq!(runs.len(), 6);
        // all unique
        let mut ids: Vec<String> = runs.iter().map(RunConfig::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn expansion_order_is_deterministic() {
        let s = Sweep::new()
            .with("b", SweepSpec::list([1, 2]))
            .with("a", SweepSpec::list(["p", "q"]));
        let runs = s.expand();
        // name order: a then b; b varies fastest
        assert_eq!(runs[0].id(), "a-p__b-1");
        assert_eq!(runs[1].id(), "a-p__b-2");
        assert_eq!(runs[2].id(), "a-q__b-1");
    }

    #[test]
    fn empty_list_spec_yields_no_runs() {
        let s = Sweep::new().with("a", SweepSpec::List(vec![]));
        assert_eq!(s.expand().len(), 0);
        assert_eq!(s.cardinality(), 0);
    }

    #[test]
    fn id_sanitizes_hostile_characters() {
        let mut params = BTreeMap::new();
        params.insert("path".to_string(), ParamValue::from("/tmp/x y"));
        let cfg = RunConfig { params };
        assert_eq!(cfg.id(), "path-_tmp_x_y");
    }

    #[test]
    fn with_replaces_existing() {
        let s = Sweep::new()
            .with("a", SweepSpec::list([1, 2, 3]))
            .with("a", SweepSpec::fixed(9));
        assert_eq!(s.cardinality(), 1);
        assert_eq!(s.expand()[0].get("a"), Some(&ParamValue::Int(9)));
    }

    #[test]
    fn serde_roundtrip() {
        let s = Sweep::new().with(
            "n",
            SweepSpec::IntRange {
                start: 1,
                end: 3,
                step: 1,
            },
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: Sweep = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
