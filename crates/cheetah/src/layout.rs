//! The campaign directory schema.
//!
//! "The directory hierarchy represents simulation runs, and campaign
//! metadata is hidden from the user" (§IV). The layout is:
//!
//! ```text
//! <root>/<campaign>/
//!   campaign-manifest.json        ← the Cheetah↔Savanna manifest
//!   .cheetah/status.json          ← hidden campaign metadata
//!   <group>/<run-id>/params.json  ← one directory per run
//! ```

use std::path::{Path, PathBuf};

use crate::manifest::CampaignManifest;
use crate::status::StatusBoard;

/// Name of the manifest file inside the campaign directory.
pub const MANIFEST_FILE: &str = "campaign-manifest.json";
/// Hidden metadata directory.
pub const META_DIR: &str = ".cheetah";
/// Status file inside [`META_DIR`].
pub const STATUS_FILE: &str = "status.json";

/// Materializes the campaign end-point under `root`: run directories,
/// per-run `params.json`, the manifest, and a fresh status board (unless
/// one already exists — re-creating a campaign must not clobber progress,
/// that is what makes resubmission safe).
///
/// Returns the campaign directory.
pub fn create_campaign_dirs(
    root: impl AsRef<Path>,
    manifest: &CampaignManifest,
) -> std::io::Result<PathBuf> {
    let campaign_dir = root.as_ref().join(&manifest.campaign);
    for group in &manifest.groups {
        for run in &group.runs {
            let run_dir = root.as_ref().join(&run.workdir);
            std::fs::create_dir_all(&run_dir)?;
            let params = serde_json::to_string_pretty(&run.params).expect("params serialize");
            std::fs::write(run_dir.join("params.json"), params)?;
        }
    }
    std::fs::create_dir_all(campaign_dir.join(META_DIR))?;
    std::fs::write(campaign_dir.join(MANIFEST_FILE), manifest.to_json())?;
    let status_path = campaign_dir.join(META_DIR).join(STATUS_FILE);
    if !status_path.exists() {
        let board = StatusBoard::for_manifest(manifest);
        save_status(&campaign_dir, &board)?;
    }
    Ok(campaign_dir)
}

/// Loads the manifest from a campaign directory.
pub fn load_manifest(campaign_dir: impl AsRef<Path>) -> std::io::Result<CampaignManifest> {
    let text = std::fs::read_to_string(campaign_dir.as_ref().join(MANIFEST_FILE))?;
    CampaignManifest::from_json(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Persists the status board into the hidden metadata directory.
pub fn save_status(campaign_dir: impl AsRef<Path>, board: &StatusBoard) -> std::io::Result<()> {
    let dir = campaign_dir.as_ref().join(META_DIR);
    std::fs::create_dir_all(&dir)?;
    let json = serde_json::to_string_pretty(board).expect("status serializes");
    std::fs::write(dir.join(STATUS_FILE), json)
}

/// Loads the status board.
pub fn load_status(campaign_dir: impl AsRef<Path>) -> std::io::Result<StatusBoard> {
    let text = std::fs::read_to_string(campaign_dir.as_ref().join(META_DIR).join(STATUS_FILE))?;
    serde_json::from_str(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Codesign result catalog file inside the campaign directory (visible,
/// not hidden — "the output of a codesign campaign is a catalog").
pub const CATALOG_FILE: &str = "result-catalog.json";

/// Persists the codesign result catalog into the campaign directory.
pub fn save_catalog(
    campaign_dir: impl AsRef<Path>,
    catalog: &crate::objective::ResultCatalog,
) -> std::io::Result<()> {
    std::fs::create_dir_all(campaign_dir.as_ref())?;
    std::fs::write(campaign_dir.as_ref().join(CATALOG_FILE), catalog.to_json())
}

/// Loads the codesign result catalog from the campaign directory.
pub fn load_catalog(
    campaign_dir: impl AsRef<Path>,
) -> std::io::Result<crate::objective::ResultCatalog> {
    let text = std::fs::read_to_string(campaign_dir.as_ref().join(CATALOG_FILE))?;
    crate::objective::ResultCatalog::from_json(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{AppDef, Campaign, SweepGroup};
    use crate::param::SweepSpec;
    use crate::status::RunStatus;
    use crate::sweep::Sweep;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cheetah-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn manifest() -> CampaignManifest {
        Campaign::new("camp", "m", AppDef::new("a", "a.exe"))
            .with_group(SweepGroup::new(
                "g",
                Sweep::new().with("n", SweepSpec::list([1, 2])),
                2,
                1,
                60,
            ))
            .manifest()
            .unwrap()
    }

    #[test]
    fn create_and_reload_roundtrip() {
        let root = tempdir("roundtrip");
        let m = manifest();
        let dir = create_campaign_dirs(&root, &m).unwrap();
        assert!(dir.join("g/n-1/params.json").exists());
        assert!(dir.join("g/n-2/params.json").exists());
        let back = load_manifest(&dir).unwrap();
        assert_eq!(m, back);
        let board = load_status(&dir).unwrap();
        assert_eq!(board.summary().pending, 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn recreation_preserves_status() {
        let root = tempdir("preserve");
        let m = manifest();
        let dir = create_campaign_dirs(&root, &m).unwrap();
        let mut board = load_status(&dir).unwrap();
        board.set("g/n-1", RunStatus::Done);
        save_status(&dir, &board).unwrap();
        // re-create (resubmission path) — must not reset the board
        create_campaign_dirs(&root, &m).unwrap();
        let board = load_status(&dir).unwrap();
        assert_eq!(board.get("g/n-1"), RunStatus::Done);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn catalog_persists_in_campaign_dir() {
        let root = tempdir("catalog");
        let m = manifest();
        let dir = create_campaign_dirs(&root, &m).unwrap();
        let mut catalog = crate::objective::ResultCatalog::new();
        catalog.record("g/n-1", "runtime", 12.5);
        save_catalog(&dir, &catalog).unwrap();
        let back = load_catalog(&dir).unwrap();
        assert_eq!(back, catalog);
        assert!(dir.join(CATALOG_FILE).exists());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn params_json_contents() {
        let root = tempdir("params");
        let m = manifest();
        let dir = create_campaign_dirs(&root, &m).unwrap();
        let text = std::fs::read_to_string(dir.join("g/n-2/params.json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["params"]["n"], 2);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
