//! Byte-level goldens for `fair-top --once --mode text`.
//!
//! The text renderer is the scriptable face of live observability: CI
//! and notebooks diff its output, so its bytes must be identical across
//! runs, builds (real and offline-stub), and PRs unless the change is
//! intentional. These tests re-run the deterministic smoke campaign
//! that `stream_overhead --smoke` streams (same manifest, durations,
//! faults, and seeds — `devtools/ci.sh` cross-checks the two against
//! the same fixture), fold the stream exactly as `fair-top --once`
//! does, and pin the text render against the committed golden
//! (`tests/fixtures/stream/smoke.top.txt`). After an *intentional*
//! render change, regenerate with `UPDATE_FIXTURES=1 cargo test --test
//! fair_top_goldens` and review the fixture diff as the review of the
//! output break.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use fair_workflows::cheetah::campaign::{AppDef, Campaign, SweepGroup};
use fair_workflows::cheetah::manifest::CampaignManifest;
use fair_workflows::cheetah::param::SweepSpec;
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::cheetah::sweep::Sweep;
use fair_workflows::hpcsim::batch::BatchJob;
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::pilot::PilotScheduler;
use fair_workflows::savanna::resilience::{FaultPlan, ResiliencePolicy};
use fair_workflows::savanna::{
    run_campaign_resilient_stream_traced, FaultSpec, SeriesSpec, StreamSpec,
};
use fair_workflows::telemetry::render::render_live;
use fair_workflows::telemetry::{read_stream, LiveModel, RenderMode, Telemetry, Theme};

/// Fixture directory: overridable so the offline CI harness can point a
/// shadow-workspace build at the real repo's fixtures.
fn fixture_dir() -> PathBuf {
    std::env::var_os("STREAM_FIXTURE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/stream"))
}

fn updating() -> bool {
    std::env::var_os("UPDATE_FIXTURES").is_some_and(|v| v == "1")
}

/// The `stream_overhead --smoke` campaign: 8 retried runs, hash-based
/// run faults only, instant allocation series — every source of
/// nondeterminism (rand backends, thread interleaving) excluded, so
/// the stream and its render are byte-stable everywhere.
fn smoke_manifest() -> CampaignManifest {
    Campaign::new("observe-smoke", "inst", AppDef::new("irf", "irf.exe"))
        .with_group(SweepGroup::new(
            "grid",
            Sweep::new().with(
                "p",
                SweepSpec::IntRange {
                    start: 0,
                    end: 7,
                    step: 1,
                },
            ),
            8,
            1,
            7200,
        ))
        .manifest()
        .expect("valid campaign")
}

/// Streams the smoke campaign to `out` and returns the stream's text
/// render — what `fair-top --once --mode text` prints for it.
fn smoke_render(out: &Path) -> String {
    let manifest = smoke_manifest();
    let durations: BTreeMap<String, SimDuration> = manifest
        .groups
        .iter()
        .flat_map(|g| g.runs.iter())
        .enumerate()
        .map(|(i, r)| (r.id.clone(), SimDuration::from_secs(900 + 150 * i as u64)))
        .collect();
    let mut series = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(2))).build(41);
    let policy = ResiliencePolicy {
        retry_budget: 3,
        backoff_base: SimDuration::from_mins(10),
        ..ResiliencePolicy::default()
    };
    let faults = FaultPlan {
        run_faults: FaultSpec::new(0.35, 23),
        node_mttf: None,
        stalls: None,
        seed: 23,
    };
    let mut board = StatusBoard::for_manifest(&manifest);
    let (tel, _rec) = Telemetry::recording();
    run_campaign_resilient_stream_traced(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        64,
        &policy,
        &faults,
        &tel,
        &StreamSpec::new(out),
    )
    .expect("smoke campaign");

    let scan = read_stream(out).expect("smoke stream scans cleanly");
    assert!(scan.complete, "smoke stream missing Complete record");
    let mut model = LiveModel::new();
    model.fold_all(&scan.records);
    render_live(&model, &Theme::for_mode(RenderMode::Text))
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fair-top-golden-{}-{tag}.stream",
        std::process::id()
    ))
}

#[test]
fn text_render_matches_the_committed_golden() {
    let golden = fixture_dir().join("smoke.top.txt");
    let path = scratch("golden");
    let rendered = smoke_render(&path);
    std::fs::remove_file(&path).ok();

    // Text mode is for pipes and diffs: no ANSI escapes, ever.
    assert!(
        !rendered.contains('\u{1b}'),
        "text render leaked ANSI escapes"
    );
    if updating() {
        std::fs::create_dir_all(fixture_dir()).expect("fixture dir");
        std::fs::write(&golden, &rendered).expect("write golden");
        eprintln!("updated {}", golden.display());
        return;
    }
    let committed = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun UPDATE_FIXTURES=1 cargo test --test fair_top_goldens to generate",
            golden.display()
        )
    });
    assert_eq!(
        rendered, committed,
        "fair-top text render drifted from the committed golden. If the \
         change is intentional, regenerate with UPDATE_FIXTURES=1 and \
         review the diff."
    );
}

#[test]
fn text_render_is_byte_stable_across_runs() {
    let (a, b) = (scratch("stable-a"), scratch("stable-b"));
    let first = smoke_render(&a);
    let second = smoke_render(&b);
    let bytes_a = std::fs::read(&a).expect("stream a");
    let bytes_b = std::fs::read(&b).expect("stream b");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
    assert_eq!(bytes_a, bytes_b, "smoke stream bytes drifted between runs");
    assert_eq!(first, second, "text render drifted between identical runs");
}

#[test]
fn render_of_a_stream_prefix_is_stable_and_incomplete() {
    // fair-top renders mid-campaign prefixes all the time; a prefix
    // fold must be deterministic too, and must not claim completion.
    let path = scratch("prefix");
    let _ = smoke_render(&path);
    let scan = read_stream(&path).expect("smoke stream scans cleanly");
    std::fs::remove_file(&path).ok();
    let prefix = &scan.records[..scan.records.len() / 2];
    let theme = Theme::for_mode(RenderMode::Text);
    let mut one = LiveModel::new();
    one.fold_all(prefix);
    let mut two = LiveModel::new();
    two.fold_all(prefix);
    let (ra, rb) = (render_live(&one, &theme), render_live(&two, &theme));
    assert_eq!(ra, rb);
    assert!(
        !ra.contains("state: complete"),
        "a prefix render must not claim the campaign completed"
    );
}
