//! Integration: the pre-execution lint gate. A statically defective
//! campaign — cyclic workflow graph, undeclared ("dead") swept parameter,
//! oversubscribed allocation — is refused by `run_campaign_sim_gated`
//! before any allocation is consumed, while a healthy campaign modeled on
//! the codesign example lints clean and executes to completion through
//! the same gate.

use std::collections::BTreeMap;

use fair_workflows::cheetah::campaign::{AppDef, Campaign, SweepGroup};
use fair_workflows::cheetah::manifest::CampaignManifest;
use fair_workflows::cheetah::param::SweepSpec;
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::cheetah::sweep::Sweep;
use fair_workflows::fair_core::component::{
    ComponentDescriptor, ComponentKind, ConfigVariable, DataDescriptor, PortDescriptor,
};
use fair_workflows::fair_core::workflow::WorkflowGraph;
use fair_workflows::fair_lint::{self, PreflightContext, Severity};
use fair_workflows::hpcsim::batch::{AllocationSeries, BatchJob};
use fair_workflows::hpcsim::cluster::ClusterSpec;
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::driver::{run_campaign_sim_gated, PreflightGate};
use fair_workflows::savanna::pilot::PilotScheduler;
use fair_workflows::savanna::shard::{run_campaign_sim_par, SeriesSpec, ShardPlan};
use fair_workflows::savanna::SavannaError;

fn comp(name: &str, inputs: &[&str], outputs: &[&str]) -> ComponentDescriptor {
    let mut c = ComponentDescriptor::new(name, "1", ComponentKind::Executable);
    for i in inputs {
        c.inputs.push(PortDescriptor {
            name: (*i).into(),
            data: DataDescriptor::default(),
        });
    }
    for o in outputs {
        c.outputs.push(PortDescriptor {
            name: (*o).into(),
            data: DataDescriptor::default(),
        });
    }
    c
}

/// The reaction-diffusion app with its declared configuration surface,
/// mirroring `examples/codesign_campaign.rs`.
fn codesign_app() -> ComponentDescriptor {
    let mut app = ComponentDescriptor::new("reaction-diffusion", "1", ComponentKind::Executable);
    for (name, ty) in [
        ("resolution", "int"),
        ("aggregation", "enum(posix|staged)"),
        ("ppn", "int"),
    ] {
        app.config.push(ConfigVariable {
            name: name.into(),
            var_type: ty.into(),
            default: None,
            description: String::new(),
            related_to: Vec::new(),
        });
    }
    app
}

fn codesign_sweep() -> Sweep {
    Sweep::new()
        .with("resolution", SweepSpec::list([64i64, 128]))
        .with("aggregation", SweepSpec::list(["posix", "staged"]))
        .with("ppn", SweepSpec::list([8i64, 16, 32]))
}

fn uniform_durations(m: &CampaignManifest, secs: u64) -> BTreeMap<String, SimDuration> {
    m.groups
        .iter()
        .flat_map(|g| g.runs.iter())
        .map(|r| (r.id.clone(), SimDuration::from_secs(secs)))
        .collect()
}

fn series(nodes: u32) -> AllocationSeries {
    AllocationSeries::new(
        BatchJob::new(nodes, SimDuration::from_hours(1)),
        SimDuration::from_mins(10),
        0.3,
        7,
    )
}

#[test]
fn gate_blocks_defective_campaign_without_consuming_allocations() {
    // Defect 1: a cyclic two-stage workflow graph.
    let mut graph = WorkflowGraph::new();
    let sim = graph.add(comp("simulate", &["feedback"], &["field"]));
    let analyze = graph.add(comp("analyze", &["field"], &["feedback"]));
    graph.connect_unchecked(sim, "field", analyze, "field");
    graph.connect_unchecked(analyze, "feedback", sim, "feedback");

    // Defect 2: the sweep assigns "trees", which the app never declares.
    let sweep = codesign_sweep().with("trees", SweepSpec::list([10i64, 100]));
    // Defect 3: the group wants 64 nodes on a 20-node machine.
    let manifest = Campaign::new(
        "io-codesign",
        "institutional",
        AppDef::new("reaction-diffusion", "rd.exe"),
    )
    .with_group(SweepGroup::new("sweep", sweep, 64, 1, 3600))
    .manifest()
    .expect("structurally valid campaign");
    let machine = ClusterSpec::institutional(20);
    let app = codesign_app();

    let context = PreflightContext {
        graph: Some(&graph),
        app: Some(&app),
        machine: Some(&machine),
        ..PreflightContext::default()
    };
    let durations = uniform_durations(&manifest, 600);
    let mut s = series(64);
    let start = s.now();
    let mut board = StatusBoard::for_manifest(&manifest);
    let total_runs = board.incomplete_runs(&manifest).len();

    let blocked = run_campaign_sim_gated(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut s,
        &mut board,
        10,
        &PreflightGate::enforce(context),
    )
    .expect_err("defective campaign must be refused");
    let blocked = match blocked {
        SavannaError::Preflight(b) => b,
        other => panic!("expected a preflight refusal, got {other:?}"),
    };

    let diags = &blocked.diagnostics;
    let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
    assert!(
        codes.contains(&"FW001"),
        "cycle error expected, got {codes:?}"
    );
    assert!(
        codes.contains(&"FW103"),
        "oversubscription error expected, got {codes:?}"
    );
    let dead = diags
        .with_code("FW101")
        .next()
        .expect("dead-parameter finding rides along");
    assert_eq!(
        dead.severity,
        Severity::Warn,
        "FW101 warns but does not block by itself"
    );
    assert!(diags.errors().count() >= 2);

    // Refusal happened strictly before execution: nothing ran, no
    // allocation was requested.
    assert_eq!(board.incomplete_runs(&manifest).len(), total_runs);
    assert_eq!(s.now(), start, "no simulated time may pass");

    let rendered = blocked.to_string();
    assert!(
        rendered.contains("refused by pre-flight lint"),
        "{rendered}"
    );
    assert!(rendered.contains("FW001"), "{rendered}");
}

#[test]
fn warnings_alone_do_not_block_launch() {
    // Same dead parameter, but resources fit and the graph is acyclic:
    // the only findings are warnings, and the gate lets the campaign run.
    let sweep = codesign_sweep().with("trees", SweepSpec::list([10i64, 100]));
    let manifest = Campaign::new(
        "io-codesign",
        "institutional",
        AppDef::new("reaction-diffusion", "rd.exe"),
    )
    .with_group(SweepGroup::new("sweep", sweep, 4, 1, 3600))
    .manifest()
    .expect("valid campaign");
    let app = codesign_app();
    let machine = ClusterSpec::institutional(20);
    let context = PreflightContext {
        app: Some(&app),
        machine: Some(&machine),
        ..PreflightContext::default()
    };

    // The dead parameter is visible to the linter…
    let diags =
        fair_lint::preflight_campaign(&manifest, None, &context, &fair_lint::LintConfig::new());
    assert!(diags.with_code("FW101").next().is_some());
    assert!(diags.is_clean(), "warnings only: {}", diags.render_text());

    // …and the gate still launches.
    let durations = uniform_durations(&manifest, 300);
    let mut board = StatusBoard::for_manifest(&manifest);
    let report = run_campaign_sim_gated(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series(4),
        &mut board,
        20,
        &PreflightGate::enforce(context),
    )
    .expect("warn-only campaign launches");
    assert!(report.is_complete());
}

#[test]
fn clean_codesign_campaign_lints_clean_and_executes() {
    // The healthy pipeline: simulate → analyze, no cycle, declared params,
    // resources inside the machine envelope.
    let mut graph = WorkflowGraph::new();
    let sim = graph.add(comp("simulate", &[], &["field"]));
    let analyze = graph.add(comp("analyze", &["field"], &[]));
    graph.connect_unchecked(sim, "field", analyze, "field");

    let manifest = Campaign::new(
        "io-codesign",
        "institutional",
        AppDef::new("reaction-diffusion", "rd.exe"),
    )
    .with_group(SweepGroup::new("sweep", codesign_sweep(), 4, 1, 3600))
    .manifest()
    .expect("valid campaign");
    let app = codesign_app();
    let machine = ClusterSpec::institutional(20);
    let context = PreflightContext {
        graph: Some(&graph),
        app: Some(&app),
        machine: Some(&machine),
        ..PreflightContext::default()
    };

    let durations = uniform_durations(&manifest, 600);
    let diags = fair_lint::preflight_campaign(
        &manifest,
        Some(&durations),
        &context,
        &fair_lint::LintConfig::new(),
    );
    assert!(
        diags.is_empty(),
        "expected a spotless lint:\n{}",
        diags.render_text()
    );
    assert_eq!(diags.to_json(), "[]");

    let mut board = StatusBoard::for_manifest(&manifest);
    let report = run_campaign_sim_gated(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series(4),
        &mut board,
        20,
        &PreflightGate::enforce(context),
    )
    .expect("clean campaign launches");
    assert!(report.is_complete());
    assert_eq!(report.completed_runs, 12, "2 × 2 × 3 sweep points");
}

#[test]
fn defective_shard_plan_is_rejected_before_any_run_executes() {
    // A deliberately colliding telemetry track-offset table: both shards
    // would merge onto lane 3 and `telemetry::merge` would interleave
    // their events. The *ungated* sharded driver must still refuse it —
    // the schedule lint (FW503) is wired into preflight, not opt-in.
    let manifest = Campaign::new(
        "io-codesign",
        "institutional",
        AppDef::new("reaction-diffusion", "rd.exe"),
    )
    .with_group(SweepGroup::new("sweep", codesign_sweep(), 4, 1, 3600))
    .manifest()
    .expect("valid campaign");
    let durations = uniform_durations(&manifest, 600);
    let mut board = StatusBoard::for_manifest(&manifest);
    let plan = ShardPlan::contiguous(manifest.total_runs(), 2).with_track_offsets(vec![3, 3]);
    let spec = SeriesSpec::instant(BatchJob::new(4, SimDuration::from_hours(2)));

    let err = run_campaign_sim_par(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &spec,
        42,
        &mut board,
        20,
        &plan,
        None,
    )
    .expect_err("colliding lanes must refuse");
    let blocked = match err {
        SavannaError::Preflight(b) => b,
        other => panic!("expected a preflight refusal, got {other:?}"),
    };
    let d = blocked
        .diagnostics
        .with_code("FW503")
        .next()
        .expect("track collision reported");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.message.contains("overlapping telemetry lanes"),
        "{}",
        d.message
    );

    // Refused strictly before execution: the board is untouched.
    assert_eq!(board.summary().pending, manifest.total_runs());

    // Dropping the bad offsets (back to packed defaults) makes the same
    // plan execute to completion.
    let plan = ShardPlan::contiguous(manifest.total_runs(), 2);
    let report = run_campaign_sim_par(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &spec,
        42,
        &mut board,
        20,
        &plan,
        None,
    )
    .expect("default offsets execute");
    assert!(report.is_complete());
}

#[test]
fn skip_gate_preserves_ungated_behavior() {
    // Fault-injection studies deliberately run defective campaigns; the
    // opt-out must behave exactly like the ungated driver.
    let manifest = Campaign::new(
        "io-codesign",
        "institutional",
        AppDef::new("reaction-diffusion", "rd.exe"),
    )
    .with_group(SweepGroup::new("sweep", codesign_sweep(), 64, 1, 3600))
    .manifest()
    .expect("valid campaign");
    let durations = uniform_durations(&manifest, 600);
    let mut board = StatusBoard::for_manifest(&manifest);
    let report = run_campaign_sim_gated(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series(64),
        &mut board,
        20,
        &PreflightGate::Skip,
    )
    .expect("skip gate never refuses");
    assert!(report.is_complete());
}
