//! Property tests for the memoization cache key (`savanna::memo`).
//!
//! The key must be *exactly* as discriminating as the run spec: any
//! field that can change simulated output changes the key (no stale
//! hits), and representation details that cannot change output — param
//! insertion order, manifest JSON round-trips, duration-map insertion
//! order — leave it untouched (no spurious misses). The third family
//! closes the loop end-to-end: after a random subset of runs is edited,
//! a warm replay hits exactly the unedited runs.

mod common;

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use common::ramp_durations;
use fair_workflows::cheetah::campaign::{AppDef, Campaign, SweepGroup};
use fair_workflows::cheetah::manifest::CampaignManifest;
use fair_workflows::cheetah::param::SweepSpec;
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::cheetah::sweep::Sweep;
use fair_workflows::hpcsim::batch::BatchJob;
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::pilot::PilotScheduler;
use fair_workflows::savanna::{run_campaign_sim_memo, MemoCampaignReport, MemoConfig, SeriesSpec};
use proptest::prelude::*;

fn scratch_store(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fair-memo-prop-{}-{tag}-{n}.cas",
        std::process::id()
    ))
}

/// One memoizable campaign configuration; every field that feeds the
/// cache key is explicit so properties can mutate them one at a time.
#[derive(Debug, Clone, PartialEq)]
struct Config {
    name: String,
    runs: i64,
    nodes: u32,
    walltime_secs: u64,
    dur_base_secs: u64,
    dur_step_secs: u64,
    campaign_seed: u64,
    max_allocations: u32,
    job_hours: u64,
}

impl Config {
    fn base() -> Self {
        Config {
            name: "prop-sweep".into(),
            runs: 3,
            nodes: 8,
            walltime_secs: 7200,
            dur_base_secs: 600,
            dur_step_secs: 180,
            campaign_seed: 41,
            max_allocations: 64,
            job_hours: 2,
        }
    }

    fn manifest(&self) -> CampaignManifest {
        Campaign::new(&self.name, "inst", AppDef::new("irf", "irf.exe"))
            .with_group(SweepGroup::new(
                "g",
                Sweep::new().with(
                    "p",
                    SweepSpec::IntRange {
                        start: 0,
                        end: self.runs - 1,
                        step: 1,
                    },
                ),
                self.nodes,
                1,
                self.walltime_secs,
            ))
            .manifest()
            .expect("valid property campaign")
    }

    fn durations(&self, manifest: &CampaignManifest) -> BTreeMap<String, SimDuration> {
        ramp_durations(manifest, self.dur_base_secs, self.dur_step_secs)
    }
}

/// Runs the config cold (fresh store, untraced serial driver) and
/// returns its memo report — the per-run cache keys.
fn cold_report_for(
    cfg: &Config,
    manifest: &CampaignManifest,
    durations: &BTreeMap<String, SimDuration>,
) -> MemoCampaignReport {
    let store = scratch_store("keys");
    let spec = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(cfg.job_hours)));
    let mut board = StatusBoard::for_manifest(manifest);
    let report = run_campaign_sim_memo(
        manifest,
        durations,
        &PilotScheduler::new(),
        &spec,
        cfg.campaign_seed,
        &mut board,
        cfg.max_allocations,
        &MemoConfig::new(&store),
    )
    .expect("property campaign runs");
    std::fs::remove_file(&store).ok();
    report
}

fn keys_of(cfg: &Config) -> Vec<(String, String)> {
    let manifest = cfg.manifest();
    let durations = cfg.durations(&manifest);
    cold_report_for(cfg, &manifest, &durations)
        .runs
        .into_iter()
        .map(|r| (r.run_id, r.key))
        .collect()
}

/// Applies one of the campaign-global single-field mutations. Every
/// branch changes a value that feeds simulated output, so every run's
/// key must change.
fn mutate(cfg: &Config, field: u8, delta: u64) -> Config {
    let mut m = cfg.clone();
    match field {
        0 => m.campaign_seed = cfg.campaign_seed.wrapping_add(delta),
        1 => m.dur_base_secs += delta,
        2 => m.walltime_secs += delta,
        3 => m.max_allocations += (delta % 100) as u32 + 1,
        4 => m.name = format!("{}-{delta}", cfg.name),
        5 => m.job_hours += delta % 5 + 1,
        _ => unreachable!("field index out of range"),
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distinct_runs_have_distinct_keys_and_global_mutations_change_them_all(
        field in 0u8..6,
        delta in 1u64..1_000,
    ) {
        let base = Config::base();
        let base_keys = keys_of(&base);
        // within one campaign no two runs may ever collide
        for (i, (_, ki)) in base_keys.iter().enumerate() {
            for (_, kj) in &base_keys[i + 1..] {
                prop_assert_ne!(ki, kj, "two runs share a cache key");
            }
        }
        let mutated = mutate(&base, field, delta);
        prop_assert_ne!(&mutated, &base, "mutation must not be the identity");
        for ((id, base_key), (mid, mutated_key)) in
            base_keys.iter().zip(keys_of(&mutated).iter())
        {
            if field != 4 {
                prop_assert_eq!(id, mid);
            }
            prop_assert_ne!(
                base_key, mutated_key,
                "field {} mutation left run {}'s key stale", field, id
            );
        }
    }

    #[test]
    fn editing_one_runs_duration_changes_only_its_key(
        which in 0usize..3,
        delta_secs in 1u64..100_000,
    ) {
        let cfg = Config::base();
        let manifest = cfg.manifest();
        let durations = cfg.durations(&manifest);
        let before = cold_report_for(&cfg, &manifest, &durations);

        let mut edited = durations.clone();
        let target = before.runs[which].run_id.clone();
        edited.insert(
            target.clone(),
            SimDuration(durations[&target].0 + delta_secs * 1_000_000),
        );
        let after = cold_report_for(&cfg, &manifest, &edited);
        for (b, a) in before.runs.iter().zip(after.runs.iter()) {
            prop_assert_eq!(&b.run_id, &a.run_id);
            if b.run_id == target {
                prop_assert_ne!(&b.key, &a.key, "edited run kept a stale key");
            } else {
                prop_assert_eq!(&b.key, &a.key, "untouched run's key drifted");
            }
        }
    }

    #[test]
    fn warm_hit_set_is_exactly_the_unedited_runs(
        mask in proptest::collection::vec(any::<bool>(), 4),
        delta_secs in 1u64..10_000,
    ) {
        let mut cfg = Config::base();
        cfg.runs = 4;
        let manifest = cfg.manifest();
        let durations = cfg.durations(&manifest);
        let store = scratch_store("hits");
        let spec = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(cfg.job_hours)));
        let run = |durs: &BTreeMap<String, SimDuration>| {
            let mut board = StatusBoard::for_manifest(&manifest);
            run_campaign_sim_memo(
                &manifest,
                durs,
                &PilotScheduler::new(),
                &spec,
                cfg.campaign_seed,
                &mut board,
                cfg.max_allocations,
                &MemoConfig::new(&store),
            )
            .expect("property campaign runs")
        };
        let cold = run(&durations);
        prop_assert_eq!(cold.executed_runs, 4);

        let mut edited = durations.clone();
        for (i, run_out) in cold.runs.iter().enumerate() {
            if mask[i] {
                edited.insert(
                    run_out.run_id.clone(),
                    SimDuration(durations[&run_out.run_id].0 + delta_secs * 1_000_000),
                );
            }
        }
        let warm = run(&edited);
        let edits = mask.iter().filter(|&&m| m).count();
        prop_assert_eq!(warm.executed_runs, edits, "misses must equal edited runs");
        prop_assert_eq!(warm.cached_runs, 4 - edits);
        for (i, run_out) in warm.runs.iter().enumerate() {
            prop_assert_eq!(
                run_out.cached, !mask[i],
                "run {} cached-state disagrees with the edit mask", run_out.run_id
            );
        }
        std::fs::remove_file(&store).ok();
    }

    #[test]
    fn keys_ignore_param_insertion_order(
        a_vals in 1i64..5,
        b_vals in 1i64..5,
    ) {
        let build = |sweep: Sweep| {
            Campaign::new("order-sweep", "inst", AppDef::new("irf", "irf.exe"))
                .with_group(SweepGroup::new("g", sweep, 8, 1, 7200))
                .manifest()
                .expect("valid campaign")
        };
        let ab = build(
            Sweep::new()
                .with("a", SweepSpec::IntRange { start: 0, end: a_vals - 1, step: 1 })
                .with("b", SweepSpec::IntRange { start: 0, end: b_vals - 1, step: 1 }),
        );
        let ba = build(
            Sweep::new()
                .with("b", SweepSpec::IntRange { start: 0, end: b_vals - 1, step: 1 })
                .with("a", SweepSpec::IntRange { start: 0, end: a_vals - 1, step: 1 }),
        );
        let cfg = Config::base();
        let durations = ramp_durations(&ab, 600, 120);
        let keys_ab = cold_report_for(&cfg, &ab, &durations);
        let keys_ba = cold_report_for(&cfg, &ba, &durations);
        for (x, y) in keys_ab.runs.iter().zip(keys_ba.runs.iter()) {
            prop_assert_eq!(&x.run_id, &y.run_id);
            prop_assert_eq!(&x.key, &y.key, "param order leaked into the key");
        }
    }
}

/// Manifest JSON round-trips must not move the key: the key hashes the
/// campaign's *content*, not its serialized representation. Skipped
/// under the offline serde stubs (which cannot round-trip manifests —
/// the same limitation the handshake tests have there).
#[test]
fn keys_survive_manifest_json_round_trips() {
    let cfg = Config::base();
    let manifest = cfg.manifest();
    let round_tripped =
        match std::panic::catch_unwind(|| CampaignManifest::from_json(&manifest.to_json())) {
            Ok(Ok(m)) => m,
            Ok(Err(e)) => panic!("manifest round-trip failed: {e}"),
            Err(_) => {
                eprintln!("skipping: serde stubs cannot round-trip manifests");
                return;
            }
        };
    let durations = cfg.durations(&manifest);
    let direct = cold_report_for(&cfg, &manifest, &durations);
    let via_json = cold_report_for(&cfg, &round_tripped, &durations);
    for (a, b) in direct.runs.iter().zip(via_json.runs.iter()) {
        assert_eq!(a.run_id, b.run_id);
        assert_eq!(a.key, b.key, "JSON round-trip moved run {}'s key", a.run_id);
    }
}
