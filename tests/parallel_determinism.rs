//! Determinism-differential harness for the sharded parallel drivers.
//!
//! Reuse claims are only credible when re-execution is verifiable — the
//! FAIR-workflow literature makes *bitwise-comparable outputs* the test
//! of reproduction. This harness establishes exactly that for the
//! parallel campaign path: for a grid of (campaign size × thread count ∈
//! {1, 2, 8} × fault injection on/off), the pooled execution of a
//! sharded plan must produce **byte-identical** `StatusBoard` canonical
//! JSON, identical `ResilienceReport`s, and byte-identical telemetry
//! exports (metrics *and* Chrome trace) compared to the serial (inline,
//! `pool = None`) execution of the same plan.
//!
//! Determinism here is the test oracle: any scheduling leak — a merge
//! order depending on completion order, a seed depending on thread
//! identity, shared mutable state between shards — shows up as a byte
//! difference at some thread count.

mod common;

use common::{grid_manifest, ramp_durations};
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::exec::ThreadPool;
use fair_workflows::hpcsim::batch::BatchJob;
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::pilot::PilotScheduler;
use fair_workflows::savanna::resilience::{
    FaultPlan, ResiliencePolicy, RestartStrategy, StallSpec,
};
use fair_workflows::savanna::{
    run_campaign_resilient_par_traced, run_campaign_sim_par_traced, FaultSpec, ParResilientReport,
    SeriesSpec, ShardPlan,
};
use fair_workflows::telemetry::{chrome_trace_json, metrics_json, Telemetry};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const CAMPAIGN_SIZES: [i64; 2] = [5, 24];
const SEED: u64 = 97;

/// Everything one execution produces, flattened to comparable bytes
/// (board serde JSON, metrics export, Chrome-trace export) plus the
/// parsed board for sanity checks.
struct Artifacts {
    board_json: String,
    metrics: String,
    trace: String,
    board: StatusBoard,
}

fn spec() -> SeriesSpec {
    // stochastic queue waits on purpose: the differential compares two
    // executions of the same build, so rand-derived values must match too
    SeriesSpec::new(
        BatchJob::new(8, SimDuration::from_hours(2)),
        SimDuration::from_mins(20),
        0.5,
    )
}

fn fault_plan() -> FaultPlan {
    FaultPlan {
        run_faults: FaultSpec::new(0.25, SEED),
        node_mttf: Some(SimDuration::from_hours(8)),
        stalls: Some(StallSpec {
            mean_between: SimDuration::from_mins(40),
            duration: SimDuration::from_mins(5),
            slowdown: 4.0,
            io_fraction: 0.25,
        }),
        seed: SEED,
    }
}

fn policy() -> ResiliencePolicy {
    ResiliencePolicy {
        retry_budget: 4,
        backoff_base: SimDuration::from_mins(5),
        restart: RestartStrategy::FromCheckpoint {
            interval: SimDuration::from_mins(10),
        },
        ..ResiliencePolicy::default()
    }
}

/// Runs the plain sharded driver and flattens its outputs.
fn run_plain(runs: i64, pool: Option<&ThreadPool>) -> (Artifacts, String) {
    let manifest = grid_manifest("det-plain", runs);
    let durations = ramp_durations(&manifest, 600, 90);
    let plan = ShardPlan::contiguous(manifest.total_runs(), 4);
    let mut board = StatusBoard::for_manifest(&manifest);
    let (tel, rec) = Telemetry::recording();
    let report = run_campaign_sim_par_traced(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &spec(),
        SEED,
        &mut board,
        64,
        &plan,
        pool,
        &tel,
    )
    .expect("durations modeled");
    let snapshot = rec.snapshot();
    (
        Artifacts {
            board_json: board.canonical_json(),
            metrics: metrics_json(&snapshot),
            trace: chrome_trace_json(&snapshot),
            board,
        },
        format!("{report:?}"),
    )
}

/// Runs the resilient sharded driver (fault injection on) and flattens
/// its outputs; the full `ParResilientReport` rides along for
/// `ResilienceReport` equality checks.
fn run_faulty(runs: i64, pool: Option<&ThreadPool>) -> (Artifacts, ParResilientReport) {
    let manifest = grid_manifest("det-faulty", runs);
    let durations = ramp_durations(&manifest, 900, 120);
    let plan = ShardPlan::contiguous(manifest.total_runs(), 4);
    let mut board = StatusBoard::for_manifest(&manifest);
    let (tel, rec) = Telemetry::recording();
    let report = run_campaign_resilient_par_traced(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &spec(),
        SEED,
        &mut board,
        64,
        &policy(),
        &fault_plan(),
        &plan,
        pool,
        &tel,
    )
    .expect("durations modeled");
    let snapshot = rec.snapshot();
    (
        Artifacts {
            board_json: board.canonical_json(),
            metrics: metrics_json(&snapshot),
            trace: chrome_trace_json(&snapshot),
            board,
        },
        report,
    )
}

fn assert_identical(label: &str, serial: &Artifacts, parallel: &Artifacts) {
    assert_eq!(
        serial.board_json, parallel.board_json,
        "{label}: StatusBoard serde JSON differs from serial"
    );
    assert_eq!(
        serial.metrics, parallel.metrics,
        "{label}: metrics export differs from serial"
    );
    assert_eq!(
        serial.trace, parallel.trace,
        "{label}: Chrome-trace export differs from serial"
    );
}

#[test]
fn plain_campaign_is_byte_identical_at_every_thread_count() {
    for &runs in &CAMPAIGN_SIZES {
        let (serial, serial_report) = run_plain(runs, None);
        assert!(
            serial.board.iter().next().is_some(),
            "serial run produced an empty board"
        );
        for &threads in &THREAD_COUNTS {
            let pool = ThreadPool::new(threads);
            let (parallel, parallel_report) = run_plain(runs, Some(&pool));
            assert_identical(
                &format!("plain runs={runs} threads={threads}"),
                &serial,
                &parallel,
            );
            assert_eq!(
                serial_report, parallel_report,
                "plain runs={runs} threads={threads}: report differs from serial"
            );
        }
    }
}

#[test]
fn faulty_campaign_is_byte_identical_at_every_thread_count() {
    for &runs in &CAMPAIGN_SIZES {
        let (serial, serial_report) = run_faulty(runs, None);
        for &threads in &THREAD_COUNTS {
            let pool = ThreadPool::new(threads);
            let (parallel, parallel_report) = run_faulty(runs, Some(&pool));
            let label = format!("faulty runs={runs} threads={threads}");
            assert_identical(&label, &serial, &parallel);
            // merged resilience accounting is PartialEq: exact equality
            assert_eq!(
                serial_report.resilience, parallel_report.resilience,
                "{label}: merged ResilienceReport differs from serial"
            );
            // per-shard resilience reports must match one-to-one too
            assert_eq!(
                serial_report.shards.len(),
                parallel_report.shards.len(),
                "{label}: shard count differs"
            );
            for (s, p) in serial_report.shards.iter().zip(&parallel_report.shards) {
                assert_eq!(s.shard, p.shard, "{label}: shard order differs");
                assert_eq!(s.run_ids, p.run_ids, "{label}: shard run sets differ");
                assert_eq!(
                    s.report.resilience, p.report.resilience,
                    "{label}: shard {} resilience differs",
                    s.shard
                );
            }
        }
    }
}

#[test]
fn thread_counts_agree_with_each_other() {
    // transitivity sanity: beyond serial-vs-parallel, every pooled pair
    // must agree (catches nondeterminism that cancels against serial)
    let runs = 24;
    let mut exports = Vec::new();
    for &threads in &THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let (artifacts, _) = run_faulty(runs, Some(&pool));
        exports.push((threads, artifacts.metrics, artifacts.board_json));
    }
    for pair in exports.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "metrics differ between {} and {} threads",
            pair[0].0, pair[1].0
        );
        assert_eq!(
            pair[0].2, pair[1].2,
            "board JSON differs between {} and {} threads",
            pair[0].0, pair[1].0
        );
    }
}

#[test]
fn repeated_parallel_runs_are_byte_identical() {
    let pool = ThreadPool::new(8);
    let (a, _) = run_faulty(24, Some(&pool));
    let (b, _) = run_faulty(24, Some(&pool));
    assert_identical("repeat threads=8", &a, &b);
}
