//! Shared helpers for the integration suite: campaign builders and the
//! golden-fixture corpus under `tests/fixtures/`.
//!
//! Three small checked-in campaigns — a plain sweep, a fault-injected
//! campaign, and a checkpoint-restart campaign — each with committed
//! expected `StatusBoard` JSON and telemetry metrics. Every fixture is
//! **rand-free**: instant allocation series (no queue-wait draws) and
//! hash-based run faults only (no node-crash or stall streams), so the
//! committed expectations hold under both the real `rand`/`serde` builds
//! and the offline stubs. Regenerate with:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test --test golden_fixtures
//! ```
//!
//! Not every integration binary that mounts this module uses every
//! helper, hence the file-level `dead_code` allow.
#![allow(dead_code)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use fair_workflows::cheetah::campaign::{AppDef, Campaign, SweepGroup};
use fair_workflows::cheetah::manifest::CampaignManifest;
use fair_workflows::cheetah::param::SweepSpec;
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::cheetah::sweep::Sweep;
use fair_workflows::exec::ThreadPool;
use fair_workflows::hpcsim::batch::BatchJob;
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::pilot::PilotScheduler;
use fair_workflows::savanna::resilience::{FaultPlan, ResiliencePolicy, RestartStrategy};
use fair_workflows::savanna::{
    run_campaign_resilient_memo_par_traced, run_campaign_resilient_par_traced,
    run_campaign_sim_memo_par_traced, run_campaign_sim_par_traced, FaultSpec, MemoCampaignReport,
    MemoConfig, SeriesSpec, ShardPlan,
};
use fair_workflows::telemetry::{metrics_json, Snapshot, Telemetry};

/// Builds a one-group sweep campaign with `runs` integer-swept runs.
pub fn grid_manifest(name: &str, runs: i64) -> CampaignManifest {
    Campaign::new(name, "inst", AppDef::new("irf", "irf.exe"))
        .with_group(SweepGroup::new(
            "grid",
            Sweep::new().with(
                "p",
                SweepSpec::IntRange {
                    start: 0,
                    end: runs - 1,
                    step: 1,
                },
            ),
            8,
            1,
            7200,
        ))
        .manifest()
        .expect("valid campaign")
}

/// Deterministic per-run durations: `base + step * index` seconds, in
/// manifest order. No RNG, so fixture expectations are build-independent.
pub fn ramp_durations(
    manifest: &CampaignManifest,
    base_secs: u64,
    step_secs: u64,
) -> BTreeMap<String, SimDuration> {
    manifest
        .groups
        .iter()
        .flat_map(|g| g.runs.iter())
        .enumerate()
        .map(|(i, r)| {
            (
                r.id.clone(),
                SimDuration::from_secs(base_secs + step_secs * i as u64),
            )
        })
        .collect()
}

/// The golden-fixture corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fixture {
    /// Plain sharded sweep, no faults: 12 runs over 3 shards.
    Sweep,
    /// Hash-based injected run errors with a retry budget: 10 runs over
    /// 2 shards (no node/stall streams — those draw from `rand`).
    Faulty,
    /// Runs longer than the allocation walltime, resumed from periodic
    /// checkpoints across allocations: 4 runs over 2 shards.
    Checkpointed,
}

impl Fixture {
    /// All fixtures, in corpus order.
    pub const ALL: [Fixture; 3] = [Fixture::Sweep, Fixture::Faulty, Fixture::Checkpointed];

    /// File-name stem under `tests/fixtures/`.
    pub fn name(self) -> &'static str {
        match self {
            Fixture::Sweep => "sweep",
            Fixture::Faulty => "faulty",
            Fixture::Checkpointed => "checkpointed",
        }
    }
}

/// Executes a fixture campaign through the sharded drivers (inline, no
/// pool unless one is given) and returns the final board plus the
/// telemetry metrics export.
pub fn run_fixture(fixture: Fixture, pool: Option<&ThreadPool>) -> (StatusBoard, String) {
    let (board, metrics, _) = run_fixture_full(fixture, pool);
    (board, metrics)
}

/// [`run_fixture`] plus the raw telemetry snapshot, for the analysis
/// layer (`fair-report`) fixtures that derive summaries, digests, and
/// folded stacks from the trace itself.
pub fn run_fixture_full(
    fixture: Fixture,
    pool: Option<&ThreadPool>,
) -> (StatusBoard, String, Snapshot) {
    let (tel, rec) = Telemetry::recording();
    let board = match fixture {
        Fixture::Sweep => {
            let manifest = grid_manifest("fixture-sweep", 12);
            let durations = ramp_durations(&manifest, 600, 180);
            let spec = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(2)));
            let plan = ShardPlan::contiguous(manifest.total_runs(), 3);
            let mut board = StatusBoard::for_manifest(&manifest);
            run_campaign_sim_par_traced(
                &manifest,
                &durations,
                &PilotScheduler::new(),
                &spec,
                41,
                &mut board,
                64,
                &plan,
                pool,
                &tel,
            )
            .expect("fixture durations modeled");
            board
        }
        Fixture::Faulty => {
            let manifest = grid_manifest("fixture-faulty", 10);
            let durations = ramp_durations(&manifest, 900, 120);
            let spec = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(2)));
            let plan = ShardPlan::contiguous(manifest.total_runs(), 2);
            let policy = ResiliencePolicy {
                retry_budget: 3,
                backoff_base: SimDuration::from_mins(10),
                ..ResiliencePolicy::default()
            };
            // hash-based run errors only: deterministic across rand builds
            let faults = FaultPlan {
                run_faults: FaultSpec::new(0.35, 23),
                node_mttf: None,
                stalls: None,
                seed: 23,
            };
            let mut board = StatusBoard::for_manifest(&manifest);
            run_campaign_resilient_par_traced(
                &manifest,
                &durations,
                &PilotScheduler::new(),
                &spec,
                41,
                &mut board,
                64,
                &policy,
                &faults,
                &plan,
                pool,
                &tel,
            )
            .expect("fixture durations modeled");
            board
        }
        Fixture::Checkpointed => {
            let manifest = grid_manifest("fixture-checkpointed", 4);
            // 3h+ runs inside 2h allocations: every run needs walltime
            // cuts and checkpoint-preserved resumption to finish
            let durations = ramp_durations(&manifest, 10_800, 1_800);
            let spec = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(2)));
            let plan = ShardPlan::contiguous(manifest.total_runs(), 2);
            let policy = ResiliencePolicy {
                restart: RestartStrategy::FromCheckpoint {
                    interval: SimDuration::from_mins(15),
                },
                ..ResiliencePolicy::default()
            };
            let faults = FaultPlan::none(7);
            let mut board = StatusBoard::for_manifest(&manifest);
            run_campaign_resilient_par_traced(
                &manifest,
                &durations,
                &PilotScheduler::new(),
                &spec,
                41,
                &mut board,
                64,
                &policy,
                &faults,
                &plan,
                pool,
                &tel,
            )
            .expect("fixture durations modeled");
            board
        }
    };
    let snapshot = rec.snapshot();
    let metrics = metrics_json(&snapshot);
    (board, metrics, snapshot)
}

/// The fixture's resilience policy, when the resilient driver runs it.
fn fixture_policy(fixture: Fixture) -> Option<ResiliencePolicy> {
    match fixture {
        Fixture::Sweep => None,
        Fixture::Faulty => Some(ResiliencePolicy {
            retry_budget: 3,
            backoff_base: SimDuration::from_mins(10),
            ..ResiliencePolicy::default()
        }),
        Fixture::Checkpointed => Some(ResiliencePolicy {
            restart: RestartStrategy::FromCheckpoint {
                interval: SimDuration::from_mins(15),
            },
            ..ResiliencePolicy::default()
        }),
    }
}

/// The fixture's campaign inputs (manifest + durations), shared by the
/// sharded and memoized runners so both execute the identical campaign.
pub fn fixture_inputs(fixture: Fixture) -> (CampaignManifest, BTreeMap<String, SimDuration>) {
    match fixture {
        Fixture::Sweep => {
            let m = grid_manifest("fixture-sweep", 12);
            let d = ramp_durations(&m, 600, 180);
            (m, d)
        }
        Fixture::Faulty => {
            let m = grid_manifest("fixture-faulty", 10);
            let d = ramp_durations(&m, 900, 120);
            (m, d)
        }
        Fixture::Checkpointed => {
            let m = grid_manifest("fixture-checkpointed", 4);
            let d = ramp_durations(&m, 10_800, 1_800);
            (m, d)
        }
    }
}

/// Executes a fixture campaign through the *memoized* drivers against
/// the content-addressed store at `store_path` (tracing on), and returns
/// the final board, the metrics export, the raw snapshot, and the memo
/// report. Campaign inputs are [`fixture_inputs`] with the same seeds,
/// policies, and fault plans as [`run_fixture_full`]; only the execution
/// layer differs (unit shards + cache).
pub fn run_fixture_memo(
    fixture: Fixture,
    store_path: &Path,
    pool: Option<&ThreadPool>,
) -> (StatusBoard, String, Snapshot, MemoCampaignReport) {
    let (manifest, durations) = fixture_inputs(fixture);
    run_memo_campaign(fixture, &manifest, &durations, store_path, pool)
}

/// [`run_fixture_memo`] over caller-edited campaign inputs — the
/// partial-warm differential edits one run's duration or extends the
/// sweep and must drive the memo layer with the modified campaign.
pub fn run_memo_campaign(
    fixture: Fixture,
    manifest: &CampaignManifest,
    durations: &BTreeMap<String, SimDuration>,
    store_path: &Path,
    pool: Option<&ThreadPool>,
) -> (StatusBoard, String, Snapshot, MemoCampaignReport) {
    let (tel, rec) = Telemetry::recording();
    let spec = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(2)));
    let memo = MemoConfig::new(store_path);
    let mut board = StatusBoard::for_manifest(manifest);
    let report = match fixture_policy(fixture) {
        None => run_campaign_sim_memo_par_traced(
            manifest,
            durations,
            &PilotScheduler::new(),
            &spec,
            41,
            &mut board,
            64,
            &memo,
            pool,
            &tel,
        )
        .expect("fixture durations modeled"),
        Some(policy) => {
            let faults = match fixture {
                Fixture::Faulty => FaultPlan {
                    run_faults: FaultSpec::new(0.35, 23),
                    node_mttf: None,
                    stalls: None,
                    seed: 23,
                },
                _ => FaultPlan::none(7),
            };
            run_campaign_resilient_memo_par_traced(
                manifest,
                durations,
                &PilotScheduler::new(),
                &spec,
                41,
                &mut board,
                64,
                &policy,
                &faults,
                &memo,
                pool,
                &tel,
            )
            .expect("fixture durations modeled")
        }
    };
    let snapshot = rec.snapshot();
    let metrics = metrics_json(&snapshot);
    (board, metrics, snapshot, report)
}

/// Absolute path of a committed fixture artifact.
pub fn fixture_path(fixture: Fixture, kind: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{}.{kind}.json", fixture.name()))
}

/// Absolute path of a committed plain-text fixture artifact (fair-report
/// summaries, folded flamegraph stacks).
pub fn fixture_text_path(fixture: Fixture, kind: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{}.{kind}.txt", fixture.name()))
}

/// A committed expected plain-text artifact, byte-exact.
pub fn expected_text(fixture: Fixture, kind: &str) -> String {
    let path = fixture_text_path(fixture, kind);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run UPDATE_FIXTURES=1 to generate)",
            path.display()
        )
    })
}

/// The committed expected board bytes (the canonical-JSON form of
/// [`StatusBoard::canonical_json`], plus a trailing newline).
pub fn expected_board_json(fixture: Fixture) -> String {
    let path = fixture_path(fixture, "board");
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run UPDATE_FIXTURES=1 to generate)",
            path.display()
        )
    })
}

/// The committed expected metrics document, byte-exact.
pub fn expected_metrics(fixture: Fixture) -> String {
    let path = fixture_path(fixture, "metrics");
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run UPDATE_FIXTURES=1 to generate)",
            path.display()
        )
    })
}
