//! Integration: checkpoint policies over the real solver and the
//! simulated filesystem, including failure-driven restart.

use fair_workflows::checkpoint::figure::{fig3_sweep, fig4_variation, SummitRunConfig};
use fair_workflows::checkpoint::grayscott::{GrayScott, GsParams};
use fair_workflows::checkpoint::manager::CheckpointManager;
use fair_workflows::checkpoint::policy::{MinFrequencyFloor, OverheadBudget};
use fair_workflows::hpcsim::failure::FailureModel;
use fair_workflows::hpcsim::fs::{FsLoad, SharedFs};
use fair_workflows::hpcsim::time::{SimDuration, SimTime};

#[test]
fn gray_scott_survives_injected_failures() {
    // drive the real solver; a failure schedule kills the run at random
    // instants; we restart from the latest checkpoint each time and must
    // end bit-identical to an uninterrupted run.
    let steps_total = 60u64;
    let step_cost = SimDuration::from_secs(10);
    let mut failures = FailureModel::new(SimDuration::from_secs(150), 3)
        .schedule(SimTime::ZERO, SimTime::ZERO + step_cost * steps_total);
    failures.truncate(3);
    assert!(!failures.is_empty(), "failure model must inject something");

    let mut reference = GrayScott::new(48, 48, GsParams::default());
    for _ in 0..steps_total {
        reference.step();
    }

    // checkpoint every 5 steps; on failure, roll back to the last one
    let mut sim = GrayScott::new(48, 48, GsParams::default());
    let mut last_ckpt = sim.checkpoint();
    let mut clock = SimTime::ZERO;
    let mut failure_iter = failures.into_iter().peekable();
    while sim.steps_taken() < steps_total {
        clock += step_cost;
        if let Some(&f) = failure_iter.peek() {
            if f <= clock {
                failure_iter.next();
                // crash: lose in-memory state, restore from checkpoint
                sim = GrayScott::restore(&last_ckpt).unwrap();
                continue;
            }
        }
        sim.step();
        if sim.steps_taken().is_multiple_of(5) {
            last_ckpt = sim.checkpoint();
        }
    }
    assert_eq!(sim, reference, "recovered run must match uninterrupted run");
}

#[test]
fn fig3_shape_holds_across_seeds() {
    let cfg = SummitRunConfig::default();
    let budgets = [0.02, 0.05, 0.10, 0.20, 0.50];
    for seed in [1u64, 7, 21, 99] {
        let runs = fig3_sweep(&cfg, &budgets, seed);
        let counts: Vec<u32> = runs.iter().map(|r| r.checkpoints).collect();
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "seed {seed}: {counts:?}"
        );
        assert!(counts[0] < counts[4], "seed {seed}: no spread {counts:?}");
    }
}

#[test]
fn fig4_variation_nonzero_and_bounded() {
    let cfg = SummitRunConfig::default();
    let runs = fig4_variation(&cfg, 0.10, 12, 555);
    let counts: Vec<u32> = runs.iter().map(|r| r.checkpoints).collect();
    assert!(counts.iter().max() > counts.iter().min());
    // overhead never runs far past the budget (one write of overshoot)
    assert!(runs.iter().all(|r| r.observed_overhead < 0.25));
}

#[test]
fn floor_bounds_checkpoint_gaps_under_starvation() {
    // at a 1% budget on a slow filesystem the plain policy starves;
    // the floor caps the gap, trading a little overhead for recoverability
    let run = |floored: bool| {
        let mut fs = SharedFs::new(2e10, FsLoad::busy(), 5);
        let mut max_gap = 0u32;
        let mut since = 0u32;
        let mut checkpoints = 0u32;
        if floored {
            let mut mgr = CheckpointManager::new(
                MinFrequencyFloor::new(OverheadBudget::new(0.01), 8),
                1e12,
                4096,
            );
            for _ in 0..50 {
                let out = mgr.step(SimDuration::from_secs(100), &mut fs);
                if out.wrote {
                    since = 0;
                    checkpoints += 1;
                } else {
                    since += 1;
                    max_gap = max_gap.max(since);
                }
            }
        } else {
            let mut mgr = CheckpointManager::new(OverheadBudget::new(0.01), 1e12, 4096);
            for _ in 0..50 {
                let out = mgr.step(SimDuration::from_secs(100), &mut fs);
                if out.wrote {
                    since = 0;
                    checkpoints += 1;
                } else {
                    since += 1;
                    max_gap = max_gap.max(since);
                }
            }
        }
        (checkpoints, max_gap)
    };
    let (plain_ckpts, plain_gap) = run(false);
    let (floor_ckpts, floor_gap) = run(true);
    assert!(floor_gap <= 8, "floor must bound the gap, got {floor_gap}");
    assert!(
        plain_gap > floor_gap,
        "plain {plain_gap} vs floored {floor_gap}"
    );
    assert!(floor_ckpts >= plain_ckpts);
}
