//! Integration: the §II-C codesign loop end-to-end in simulation —
//! compose a cross-layer campaign, execute it under the simulated pilot,
//! record metrics into the result catalog, and query objectives and
//! marginal impacts.

use std::collections::BTreeMap;

use fair_workflows::cheetah::campaign::{AppDef, Campaign, SweepGroup};
use fair_workflows::cheetah::objective::{Objective, ResultCatalog};
use fair_workflows::cheetah::param::SweepSpec;
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::cheetah::sweep::Sweep;
use fair_workflows::hpcsim::batch::{AllocationSeries, BatchJob};
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::driver::run_campaign_sim;
use fair_workflows::savanna::pilot::PilotScheduler;

#[test]
fn simulated_codesign_campaign_fills_the_catalog() {
    // sweep application (grid), middleware (aggregator), system (ppn)
    let campaign = Campaign::new("codesign-sim", "inst", AppDef::new("sim", "sim.exe")).with_group(
        SweepGroup::new(
            "sweep",
            Sweep::new()
                .with("grid", SweepSpec::list([128i64, 256]))
                .with("agg", SweepSpec::list(["posix", "staged"]))
                .with("ppn", SweepSpec::list([16i64, 32])),
            8,
            1,
            7200,
        ),
    );
    let manifest = campaign.manifest().unwrap();
    assert_eq!(manifest.total_runs(), 8);

    // analytic duration model driven by the swept parameters
    let mut durations: BTreeMap<String, SimDuration> = BTreeMap::new();
    let mut expected_runtime: BTreeMap<String, f64> = BTreeMap::new();
    for run in manifest.groups[0].runs.iter() {
        let grid = run.params.get("grid").unwrap().as_int().unwrap() as f64;
        let agg = run.params.get("agg").unwrap().as_str().unwrap();
        let ppn = run.params.get("ppn").unwrap().as_int().unwrap() as f64;
        let compute = grid * grid / 4096.0; // seconds
        let io = grid * grid / if agg == "staged" { 2048.0 } else { 512.0 } / ppn * 16.0;
        let secs = compute + io;
        durations.insert(run.id.clone(), SimDuration::from_secs_f64(secs));
        expected_runtime.insert(run.id.clone(), secs);
    }

    // execute under the pilot and record measured (simulated) runtimes
    let mut board = StatusBoard::for_manifest(&manifest);
    let mut series = AllocationSeries::new(
        BatchJob::new(8, SimDuration::from_hours(2)),
        SimDuration::from_mins(15),
        0.4,
        3,
    );
    let report = run_campaign_sim(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        20,
    )
    .expect("durations modeled");
    assert!(report.is_complete());

    let mut catalog = ResultCatalog::new();
    for (id, secs) in &expected_runtime {
        catalog.record(id, "runtime", *secs);
    }
    assert_eq!(catalog.len(), 8);

    // objective query: the fastest configuration is big-ppn + staged
    let (best, _) = catalog.best(&Objective::minimize("runtime")).unwrap();
    assert!(best.contains("agg-staged"), "best={best}");
    assert!(best.contains("ppn-32"), "best={best}");

    // marginal impacts identify the aggregator as a dominant knob
    let impacts = catalog.marginal_impacts(&manifest, "runtime");
    let agg = impacts.iter().find(|i| i.param == "agg").unwrap();
    let ppn = impacts.iter().find(|i| i.param == "ppn").unwrap();
    assert!(agg.spread > 0.0 && ppn.spread > 0.0);
    assert!(
        agg.spread > ppn.spread,
        "aggregator ({}) should matter more than ppn ({})",
        agg.spread,
        ppn.spread
    );

    // the catalog is a distributable artifact
    let back = ResultCatalog::from_json(&catalog.to_json()).unwrap();
    assert_eq!(back, catalog);
}
