//! Integration: the two science workflows at reduced scale — GWAS
//! (shard → paste → scan) and iRF-LOOP (network recovery), run through
//! the public APIs exactly as the examples do.

use fair_workflows::exec::ThreadPool;
use fair_workflows::iorf::forest::ForestConfig;
use fair_workflows::iorf::irf::IrfConfig;
use fair_workflows::iorf::irf_loop::{run_feature, run_loop, LoopConfig};
use fair_workflows::iorf::synth::SynthConfig;
use fair_workflows::iorf::tree::TreeConfig;
use fair_workflows::tabular::gwas::{
    association_scan, association_scan_table, top_hits, GenotypeData, GwasConfig,
};
use fair_workflows::tabular::{tsv, Table};

#[test]
fn gwas_shard_paste_scan_roundtrip() {
    let cfg = GwasConfig {
        samples: 300,
        snps: 120,
        causal: vec![(5, 1.0), (60, -0.9)],
        maf_range: (0.15, 0.35),
        noise_sd: 0.8,
        seed: 77,
    };
    let data = GenotypeData::generate(&cfg);
    let pool = ThreadPool::new(2);

    // shard to TSV text and back (the file exchange the paste plan does)
    let chunks = data.to_column_chunks(8);
    let texts: Vec<String> = chunks.iter().map(tsv::encode).collect();
    let mut merged = Table::new();
    for text in &texts {
        merged.hpaste(tsv::parse(text).unwrap());
    }
    assert_eq!(merged.ncols(), 120);
    assert_eq!(merged.nrows(), 300);

    // the merged-table scan equals the in-memory scan
    let from_table = association_scan_table(&merged, &data.phenotype, &pool);
    let direct = association_scan(&data, &pool);
    for (a, b) in from_table.iter().zip(direct.iter()) {
        assert_eq!(a.snp, b.snp);
        assert!((a.t - b.t).abs() < 1e-9);
    }
    let hits = top_hits(direct, 2);
    let mut found: Vec<usize> = hits.iter().map(|h| h.snp).collect();
    found.sort_unstable();
    assert_eq!(found, vec![5, 60]);
}

#[test]
fn irf_loop_per_feature_runs_compose_to_the_full_adjacency() {
    // campaign-style decomposition: running features one at a time (as
    // savanna would) yields exactly the run_loop result
    let (data, _) = SynthConfig {
        samples: 150,
        features: 8,
        roots: 3,
        edge_weight: 1.0,
        noise_sd: 0.3,
        seed: 31,
    }
    .generate();
    let pool = ThreadPool::new(2);
    let config = LoopConfig {
        irf: IrfConfig {
            forest: ForestConfig {
                n_trees: 15,
                tree: TreeConfig {
                    max_depth: 6,
                    min_samples_leaf: 3,
                    mtry: 3,
                },
                seed: 3,
            },
            iterations: 2,
        },
    };
    let whole = run_loop(&data, &config, &pool);
    let mut assembled = fair_workflows::iorf::irf_loop::Adjacency::new(8);
    for target in 0..8 {
        let imp = run_feature(&data, target, &config, &pool);
        assembled.set_column(target, &imp);
    }
    assert_eq!(whole, assembled);
}

#[test]
fn irf_loop_network_recovery_meets_threshold() {
    let (data, net) = SynthConfig {
        samples: 250,
        features: 14,
        roots: 4,
        edge_weight: 1.0,
        noise_sd: 0.25,
        seed: 8,
    }
    .generate();
    let pool = ThreadPool::new(2);
    let config = LoopConfig {
        irf: IrfConfig {
            forest: ForestConfig {
                n_trees: 30,
                tree: TreeConfig {
                    max_depth: 7,
                    min_samples_leaf: 3,
                    mtry: 4,
                },
                seed: 21,
            },
            iterations: 2,
        },
    };
    let adj = run_loop(&data, &config, &pool);
    let recovered = adj.top_edges(net.edges.len());
    assert!(
        net.precision(&recovered) >= 0.5,
        "precision {}",
        net.precision(&recovered)
    );
}
