//! Byte-level goldens for the journal wire format.
//!
//! The journal's durability story rests on its bytes meaning the same
//! thing forever: `[len:u32 LE][crc32:u32 LE][payload]` frames after an
//! 8-byte magic, with byte-deterministic record payloads. These tests
//! pin that format against a committed fixture
//! (`tests/fixtures/journal/framing.journal`) so an accidental encoding
//! change — field order, escaping, framing, CRC — fails CI with a byte
//! diff instead of silently orphaning every journal written by an older
//! build. After an *intentional* format change, regenerate with
//! `UPDATE_FIXTURES=1 cargo test --test journal_framing_goldens` and
//! review the fixture diff as the review of the compatibility break.

use std::path::{Path, PathBuf};

use fair_workflows::cheetah::journal::{
    recover, FsyncPolicy, JournalRecord, JournalWriter, JOURNAL_MAGIC,
};
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::cheetah::RunStatus;

/// Fixture directory: overridable so the offline CI harness can point a
/// shadow-workspace build at the real repo's fixtures.
fn fixture_dir() -> PathBuf {
    std::env::var_os("JOURNAL_FIXTURE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/journal"))
}

fn updating() -> bool {
    std::env::var_os("UPDATE_FIXTURES").is_some_and(|v| v == "1")
}

fn sample_board() -> StatusBoard {
    let mut board = StatusBoard::default();
    board.set("sweep/run-1", RunStatus::Done);
    board.record_attempt("sweep/run-1");
    board.set("sweep/run-2", RunStatus::Pending);
    board.record_attempt("sweep/run-3");
    board.record_failure("sweep/run-3", "node-crash");
    board.record_telemetry_ref("sweep/run-1", "trace#2");
    board.record_digest_ref("sweep/run-1", "digest#span_us.attempt");
    board
}

/// One record of every variant, with contents that exercise JSON
/// escaping and multi-digit integers.
fn sample_records() -> Vec<JournalRecord> {
    vec![
        JournalRecord::Snapshot {
            board: sample_board(),
        },
        JournalRecord::Attempt {
            run: "sweep/run-2".to_string(),
        },
        JournalRecord::Status {
            run: "sweep/run-2".to_string(),
            status: RunStatus::Done,
        },
        JournalRecord::Failure {
            run: "sweep/run-3".to_string(),
            cause: "fs-stall \"hang\"\n".to_string(),
        },
        JournalRecord::TelemetryRef {
            run: "sweep/run-2".to_string(),
            reference: "trace#3".to_string(),
        },
        JournalRecord::DigestRef {
            run: "sweep/run-2".to_string(),
            reference: "digest#span_us.attempt".to_string(),
        },
        JournalRecord::Epoch {
            index: 7,
            now_us: 123_456_789,
            completed: 12,
            timed_out: 3,
        },
        JournalRecord::ShardMerged {
            shard: 1,
            board: sample_board(),
        },
        JournalRecord::Complete,
    ]
}

fn write_sample_journal(path: &Path) {
    let mut writer = JournalWriter::create(path, FsyncPolicy::Never).expect("create journal");
    for record in sample_records() {
        writer.append(&record).expect("append record");
    }
}

#[test]
fn journal_bytes_match_the_committed_golden() {
    let dir = fixture_dir();
    let golden = dir.join("framing.journal");
    let scratch =
        std::env::temp_dir().join(format!("framing-golden-{}.journal", std::process::id()));
    write_sample_journal(&scratch);
    let generated = std::fs::read(&scratch).expect("read generated journal");
    std::fs::remove_file(&scratch).ok();

    assert_eq!(&generated[..JOURNAL_MAGIC.len()], JOURNAL_MAGIC);
    if updating() {
        std::fs::create_dir_all(&dir).expect("fixture dir");
        std::fs::write(&golden, &generated).expect("write golden");
        eprintln!("updated {}", golden.display());
        return;
    }
    let committed = std::fs::read(&golden).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun UPDATE_FIXTURES=1 cargo test --test journal_framing_goldens to generate",
            golden.display()
        )
    });
    assert_eq!(
        generated, committed,
        "journal wire format drifted from the committed golden — an old \
         journal would no longer replay on this build. If the change is \
         intentional, regenerate with UPDATE_FIXTURES=1 and review the diff."
    );
}

#[test]
fn golden_journal_recovers_to_the_golden_board() {
    let dir = fixture_dir();
    let golden = dir.join("framing.journal");
    let board_golden = dir.join("framing.recovered.json");
    if updating() {
        // journal_bytes_match_the_committed_golden writes the journal
        // fixture; derive the board golden from the same record set so
        // the pair can never go out of sync.
        let mut board = StatusBoard::default();
        for record in sample_records() {
            record.apply(&mut board);
        }
        std::fs::create_dir_all(&dir).expect("fixture dir");
        std::fs::write(&board_golden, board.canonical_json()).expect("write board golden");
        eprintln!("updated {}", board_golden.display());
        return;
    }
    let recovered = recover(&golden).expect("recover golden journal");
    assert_eq!(recovered.records, sample_records());
    assert_eq!(recovered.torn_bytes, 0);
    assert!(recovered.complete);
    let expected =
        std::fs::read_to_string(&board_golden).expect("committed framing.recovered.json");
    assert_eq!(recovered.board.canonical_json(), expected);
}

#[test]
fn torn_golden_journal_recovers_the_prefix() {
    // No extra fixture: chop the committed golden mid-final-frame and
    // the valid prefix must recover with the tail reported torn.
    let golden = fixture_dir().join("framing.journal");
    let bytes = std::fs::read(&golden).expect("committed framing.journal");
    let scratch = std::env::temp_dir().join(format!("framing-torn-{}.journal", std::process::id()));
    std::fs::write(&scratch, &bytes[..bytes.len() - 3]).expect("write torn copy");
    let recovered = recover(&scratch).expect("recover torn journal");
    std::fs::remove_file(&scratch).ok();
    let full = sample_records();
    assert_eq!(recovered.records, full[..full.len() - 1]);
    // torn = the final frame (8-byte header + payload) minus the chop
    let last_frame = 8 + full.last().expect("records").encode().len();
    assert_eq!(recovered.torn_bytes as usize, last_frame - 3);
    assert!(!recovered.complete);
}
