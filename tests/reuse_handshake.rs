//! Integration: the full reuse handshake the paper envisions — one group
//! exports a component as a research object; another imports it, checks
//! the gauges against its requirements, derives an access plan
//! automatically, and applies the captured fusion rule to convert the
//! data format — with zero "run down the hall" interventions.

use fair_workflows::fair_core::access_plan::plan_access;
use fair_workflows::fair_core::prelude::*;
use fair_workflows::fair_core::research_object::{export, ResearchObject};
use fair_workflows::tabular::annot;

/// The exporting group's component: a genome-annotation producer whose
/// output format and fusion rule are fully described.
fn annotation_producer() -> ComponentDescriptor {
    let mut c = ComponentDescriptor::new("annotator", "2.1.0", ComponentKind::Executable);
    c.has_templates = true;
    c.has_generation_model = true;
    c.outputs.push(PortDescriptor {
        name: "annotations".into(),
        data: DataDescriptor {
            protocol: Some(AccessProtocol::PosixFile),
            interface: Some("bed".into()),
            query: Some(fair_workflows::fair_core::component::QueryModel::Linear),
            format: Some("bed".into()),
            schema: Some(SchemaInfo::Typed {
                columns: vec![
                    ("chrom".into(), "str".into()),
                    ("start".into(), "u64".into()),
                    ("end".into(), "u64".into()),
                ],
            }),
            semantics: vec![SemanticsAnnotation::FusionRule(
                "bed<->gff3 coordinate shift".into(),
            )],
        },
    });
    c.config.push(ConfigVariable {
        name: "genome".into(),
        var_type: "string".into(),
        default: Some("hg38".into()),
        description: "reference genome build".into(),
        related_to: vec![],
    });
    c.provenance.push(ProvenanceRecord {
        execution_id: "run-0419".into(),
        campaign: Some("annot-2021".into()),
        exportable: Some(true),
        notes: "production annotation run".into(),
    });
    c.provenance.push(ProvenanceRecord {
        execution_id: "scratch-7".into(),
        campaign: Some("annot-2021".into()),
        exportable: Some(false),
        notes: "internal debugging run — stays home".into(),
    });
    c
}

#[test]
fn export_ship_import_plan_convert() {
    // --- exporting side ---
    let component = annotation_producer();
    let ro = export("annot-release-1", &[component]).unwrap();
    let wire = ro.to_json(); // what actually crosses the group boundary

    // --- importing side ---
    let received = ResearchObject::from_json(&wire).unwrap();
    let entry = &received.components[0];
    // the debugging provenance stayed home; the exportable record came
    assert_eq!(entry.withheld_provenance, 1);
    assert_eq!(entry.descriptor.provenance.len(), 1);
    assert_eq!(entry.descriptor.provenance[0].execution_id, "run-0419");

    // the importer's context demands machine-actionable data + software
    let required = GaugeProfile::from_pairs([
        (Gauge::DataAccess, Tier(3)),
        (Gauge::DataSchema, Tier(2)),
        (Gauge::DataSemantics, Tier(2)),
        (Gauge::SoftwareCustomizability, Tier(2)),
    ]);
    assert!(
        entry.profile.dominates(&required),
        "shipped profile {} does not meet {}",
        entry.profile.compact(),
        required.compact()
    );
    // and the debt bill confirms: zero interventions to reuse
    let bill = fair_workflows::fair_core::debt::estimate(
        &entry.profile,
        &ReuseScenario::new("import", required, 10),
    );
    assert!(bill.is_debt_free());

    // an access plan can be constructed fully automatically
    let port = entry.descriptor.port("annotations").unwrap();
    let plan = plan_access(&port.data).unwrap();
    assert!(plan.fully_automatic, "plan: {}", plan.describe());
    assert!(plan.describe().contains("honor fusion:bed<->gff3"));

    // --- and the fusion rule actually works on data ---
    let bed_text = "chr1\t0\t100\tgeneA\t5\t+\nchr2\t10\t20\tgeneB\t.\t-\n";
    let intervals = annot::parse_bed(bed_text).unwrap();
    let gff = annot::encode_gff3(&intervals, "annotator", "gene");
    // 1-based closed in GFF3: the first interval shows as 1..100
    assert!(gff.contains("chr1\tannotator\tgene\t1\t100"));
    let back = annot::parse_bed(&annot::encode_bed(&annot::parse_gff3(&gff).unwrap())).unwrap();
    assert_eq!(
        back, intervals,
        "round-trip through the other format is lossless"
    );
}

#[test]
fn incomparable_profiles_block_automated_composition() {
    // a component strong on data but opaque on software, and a context
    // that needs both: the catalog correctly refuses to offer it
    let mut weak = annotation_producer();
    weak.config.clear();
    weak.has_generation_model = false;
    weak.has_templates = false;
    let mut catalog = Catalog::new();
    catalog.register(weak);
    let need = GaugeProfile::from_pairs([
        (Gauge::DataAccess, Tier(2)),
        (Gauge::SoftwareCustomizability, Tier(2)),
    ]);
    assert!(catalog.satisfying(&need).is_empty());
    // but a data-only context is satisfied
    let data_only = GaugeProfile::from_pairs([(Gauge::DataAccess, Tier(2))]);
    assert_eq!(catalog.satisfying(&data_only).len(), 1);
}

#[test]
fn undecided_provenance_blocks_the_export_not_the_import() {
    let mut component = annotation_producer();
    component.provenance.push(ProvenanceRecord {
        execution_id: "mystery-run".into(),
        campaign: None,
        exportable: None, // never triaged
        notes: String::new(),
    });
    let err = export("obj", &[component]).unwrap_err();
    assert!(err.to_string().contains("mystery-run"));
}
