//! Integration: the telemetry layer end-to-end through the facade —
//! a seeded resilient campaign records a full trace whose Chrome-trace
//! and metrics exports are byte-identical across independent runs, the
//! StatusBoard publishes per-run trace references, and disabled
//! telemetry changes nothing about campaign outcomes.

use std::collections::BTreeMap;

use fair_workflows::cheetah::campaign::{AppDef, Campaign, SweepGroup};
use fair_workflows::cheetah::manifest::CampaignManifest;
use fair_workflows::cheetah::param::SweepSpec;
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::cheetah::sweep::Sweep;
use fair_workflows::hpcsim::batch::{AllocationSeries, BatchJob};
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::pilot::PilotScheduler;
use fair_workflows::savanna::resilience::{
    run_campaign_resilient_traced, FaultPlan, ResiliencePolicy, ResilientCampaignReport, StallSpec,
};
use fair_workflows::savanna::FaultSpec;
use fair_workflows::telemetry::{chrome_trace_json, metrics_json, metrics_keys, Telemetry};

fn manifest(features: i64) -> CampaignManifest {
    Campaign::new("telemetry", "inst", AppDef::new("irf", "irf.exe"))
        .with_group(SweepGroup::new(
            "features",
            Sweep::new().with(
                "feature",
                SweepSpec::IntRange {
                    start: 0,
                    end: features - 1,
                    step: 1,
                },
            ),
            8,
            1,
            1800,
        ))
        .manifest()
        .expect("valid campaign")
}

fn uniform_durations(m: &CampaignManifest, secs: u64) -> BTreeMap<String, SimDuration> {
    m.groups
        .iter()
        .flat_map(|g| g.runs.iter())
        .map(|r| (r.id.clone(), SimDuration::from_secs(secs)))
        .collect()
}

fn fault_plan() -> FaultPlan {
    FaultPlan {
        run_faults: FaultSpec::new(0.2, 5),
        node_mttf: Some(SimDuration::from_hours(6)),
        stalls: Some(StallSpec {
            mean_between: SimDuration::from_mins(30),
            duration: SimDuration::from_mins(2),
            slowdown: 4.0,
            io_fraction: 0.25,
        }),
        seed: 5,
    }
}

fn run_traced(tel: &Telemetry) -> (ResilientCampaignReport, StatusBoard) {
    let m = manifest(24);
    let durations = uniform_durations(&m, 600);
    let policy = ResiliencePolicy {
        retry_budget: 4,
        backoff_base: SimDuration::from_mins(3),
        ..ResiliencePolicy::default()
    };
    let job = BatchJob::new(8, SimDuration::from_mins(45));
    let mut series = AllocationSeries::new(job, SimDuration::from_mins(10), 0.5, 3);
    let mut board = StatusBoard::for_manifest(&m);
    let report = run_campaign_resilient_traced(
        &m,
        &durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        200,
        &policy,
        &fault_plan(),
        tel,
    )
    .expect("durations modeled");
    (report, board)
}

#[test]
fn seeded_exports_are_byte_identical_across_runs() {
    let (tel_a, rec_a) = Telemetry::recording();
    let (report_a, _) = run_traced(&tel_a);
    let (tel_b, rec_b) = Telemetry::recording();
    let (report_b, _) = run_traced(&tel_b);

    assert_eq!(
        report_a.report.completed_runs,
        report_b.report.completed_runs
    );
    let snap_a = rec_a.snapshot();
    let snap_b = rec_b.snapshot();
    let trace = chrome_trace_json(&snap_a);
    assert_eq!(trace, chrome_trace_json(&snap_b));
    let metrics = metrics_json(&snap_a);
    assert_eq!(metrics, metrics_json(&snap_b));

    // the exports carry their stable schema ids
    assert!(
        trace.contains("\"schema\": \"fair-telemetry-trace/1\""),
        "{trace}"
    );
    assert!(metrics.contains("\"schema\": \"fair-telemetry-metrics/1\""));
    // and a real recording surface: attempt spans plus the core counters
    let keys = metrics_keys(&metrics);
    for expected in [
        "spans.attempt",
        "spans.allocation",
        "counters.attempts",
        "counters.completed_runs",
        "counters.queue_wait_us",
    ] {
        assert!(
            keys.iter().any(|k| k == expected),
            "missing {expected} in {keys:?}"
        );
    }
}

#[test]
fn status_board_publishes_per_run_trace_refs() {
    let (tel, rec) = Telemetry::recording();
    let (_, board) = run_traced(&tel);
    // manifest order fixes the track layout: run i lives on track 2 + i
    let m = manifest(24);
    for (i, run) in m.groups[0].runs.iter().enumerate() {
        assert_eq!(
            board.telemetry_ref(&run.id),
            Some(format!("trace#{}", 2 + i).as_str()),
            "run {}",
            run.id
        );
    }
    let snap = rec.snapshot();
    assert_eq!(
        snap.track_names.get(&0).map(String::as_str),
        Some("allocations")
    );
    assert_eq!(
        snap.track_names.get(&1).map(String::as_str),
        Some("machine")
    );
}

#[test]
fn disabled_telemetry_records_nothing_and_changes_no_outcome() {
    let disabled = Telemetry::disabled();
    assert!(!disabled.is_enabled());
    let (plain, board_plain) = run_traced(&disabled);

    let (tel, rec) = Telemetry::recording();
    let (traced, _) = run_traced(&tel);
    // identical simulation outcomes whether or not anyone is watching
    assert_eq!(plain.report.completed_runs, traced.report.completed_runs);
    assert_eq!(
        plain.report.allocations.len(),
        traced.report.allocations.len()
    );
    assert_eq!(
        plain.resilience.failed_attempts,
        traced.resilience.failed_attempts
    );
    assert_eq!(
        plain.resilience.rework_lost_node_hours,
        traced.resilience.rework_lost_node_hours
    );
    // a disabled run publishes no trace refs and records no events
    let m = manifest(24);
    assert!(board_plain.telemetry_ref(&m.groups[0].runs[0].id).is_none());
    assert!(!rec.snapshot().spans.is_empty());
}
