//! Integration: the resilience layer end-to-end through the facade —
//! termination and bounded-budget invariants under arbitrary seeded fault
//! schedules, determinism of attempt histories and quarantine sets, the
//! checkpoint-restart rework advantage, and budget exhaustion at p = 1.

use std::collections::BTreeMap;

use fair_workflows::cheetah::campaign::{AppDef, Campaign, SweepGroup};
use fair_workflows::cheetah::manifest::CampaignManifest;
use fair_workflows::cheetah::param::SweepSpec;
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::cheetah::sweep::Sweep;
use fair_workflows::hpcsim::batch::{AllocationSeries, BatchJob};
use fair_workflows::hpcsim::dist::LogNormal;
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::pilot::PilotScheduler;
use fair_workflows::savanna::resilience::{
    run_campaign_resilient, AttemptOutcome, FaultPlan, ResiliencePolicy, ResilientCampaignReport,
    RestartStrategy, StallSpec,
};
use fair_workflows::savanna::FaultSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn manifest(features: i64, nodes: u32, walltime_secs: u64) -> CampaignManifest {
    Campaign::new("resilience", "inst", AppDef::new("irf", "irf.exe"))
        .with_group(SweepGroup::new(
            "features",
            Sweep::new().with(
                "feature",
                SweepSpec::IntRange {
                    start: 0,
                    end: features - 1,
                    step: 1,
                },
            ),
            nodes,
            1,
            walltime_secs,
        ))
        .manifest()
        .expect("valid campaign")
}

fn durations(
    manifest: &CampaignManifest,
    mean_secs: f64,
    cap_secs: f64,
    seed: u64,
) -> BTreeMap<String, SimDuration> {
    let dist = LogNormal::from_mean_cv(mean_secs, 0.6);
    let mut rng = StdRng::seed_from_u64(seed);
    manifest
        .groups
        .iter()
        .flat_map(|g| g.runs.iter())
        .map(|r| {
            let secs = dist.sample(&mut rng).min(cap_secs);
            (r.id.clone(), SimDuration::from_secs_f64(secs))
        })
        .collect()
}

fn execute(
    manifest: &CampaignManifest,
    durs: &BTreeMap<String, SimDuration>,
    policy: &ResiliencePolicy,
    faults: &FaultPlan,
    max_allocations: u32,
) -> ResilientCampaignReport {
    let job = BatchJob::new(8, SimDuration::from_hours(2));
    let mut series = AllocationSeries::new(job, SimDuration::from_mins(10), 0.4, 5);
    let mut board = StatusBoard::for_manifest(manifest);
    run_campaign_resilient(
        manifest,
        durs,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        max_allocations,
        policy,
        faults,
    )
    .expect("durations modeled")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under *any* seeded fault schedule the driver terminates: every run
    /// either completes, exhausts its retry budget, or the allocation cap
    /// is hit — and no run ever records more failing attempts than the
    /// budget allows.
    #[test]
    fn any_fault_schedule_terminates_with_bounded_budgets(
        seed in any::<u64>(),
        p in 0.0f64..0.9,
        mttf_hours in 1u64..48,
    ) {
        let m = manifest(12, 8, 2 * 3600);
        let durs = durations(&m, 10.0 * 60.0, 100.0 * 60.0, 17);
        let policy = ResiliencePolicy { retry_budget: 2, ..ResiliencePolicy::default() };
        let faults = FaultPlan {
            run_faults: FaultSpec::new(p, seed),
            node_mttf: Some(SimDuration::from_hours(mttf_hours)),
            stalls: None,
            seed,
        };
        let cap = 40;
        let run = execute(&m, &durs, &policy, &faults, cap);

        let capped = run.report.allocations.len() == cap as usize;
        prop_assert!(
            run.report.is_complete() || !run.resilience.exhausted.is_empty() || capped,
            "driver stopped without completing, exhausting, or hitting the cap"
        );
        for (id, h) in &run.resilience.histories {
            let failed = h
                .attempts
                .iter()
                .filter(|a| matches!(a.outcome, AttemptOutcome::Failed { .. }))
                .count();
            prop_assert!(
                failed <= policy.retry_budget as usize + 1,
                "{id} recorded {failed} failing attempts against a budget of {}",
                policy.retry_budget
            );
            prop_assert!(!(h.completed && h.exhausted), "{id} both completed and exhausted");
        }
    }

    /// Identical seeds produce identical attempt histories, quarantine
    /// sets, and campaign spans — fault injection is fully reproducible.
    #[test]
    fn identical_seeds_are_bit_identical(seed in any::<u64>()) {
        let m = manifest(10, 8, 2 * 3600);
        let durs = durations(&m, 12.0 * 60.0, 100.0 * 60.0, 23);
        let policy = ResiliencePolicy {
            retry_budget: 4,
            quarantine_threshold: 2,
            ..ResiliencePolicy::default()
        };
        let faults = FaultPlan {
            run_faults: FaultSpec::new(0.25, seed),
            node_mttf: Some(SimDuration::from_hours(8)),
            stalls: Some(StallSpec {
                mean_between: SimDuration::from_mins(45),
                duration: SimDuration::from_mins(4),
                slowdown: 4.0,
                io_fraction: 0.25,
            }),
            seed,
        };
        let a = execute(&m, &durs, &policy, &faults, 60);
        let b = execute(&m, &durs, &policy, &faults, 60);
        prop_assert_eq!(&a.resilience.histories, &b.resilience.histories);
        prop_assert_eq!(&a.resilience.quarantined, &b.resilience.quarantined);
        prop_assert_eq!(a.report.total_span, b.report.total_span);
    }
}

/// A 3-hour run in 2-hour allocations: restart-from-zero repeats the same
/// two hours forever and never finishes; checkpoint-aware restart carries
/// the progress across the cut and completes — with strictly less rework
/// under the identical (empty-fault) schedule.
#[test]
fn checkpoint_restart_beats_restart_from_zero() {
    let m = manifest(1, 8, 2 * 3600);
    let durs: BTreeMap<String, SimDuration> = m
        .groups
        .iter()
        .flat_map(|g| g.runs.iter())
        .map(|r| (r.id.clone(), SimDuration::from_hours(3)))
        .collect();
    let faults = FaultPlan::none(3);

    let scratch_policy = ResiliencePolicy {
        restart: RestartStrategy::FromScratch,
        ..ResiliencePolicy::default()
    };
    let scratch = execute(&m, &durs, &scratch_policy, &faults, 6);
    assert!(!scratch.report.is_complete());
    assert!(scratch.resilience.rework_lost_node_hours > 0.0);
    assert_eq!(scratch.resilience.rework_saved_node_hours, 0.0);

    let ckpt_policy = ResiliencePolicy {
        restart: RestartStrategy::FromCheckpoint {
            interval: SimDuration::from_mins(30),
        },
        ..ResiliencePolicy::default()
    };
    let ckpt = execute(&m, &durs, &ckpt_policy, &faults, 6);
    assert!(ckpt.report.is_complete());
    assert!(ckpt.resilience.rework_saved_node_hours > 0.0);
    assert!(
        ckpt.resilience.rework_lost_node_hours < scratch.resilience.rework_lost_node_hours,
        "checkpoint restart must lose strictly less rework ({} vs {})",
        ckpt.resilience.rework_lost_node_hours,
        scratch.resilience.rework_lost_node_hours
    );
}

/// At p = 1 every attempt fails, so every run burns exactly
/// `retry_budget + 1` attempts and is reported exhausted.
#[test]
fn certain_failure_exhausts_every_budget() {
    let m = manifest(6, 8, 2 * 3600);
    let durs = durations(&m, 8.0 * 60.0, 100.0 * 60.0, 31);
    let policy = ResiliencePolicy {
        retry_budget: 2,
        ..ResiliencePolicy::default()
    };
    let faults = FaultPlan {
        run_faults: FaultSpec::new(1.0, 11),
        node_mttf: None,
        stalls: None,
        seed: 11,
    };
    let run = execute(&m, &durs, &policy, &faults, 30);
    assert!(!run.report.is_complete());
    assert_eq!(run.resilience.exhausted.len(), m.total_runs());
    for (id, h) in &run.resilience.histories {
        assert!(h.exhausted, "{id} should be exhausted");
        assert!(!h.completed);
        assert_eq!(h.attempts.len(), 3, "{id} should burn budget+1 attempts");
        assert!(h
            .attempts
            .iter()
            .all(|a| matches!(a.outcome, AttemptOutcome::Failed { .. })));
    }
}
