//! Integration: the Fig. 6/7 machinery — set-synchronized vs dynamic
//! pilot across seeds, resubmission to completion, determinism, and the
//! paper's qualitative claims as invariants.

use std::collections::BTreeMap;

use fair_workflows::cheetah::campaign::{AppDef, Campaign, SweepGroup};
use fair_workflows::cheetah::manifest::CampaignManifest;
use fair_workflows::cheetah::param::SweepSpec;
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::cheetah::sweep::Sweep;
use fair_workflows::hpcsim::batch::{AllocationSeries, BatchJob};
use fair_workflows::hpcsim::dist::LogNormal;
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::driver::run_campaign_sim;
use fair_workflows::savanna::pilot::PilotScheduler;
use fair_workflows::savanna::setsync::SetSyncScheduler;
use fair_workflows::savanna::task::AllocationScheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn manifest(features: i64, nodes: u32) -> CampaignManifest {
    Campaign::new("sim", "inst", AppDef::new("irf", "irf.exe"))
        .with_group(SweepGroup::new(
            "features",
            Sweep::new().with(
                "feature",
                SweepSpec::IntRange {
                    start: 0,
                    end: features - 1,
                    step: 1,
                },
            ),
            nodes,
            1,
            7200,
        ))
        .manifest()
        .expect("valid campaign")
}

fn durations(
    m: &CampaignManifest,
    mean_s: f64,
    cv: f64,
    seed: u64,
) -> BTreeMap<String, SimDuration> {
    let dist = LogNormal::from_mean_cv(mean_s, cv);
    let mut rng = StdRng::seed_from_u64(seed);
    m.groups
        .iter()
        .flat_map(|g| g.runs.iter())
        .map(|r| {
            (
                r.id.clone(),
                SimDuration::from_secs_f64(dist.sample(&mut rng).min(6600.0)),
            )
        })
        .collect()
}

fn run(
    m: &CampaignManifest,
    d: &BTreeMap<String, SimDuration>,
    sched: &dyn AllocationScheduler,
    wait_mins: u64,
    seed: u64,
) -> fair_workflows::savanna::driver::CampaignSimReport {
    let mut board = StatusBoard::for_manifest(m);
    let mut series = AllocationSeries::new(
        BatchJob::new(20, SimDuration::from_hours(2)),
        SimDuration::from_mins(wait_mins),
        0.5,
        seed,
    );
    run_campaign_sim(m, d, sched, &mut series, &mut board, 300).expect("durations modeled")
}

#[test]
fn pilot_beats_setsync_across_seeds() {
    let m = manifest(250, 20);
    for seed in [1u64, 2, 3, 4, 5] {
        let d = durations(&m, 480.0, 1.0, seed);
        let pilot = run(&m, &d, &PilotScheduler::new(), 30, seed);
        let sync = run(&m, &d, &SetSyncScheduler::new(20), 30, seed);
        assert!(pilot.is_complete() && sync.is_complete(), "seed {seed}");
        assert!(
            pilot.allocations.len() <= sync.allocations.len(),
            "seed {seed}: pilot {} allocs vs sync {}",
            pilot.allocations.len(),
            sync.allocations.len()
        );
        assert!(
            pilot.runs_per_allocation() >= sync.runs_per_allocation(),
            "seed {seed}"
        );
        assert!(pilot.total_span <= sync.total_span, "seed {seed}");
        // utilization of the first (full) allocation: pilot keeps nodes busy
        let pu = pilot.allocations[0].utilization;
        let su = sync.allocations[0].utilization;
        assert!(pu > su, "seed {seed}: pilot util {pu} vs sync {su}");
    }
}

#[test]
fn campaign_conserves_runs() {
    let m = manifest(137, 20);
    let d = durations(&m, 600.0, 1.2, 9);
    let report = run(&m, &d, &PilotScheduler::new(), 15, 9);
    assert!(report.is_complete());
    assert_eq!(report.completed_runs, 137);
    let sum: usize = report.allocations.iter().map(|a| a.completed).sum();
    assert_eq!(sum, 137, "per-allocation counts must sum to the campaign");
}

#[test]
fn simulation_is_deterministic() {
    let m = manifest(80, 20);
    let d = durations(&m, 500.0, 0.8, 4);
    let a = run(&m, &d, &PilotScheduler::new(), 30, 4);
    let b = run(&m, &d, &PilotScheduler::new(), 30, 4);
    assert_eq!(a.allocations.len(), b.allocations.len());
    assert_eq!(a.total_span, b.total_span);
    for (x, y) in a.allocations.iter().zip(b.allocations.iter()) {
        assert_eq!(x.completed, y.completed);
        assert_eq!(x.finished_at, y.finished_at);
    }
}

#[test]
fn every_run_completes_exactly_once_across_allocations() {
    let m = manifest(90, 20);
    let d = durations(&m, 900.0, 1.0, 12);
    let mut board = StatusBoard::for_manifest(&m);
    let mut series = AllocationSeries::new(
        BatchJob::new(20, SimDuration::from_hours(2)),
        SimDuration::from_mins(30),
        0.5,
        12,
    );
    let report = run_campaign_sim(&m, &d, &PilotScheduler::new(), &mut series, &mut board, 300)
        .expect("durations modeled");
    assert!(report.is_complete());
    // the status board agrees with the report
    let summary = board.summary();
    assert_eq!(summary.done, 90);
    assert_eq!(summary.timed_out + summary.pending + summary.running, 0);
}

#[test]
fn heavier_tails_hurt_setsync_more() {
    let m = manifest(200, 20);
    let light = durations(&m, 480.0, 0.2, 77);
    let heavy = durations(&m, 480.0, 1.5, 77);
    let ratio = |d: &BTreeMap<String, SimDuration>| {
        let p = run(&m, d, &PilotScheduler::new(), 30, 7);
        let s = run(&m, d, &SetSyncScheduler::new(20), 30, 7);
        s.total_span.as_secs_f64() / p.total_span.as_secs_f64()
    };
    let light_ratio = ratio(&light);
    let heavy_ratio = ratio(&heavy);
    assert!(
        heavy_ratio >= light_ratio,
        "straggler variance should widen the gap: light {light_ratio:.2} heavy {heavy_ratio:.2}"
    );
}
