//! Golden-fixture regression suite: three small checked-in campaigns
//! (sweep, faulty, checkpointed) executed through the sharded drivers
//! and compared against committed expected `StatusBoard` and metrics
//! JSON under `tests/fixtures/`. Future PRs get campaign-level
//! regression coverage for free: any behavioral drift in scheduling,
//! resilience, or telemetry shows up as a fixture diff.
//!
//! Regenerate after an *intentional* behavior change with
//! `UPDATE_FIXTURES=1 cargo test --test golden_fixtures`.

mod common;

use common::{expected_board_json, expected_metrics, fixture_path, run_fixture, Fixture};
use fair_workflows::exec::ThreadPool;

fn check(fixture: Fixture) {
    let (board, metrics) = run_fixture(fixture, None);
    // canonical_json is the board's serde-backend-independent byte form,
    // so the committed bytes hold in every build environment
    let board_json = board.canonical_json() + "\n";
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::write(fixture_path(fixture, "board"), board_json).expect("write board fixture");
        std::fs::write(fixture_path(fixture, "metrics"), &metrics).expect("write metrics fixture");
        return;
    }
    assert_eq!(
        board_json,
        expected_board_json(fixture),
        "{}: StatusBoard drifted from the committed fixture",
        fixture.name()
    );
    assert_eq!(
        metrics,
        expected_metrics(fixture),
        "{}: metrics export drifted from the committed fixture",
        fixture.name()
    );
}

#[test]
fn sweep_matches_committed_golden() {
    check(Fixture::Sweep);
}

#[test]
fn faulty_matches_committed_golden() {
    check(Fixture::Faulty);
}

#[test]
fn checkpointed_matches_committed_golden() {
    check(Fixture::Checkpointed);
}

#[test]
fn fixtures_are_deterministic_across_runs() {
    for fixture in Fixture::ALL {
        let a = run_fixture(fixture, None);
        let b = run_fixture(fixture, None);
        assert_eq!(a, b, "{}: two runs disagreed", fixture.name());
    }
}

#[test]
fn pooled_execution_reproduces_the_fixtures() {
    // the committed expectations are produced inline (pool = None); a
    // pooled execution of the same plan must reproduce them exactly
    let pool = ThreadPool::new(2);
    for fixture in Fixture::ALL {
        let inline = run_fixture(fixture, None);
        let pooled = run_fixture(fixture, Some(&pool));
        assert_eq!(
            inline,
            pooled,
            "{}: pooled execution diverged from inline",
            fixture.name()
        );
    }
}
