//! Crash-injection differential harness for the journaled drivers.
//!
//! The durability claim worth testing is not "a journal file exists" but
//! "interruption is unobservable": a campaign that crashes mid-execution
//! and is then recovered and resumed must produce **byte-identical**
//! outputs — `StatusBoard` canonical JSON, telemetry metrics export,
//! `ResilienceReport`, and the journal file itself — compared to the same
//! campaign never interrupted. This file checks that differential across
//! (campaign size × {serial, 2-thread sharded} × faults on/off), two
//! ways:
//!
//! * **Injected crashes** — `CrashPoint` tears the journal mid-frame at
//!   several absolute offsets (early, middle, just before the completion
//!   marker), exactly as a power cut mid-`write` would.
//! * **A real `kill -9`** — the test re-invokes its own binary to run a
//!   journaled campaign in a child process, kills the child without
//!   warning once the journal grows past a threshold, then recovers and
//!   resumes the orphaned journal in-process.
//!
//! Resume here is *validated replay* (see `savanna::journal`): the rerun
//! re-derives the full record stream from the same seed and checks it
//! against the durable prefix, so a resume against changed inputs fails
//! loudly (`Diverged`) instead of fabricating history — also covered
//! below.

mod common;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use common::{grid_manifest, ramp_durations};
use fair_workflows::cheetah::journal::{CrashPoint, FsyncPolicy, JournalError};
use fair_workflows::cheetah::manifest::CampaignManifest;
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::exec::ThreadPool;
use fair_workflows::hpcsim::batch::BatchJob;
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::pilot::PilotScheduler;
use fair_workflows::savanna::resilience::{
    FaultPlan, ResiliencePolicy, ResilienceReport, ResilientCampaignReport, RestartStrategy,
    StallSpec,
};
use fair_workflows::savanna::{
    discard_journal, run_campaign_resilient_journaled_par_traced,
    run_campaign_resilient_journaled_traced, run_campaign_sim_journaled_par_traced,
    run_campaign_sim_journaled_traced, FaultSpec, JournalSpec, JournalStats, SavannaError,
    SeriesSpec, ShardPlan,
};
use fair_workflows::telemetry::{metrics_json, Telemetry};

const SEED: u64 = 41;
const CAMPAIGN_SIZES: [i64; 2] = [6, 18];

/// Unique scratch path for one journal; unique per test invocation so
/// parallel test threads never collide.
fn jpath(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fair-crash-recovery-{}-{tag}-{n}.journal",
        std::process::id()
    ))
}

fn spec() -> SeriesSpec {
    // stochastic queue waits on purpose: interrupted and uninterrupted
    // executions run in the same build, so rand-derived values must match
    SeriesSpec::new(
        BatchJob::new(8, SimDuration::from_hours(2)),
        SimDuration::from_mins(20),
        0.5,
    )
}

fn fault_plan() -> FaultPlan {
    FaultPlan {
        run_faults: FaultSpec::new(0.25, SEED),
        node_mttf: Some(SimDuration::from_hours(8)),
        stalls: Some(StallSpec {
            mean_between: SimDuration::from_mins(40),
            duration: SimDuration::from_mins(5),
            slowdown: 4.0,
            io_fraction: 0.25,
        }),
        seed: SEED,
    }
}

fn policy() -> ResiliencePolicy {
    ResiliencePolicy {
        retry_budget: 4,
        backoff_base: SimDuration::from_mins(5),
        restart: RestartStrategy::FromCheckpoint {
            interval: SimDuration::from_mins(10),
        },
        ..ResiliencePolicy::default()
    }
}

fn journal_spec(path: &Path, crash: Option<CrashPoint>) -> JournalSpec {
    JournalSpec {
        path: path.to_path_buf(),
        snapshot_every: 4,
        fsync: FsyncPolicy::Never,
        crash,
    }
}

/// One execution's comparable outputs.
#[derive(Debug)]
struct Artifacts {
    board_json: String,
    metrics: String,
    journal_bytes: Vec<u8>,
    stats: JournalStats,
}

fn read_journal(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_default()
}

fn cleanup(path: &Path) {
    discard_journal(path).expect("journal cleanup");
}

// ---------------------------------------------------------------------
// Drivers under test, flattened to closures over (path, crash)
// ---------------------------------------------------------------------

fn run_sim_serial(
    manifest: &CampaignManifest,
    durations: &BTreeMap<String, SimDuration>,
    path: &Path,
    crash: Option<CrashPoint>,
) -> Result<Artifacts, SavannaError> {
    let mut board = StatusBoard::for_manifest(manifest);
    let mut series = spec().build(SEED);
    let (tel, rec) = Telemetry::recording();
    let outcome = run_campaign_sim_journaled_traced(
        manifest,
        durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        64,
        &journal_spec(path, crash),
        &tel,
        &Telemetry::disabled(),
    )?;
    Ok(Artifacts {
        board_json: board.canonical_json(),
        metrics: metrics_json(&rec.snapshot()),
        journal_bytes: read_journal(path),
        stats: outcome.stats,
    })
}

fn run_resilient_serial(
    manifest: &CampaignManifest,
    durations: &BTreeMap<String, SimDuration>,
    path: &Path,
    crash: Option<CrashPoint>,
) -> Result<(Artifacts, ResilientCampaignReport), SavannaError> {
    let mut board = StatusBoard::for_manifest(manifest);
    let mut series = spec().build(SEED);
    let (tel, rec) = Telemetry::recording();
    let outcome = run_campaign_resilient_journaled_traced(
        manifest,
        durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        64,
        &policy(),
        &fault_plan(),
        &journal_spec(path, crash),
        &tel,
        &Telemetry::disabled(),
    )?;
    Ok((
        Artifacts {
            board_json: board.canonical_json(),
            metrics: metrics_json(&rec.snapshot()),
            journal_bytes: read_journal(path),
            stats: outcome.stats,
        },
        outcome.report,
    ))
}

fn run_sim_par(
    manifest: &CampaignManifest,
    durations: &BTreeMap<String, SimDuration>,
    path: &Path,
    crash: Option<CrashPoint>,
) -> Result<Artifacts, SavannaError> {
    let mut board = StatusBoard::for_manifest(manifest);
    let plan = ShardPlan::contiguous(manifest.total_runs(), 2);
    let pool = ThreadPool::new(2);
    let (tel, rec) = Telemetry::recording();
    let outcome = run_campaign_sim_journaled_par_traced(
        manifest,
        durations,
        &PilotScheduler::new(),
        &spec(),
        SEED,
        &mut board,
        64,
        &plan,
        Some(&pool),
        &journal_spec(path, crash),
        &tel,
        &Telemetry::disabled(),
    )?;
    let mut journal_bytes = read_journal(path);
    for s in 0..plan.num_shards() {
        journal_bytes.extend(read_journal(&journal_spec(path, None).shard_path(s)));
    }
    Ok(Artifacts {
        board_json: board.canonical_json(),
        metrics: metrics_json(&rec.snapshot()),
        journal_bytes,
        stats: outcome.stats,
    })
}

fn run_resilient_par(
    manifest: &CampaignManifest,
    durations: &BTreeMap<String, SimDuration>,
    path: &Path,
    crash: Option<CrashPoint>,
) -> Result<(Artifacts, ResilienceReport), SavannaError> {
    let mut board = StatusBoard::for_manifest(manifest);
    let plan = ShardPlan::contiguous(manifest.total_runs(), 2);
    let pool = ThreadPool::new(2);
    let (tel, rec) = Telemetry::recording();
    let outcome = run_campaign_resilient_journaled_par_traced(
        manifest,
        durations,
        &PilotScheduler::new(),
        &spec(),
        SEED,
        &mut board,
        64,
        &policy(),
        &fault_plan(),
        &plan,
        Some(&pool),
        &journal_spec(path, crash),
        &tel,
        &Telemetry::disabled(),
    )?;
    let mut journal_bytes = read_journal(path);
    for s in 0..plan.num_shards() {
        journal_bytes.extend(read_journal(&journal_spec(path, None).shard_path(s)));
    }
    Ok((
        Artifacts {
            board_json: board.canonical_json(),
            metrics: metrics_json(&rec.snapshot()),
            journal_bytes,
            stats: outcome.stats,
        },
        outcome.report.resilience,
    ))
}

// ---------------------------------------------------------------------
// The differential
// ---------------------------------------------------------------------

/// Crash offsets to probe, derived from the uninterrupted journal's final
/// size: early (inside the first snapshot), middle, and just before the
/// completion marker.
fn crash_offsets(final_len: u64) -> [u64; 3] {
    [final_len / 7, final_len / 2, final_len.saturating_sub(3)]
}

fn assert_artifacts_identical(label: &str, reference: &Artifacts, recovered: &Artifacts) {
    assert_eq!(
        reference.board_json, recovered.board_json,
        "{label}: recovered StatusBoard differs from uninterrupted run"
    );
    assert_eq!(
        reference.metrics, recovered.metrics,
        "{label}: recovered metrics export differs from uninterrupted run"
    );
    assert_eq!(
        reference.journal_bytes, recovered.journal_bytes,
        "{label}: recovered journal bytes differ from uninterrupted run"
    );
}

fn assert_crash_was_injected(label: &str, err: SavannaError) {
    match err {
        SavannaError::Journal(JournalError::CrashInjected { .. }) => {}
        other => panic!("{label}: expected CrashInjected, got {other:?}"),
    }
}

#[test]
fn serial_sim_crash_recovery_is_byte_identical() {
    for &runs in &CAMPAIGN_SIZES {
        let manifest = grid_manifest("crash-sim", runs);
        let durations = ramp_durations(&manifest, 600, 90);
        let ref_path = jpath("sim-ref");
        let reference =
            run_sim_serial(&manifest, &durations, &ref_path, None).expect("uninterrupted");
        assert!(reference.journal_bytes.len() > 8, "journal not written");
        for at_bytes in crash_offsets(reference.journal_bytes.len() as u64) {
            let label = format!("sim runs={runs} crash@{at_bytes}");
            let path = jpath("sim-crash");
            let err = run_sim_serial(&manifest, &durations, &path, Some(CrashPoint { at_bytes }))
                .expect_err("crash point must abort the campaign");
            assert_crash_was_injected(&label, err);
            let recovered =
                run_sim_serial(&manifest, &durations, &path, None).expect("recovery + resume");
            // a crash inside the very first frame legitimately leaves no
            // durable records; from mid-journal on, resume must recover
            if at_bytes >= reference.journal_bytes.len() as u64 / 2 {
                assert!(
                    recovered.stats.recovered_records > 0,
                    "{label}: resume recovered nothing"
                );
            }
            assert_artifacts_identical(&label, &reference, &recovered);
            cleanup(&path);
        }
        cleanup(&ref_path);
    }
}

#[test]
fn serial_resilient_crash_recovery_is_byte_identical() {
    for &runs in &CAMPAIGN_SIZES {
        let manifest = grid_manifest("crash-res", runs);
        let durations = ramp_durations(&manifest, 900, 120);
        let ref_path = jpath("res-ref");
        let (reference, ref_report) =
            run_resilient_serial(&manifest, &durations, &ref_path, None).expect("uninterrupted");
        for at_bytes in crash_offsets(reference.journal_bytes.len() as u64) {
            let label = format!("resilient runs={runs} crash@{at_bytes}");
            let path = jpath("res-crash");
            let err =
                run_resilient_serial(&manifest, &durations, &path, Some(CrashPoint { at_bytes }))
                    .expect_err("crash point must abort the campaign");
            assert_crash_was_injected(&label, err);
            let (recovered, rec_report) =
                run_resilient_serial(&manifest, &durations, &path, None).expect("recovery");
            assert_artifacts_identical(&label, &reference, &recovered);
            assert_eq!(
                ref_report.resilience, rec_report.resilience,
                "{label}: recovered ResilienceReport differs"
            );
            cleanup(&path);
        }
        cleanup(&ref_path);
    }
}

#[test]
fn par2_sim_crash_recovery_is_byte_identical() {
    for &runs in &CAMPAIGN_SIZES {
        let manifest = grid_manifest("crash-psim", runs);
        let durations = ramp_durations(&manifest, 600, 90);
        let ref_path = jpath("psim-ref");
        let reference = run_sim_par(&manifest, &durations, &ref_path, None).expect("uninterrupted");
        // par crash points tear the main (merge) journal
        let main_len = read_journal(&ref_path).len() as u64;
        for at_bytes in crash_offsets(main_len) {
            let label = format!("par2 sim runs={runs} crash@{at_bytes}");
            let path = jpath("psim-crash");
            let err = run_sim_par(&manifest, &durations, &path, Some(CrashPoint { at_bytes }))
                .expect_err("crash point must abort the campaign");
            assert_crash_was_injected(&label, err);
            let recovered = run_sim_par(&manifest, &durations, &path, None).expect("recovery");
            assert_artifacts_identical(&label, &reference, &recovered);
            cleanup(&path);
        }
        cleanup(&ref_path);
    }
}

#[test]
fn par2_resilient_crash_recovery_is_byte_identical() {
    for &runs in &CAMPAIGN_SIZES {
        let manifest = grid_manifest("crash-pres", runs);
        let durations = ramp_durations(&manifest, 900, 120);
        let ref_path = jpath("pres-ref");
        let (reference, ref_report) =
            run_resilient_par(&manifest, &durations, &ref_path, None).expect("uninterrupted");
        let main_len = read_journal(&ref_path).len() as u64;
        for at_bytes in crash_offsets(main_len) {
            let label = format!("par2 resilient runs={runs} crash@{at_bytes}");
            let path = jpath("pres-crash");
            let err =
                run_resilient_par(&manifest, &durations, &path, Some(CrashPoint { at_bytes }))
                    .expect_err("crash point must abort the campaign");
            assert_crash_was_injected(&label, err);
            let (recovered, rec_report) =
                run_resilient_par(&manifest, &durations, &path, None).expect("recovery");
            assert_artifacts_identical(&label, &reference, &recovered);
            assert_eq!(
                ref_report, rec_report,
                "{label}: recovered ResilienceReport differs"
            );
            cleanup(&path);
        }
        cleanup(&ref_path);
    }
}

// ---------------------------------------------------------------------
// Resume-safety properties
// ---------------------------------------------------------------------

#[test]
fn resume_against_changed_inputs_diverges_instead_of_fabricating_history() {
    let manifest = grid_manifest("crash-div", 6);
    let durations = ramp_durations(&manifest, 900, 120);
    let path = jpath("diverge");
    run_resilient_serial(&manifest, &durations, &path, None).expect("first run");
    // same journal, different durations => different derived records
    let skewed = ramp_durations(&manifest, 901, 120);
    let err = run_resilient_serial(&manifest, &skewed, &path, None)
        .expect_err("resume with changed inputs must refuse");
    match err {
        SavannaError::Journal(JournalError::Diverged { .. }) => {}
        other => panic!("expected Diverged, got {other:?}"),
    }
    cleanup(&path);
}

#[test]
fn rerunning_a_completed_journal_validates_and_appends_nothing() {
    let manifest = grid_manifest("crash-done", 6);
    let durations = ramp_durations(&manifest, 600, 90);
    let path = jpath("complete");
    let first = run_sim_serial(&manifest, &durations, &path, None).expect("first run");
    assert_eq!(first.stats.recovered_records, 0);
    assert!(first.stats.appended_records > 0);
    let second = run_sim_serial(&manifest, &durations, &path, None).expect("revalidation");
    assert!(second.stats.recovered_records > 0);
    assert_eq!(
        second.stats.appended_records, 0,
        "revalidating a complete journal must append nothing"
    );
    assert_eq!(first.board_json, second.board_json);
    assert_eq!(first.journal_bytes, second.journal_bytes);
    cleanup(&path);
}

#[test]
fn recovery_telemetry_lands_on_its_own_handle() {
    let manifest = grid_manifest("crash-rtel", 6);
    let durations = ramp_durations(&manifest, 600, 90);
    let path = jpath("rtel");
    let mut board = StatusBoard::for_manifest(&manifest);
    let mut series = spec().build(SEED);
    run_campaign_sim_journaled_traced(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        64,
        &journal_spec(&path, None),
        &Telemetry::disabled(),
        &Telemetry::disabled(),
    )
    .expect("first run");
    let mut board = StatusBoard::for_manifest(&manifest);
    let mut series = spec().build(SEED);
    let (recovery_tel, rec) = Telemetry::recording();
    let outcome = run_campaign_sim_journaled_traced(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        64,
        &journal_spec(&path, None),
        &Telemetry::disabled(),
        &recovery_tel,
    )
    .expect("revalidation");
    assert!(outcome.stats.recovered_records > 0 && outcome.stats.replayed_epochs > 0);
    assert_eq!(
        rec.counter("journal_recovered_records") as u64,
        outcome.stats.recovered_records as u64,
        "recovery counters must report the recovered prefix"
    );
    assert_eq!(
        rec.counter("journal_replayed_epochs") as u64,
        outcome.stats.replayed_epochs,
        "recovery counters must report the replayed epochs"
    );
    cleanup(&path);
}

// ---------------------------------------------------------------------
// The real thing: kill -9
// ---------------------------------------------------------------------

const KILL_CHILD_ENV: &str = "FAIR_KILL_CHILD_JOURNAL";
const KILL_RUNS: i64 = 120;

fn kill_manifest() -> CampaignManifest {
    grid_manifest("crash-kill9", KILL_RUNS)
}

fn kill_journal_spec(path: &Path) -> JournalSpec {
    JournalSpec {
        path: path.to_path_buf(),
        snapshot_every: 2,
        // the child fsyncs every record: slows it down (so the parent's
        // SIGKILL lands mid-campaign) and maximizes the durable prefix
        fsync: FsyncPolicy::PerRecord,
        crash: None,
    }
}

fn run_kill_campaign(path: &Path, fsync: FsyncPolicy) -> (Artifacts, ResilientCampaignReport) {
    let manifest = kill_manifest();
    let durations = ramp_durations(&manifest, 900, 30);
    let mut board = StatusBoard::for_manifest(&manifest);
    let mut series = spec().build(SEED);
    let journal = JournalSpec {
        fsync,
        ..kill_journal_spec(path)
    };
    let outcome = run_campaign_resilient_journaled_traced(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        64,
        &policy(),
        &fault_plan(),
        &journal,
        &Telemetry::disabled(),
        &Telemetry::disabled(),
    )
    .expect("kill campaign");
    (
        Artifacts {
            board_json: board.canonical_json(),
            metrics: String::new(),
            journal_bytes: read_journal(path),
            stats: outcome.stats,
        },
        outcome.report,
    )
}

/// The child half of the `kill -9` test: runs the journaled campaign at
/// the path named by `FAIR_KILL_CHILD_JOURNAL`. A no-op (instant pass)
/// in a normal test run; only the re-invoked child executes the body.
#[test]
fn crash_child_campaign() {
    let Ok(path) = std::env::var(KILL_CHILD_ENV) else {
        return;
    };
    run_kill_campaign(Path::new(&path), FsyncPolicy::PerRecord);
}

#[test]
fn kill_nine_recovery_is_byte_identical() {
    use std::process::{Command, Stdio};

    // uninterrupted reference first (also tells us the final journal size)
    let ref_path = jpath("kill9-ref");
    let (reference, ref_report) = run_kill_campaign(&ref_path, FsyncPolicy::Never);
    let final_len = reference.journal_bytes.len() as u64;
    assert!(final_len > 1024, "kill campaign journal suspiciously small");
    let threshold = (final_len / 3).clamp(1024, 64 * 1024);

    let path = jpath("kill9");
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(&exe)
        .args(["crash_child_campaign", "--exact", "--nocapture"])
        .env(KILL_CHILD_ENV, &path)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child campaign");

    // poll the journal and kill the child mid-campaign
    let start = std::time::Instant::now();
    let mut child_finished = false;
    loop {
        if let Ok(Some(_)) = child.try_wait() {
            child_finished = true;
            break;
        }
        let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if len >= threshold {
            break;
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(120),
            "child campaign never reached {threshold} journal bytes"
        );
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    if !child_finished {
        child.kill().expect("kill -9 the child");
    }
    let _ = child.wait();

    if child_finished {
        // the child outran the poller — the journal is complete; recovery
        // must still validate it end-to-end and append nothing
        eprintln!("kill -9 test note: child completed before the kill; exercising complete-journal revalidation instead");
    }

    // recover + resume the orphaned journal in-process
    let (recovered, rec_report) = run_kill_campaign(&path, FsyncPolicy::Never);
    assert!(
        recovered.stats.recovered_records > 0,
        "resume after kill -9 recovered nothing"
    );
    assert_eq!(
        reference.board_json, recovered.board_json,
        "kill -9: recovered StatusBoard differs from uninterrupted run"
    );
    assert_eq!(
        reference.journal_bytes, recovered.journal_bytes,
        "kill -9: recovered journal bytes differ from uninterrupted run"
    );
    assert_eq!(
        ref_report.resilience, rec_report.resilience,
        "kill -9: recovered ResilienceReport differs"
    );
    cleanup(&path);
    cleanup(&ref_path);
}
