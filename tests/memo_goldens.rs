//! Hash-stability goldens for the memoization layer.
//!
//! The cache key of every fixture run and the full `fair-provenance/1`
//! DAG export are committed under `tests/fixtures/` — any change to the
//! key document, the hand-rolled 128-bit hash, or the provenance codec
//! shows up here as a byte diff. Keys are derived from *portable*
//! environment pins (no os/arch capture), so the committed hex values
//! hold on every machine and build flavor. Regenerate after an
//! intentional schema change with:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test --test memo_goldens
//! ```

mod common;

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use common::{fixture_path, run_fixture_memo, Fixture};
use fair_workflows::provenance::validate_provenance_json;
use fair_workflows::savanna::MemoCampaignReport;

fn scratch_store(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fair-memo-golden-{}-{tag}-{n}.cas",
        std::process::id()
    ))
}

/// Renders the per-run cache keys as a small committed document.
fn memo_keys_doc(campaign: &str, report: &MemoCampaignReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"fair-memo-keys/1\",\n  \"campaign\": \"");
    out.push_str(campaign);
    out.push_str("\",\n  \"keys\": [\n");
    for (i, run) in report.runs.iter().enumerate() {
        assert!(
            run.run_id.bytes().all(|b| b != b'"' && b != b'\\'),
            "fixture run ids stay escape-free"
        );
        out.push_str("    {\"run\": \"");
        out.push_str(&run.run_id);
        out.push_str("\", \"key\": \"");
        out.push_str(&run.key);
        out.push_str("\"}");
        if i + 1 < report.runs.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs a fixture cold against a fresh store and returns its memo
/// report (so every committed provenance golden has `cached: false`
/// everywhere — the cold baseline).
fn cold_report(fixture: Fixture) -> MemoCampaignReport {
    let store = scratch_store(fixture.name());
    let (_, _, _, report) = run_fixture_memo(fixture, &store, None);
    std::fs::remove_file(&store).ok();
    report
}

fn check_golden(path: PathBuf, actual: &str) {
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run UPDATE_FIXTURES=1 to generate)",
            path.display()
        )
    });
    assert_eq!(
        expected,
        actual,
        "{} drifted — if the key/provenance schema changed on purpose, \
         regenerate with UPDATE_FIXTURES=1",
        path.display()
    );
}

#[test]
fn cache_keys_match_the_committed_goldens() {
    for fixture in Fixture::ALL {
        let report = cold_report(fixture);
        let doc = memo_keys_doc(&report.provenance.campaign, &report);
        check_golden(fixture_path(fixture, "memokeys"), &doc);
    }
}

#[test]
fn provenance_dags_match_the_committed_goldens_and_validate() {
    for fixture in Fixture::ALL {
        let report = cold_report(fixture);
        let doc = report.provenance.to_json();
        let check = validate_provenance_json(&doc)
            .unwrap_or_else(|e| panic!("{}: invalid provenance: {e}", fixture.name()));
        assert_eq!(check.runs, report.runs.len());
        assert_eq!(check.cached_runs, 0, "cold baseline has no hits");
        check_golden(fixture_path(fixture, "provenance"), &doc);
    }
}
