//! Integration: Cheetah composition → on-disk campaign layout → Savanna
//! local execution → persisted status → resubmission, with real work.

use fair_workflows::cheetah::campaign::{AppDef, Campaign, SweepGroup};
use fair_workflows::cheetah::layout;
use fair_workflows::cheetah::param::SweepSpec;
use fair_workflows::cheetah::status::{RunStatus, StatusBoard};
use fair_workflows::cheetah::sweep::Sweep;
use fair_workflows::savanna::local::LocalExecutor;
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("it-campaign-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

fn campaign() -> Campaign {
    Campaign::new("sums", "laptop", AppDef::new("summer", "builtin")).with_group(SweepGroup::new(
        "grid",
        Sweep::new()
            .with(
                "n",
                SweepSpec::IntRange {
                    start: 1,
                    end: 4,
                    step: 1,
                },
            )
            .with("scale", SweepSpec::list([1i64, 10])),
        2,
        1,
        600,
    ))
}

#[test]
fn full_campaign_lifecycle_on_disk() {
    let root = tempdir("lifecycle");
    let manifest = campaign().manifest().unwrap();
    assert_eq!(manifest.total_runs(), 8);

    // materialize the campaign end-point
    let campaign_dir = layout::create_campaign_dirs(&root, &manifest).unwrap();
    let reloaded = layout::load_manifest(&campaign_dir).unwrap();
    assert_eq!(reloaded, manifest);

    // execute: each run computes n * scale and writes result.txt into its
    // own run directory — real work through real campaign bookkeeping
    let executor = LocalExecutor::new(2);
    let mut board = layout::load_status(&campaign_dir).unwrap();
    let report = executor.run_campaign(&manifest, &mut board, |run| {
        let n = run.params.get("n").unwrap().as_int().unwrap();
        let scale = run.params.get("scale").unwrap().as_int().unwrap();
        let out = root.join(&run.workdir).join("result.txt");
        std::fs::write(out, format!("{}", n * scale)).map_err(|e| e.to_string())
    });
    assert_eq!(report.succeeded, 8);
    layout::save_status(&campaign_dir, &board).unwrap();

    // every run directory holds params.json + result.txt, and they agree
    for group in &manifest.groups {
        for run in &group.runs {
            let dir = root.join(&run.workdir);
            let params: serde_json::Value =
                serde_json::from_str(&std::fs::read_to_string(dir.join("params.json")).unwrap())
                    .unwrap();
            let n = params["params"]["n"].as_i64().unwrap();
            let scale = params["params"]["scale"].as_i64().unwrap();
            let result: i64 = std::fs::read_to_string(dir.join("result.txt"))
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(result, n * scale, "run {}", run.id);
        }
    }

    // status persisted as complete
    let board = layout::load_status(&campaign_dir).unwrap();
    assert!(board.summary().is_complete());
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn resubmission_only_reruns_incomplete_work() {
    let root = tempdir("resubmit");
    let manifest = campaign().manifest().unwrap();
    layout::create_campaign_dirs(&root, &manifest).unwrap();
    let executor = LocalExecutor::new(2);

    // first pass: half of the runs "time out" (we mark them manually, as
    // an allocation boundary would)
    let mut board = StatusBoard::for_manifest(&manifest);
    let ids: Vec<String> = manifest
        .groups
        .iter()
        .flat_map(|g| g.runs.iter().map(|r| r.id.clone()))
        .collect();
    for id in ids.iter().take(4) {
        board.set(id, RunStatus::Done);
    }
    for id in ids.iter().skip(4).take(2) {
        board.set(id, RunStatus::TimedOut);
    }
    // remaining 2 stay Pending

    let executed = std::sync::Mutex::new(Vec::new());
    let report = executor.run_campaign(&manifest, &mut board, |run| {
        executed.lock().unwrap().push(run.id.clone());
        Ok(())
    });
    assert_eq!(report.attempted, 4, "2 timed-out + 2 pending");
    let mut ran = executed.into_inner().unwrap();
    ran.sort();
    let mut expected: Vec<String> = ids[4..].to_vec();
    expected.sort();
    assert_eq!(ran, expected);
    assert!(board.summary().is_complete());
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn manifest_survives_json_roundtrip_through_disk() {
    let root = tempdir("roundtrip");
    let manifest = campaign().manifest().unwrap();
    let dir = layout::create_campaign_dirs(&root, &manifest).unwrap();
    let text = std::fs::read_to_string(dir.join(layout::MANIFEST_FILE)).unwrap();
    let parsed = fair_workflows::cheetah::manifest::CampaignManifest::from_json(&text).unwrap();
    assert_eq!(parsed.total_runs(), manifest.total_runs());
    assert_eq!(parsed.app.name, "summer");
    std::fs::remove_dir_all(&root).unwrap();
}
