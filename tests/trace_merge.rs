//! Regression coverage for shard-trace merging with *empty* shards.
//!
//! The resilient sharded driver computes each shard's track offset as a
//! pure function of the plan (`2 + runs_in_shard` per shard) and rebases
//! every run's `trace#<local>` status-board ref by that offset. A shard
//! whose runs were all already complete when the campaign launched
//! records **zero spans** — its tracks exist in name only — which is
//! exactly the case where an off-by-one in offset accounting would slip
//! past the ordinary determinism tests: the byte-diff oracle only sees
//! events, and an empty shard contributes none. These tests pin the
//! ref-to-track mapping itself: every run's rebased `trace#N` must name
//! a merged track whose (shard-prefixed) name ends with that run's id,
//! even when earlier shards in the plan are empty.

mod common;

use common::{grid_manifest, ramp_durations};
use fair_workflows::cheetah::status::{RunStatus, StatusBoard};
use fair_workflows::exec::ThreadPool;
use fair_workflows::hpcsim::batch::BatchJob;
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::pilot::PilotScheduler;
use fair_workflows::savanna::resilience::{FaultPlan, ResiliencePolicy};
use fair_workflows::savanna::{
    run_campaign_resilient_par_traced, FaultSpec, SeriesSpec, ShardPlan,
};
use fair_workflows::telemetry::{chrome_trace_json, metrics_json, Snapshot, Telemetry};

const SEED: u64 = 53;

/// Runs a 10-run / 2-shard resilient campaign in which **every run of
/// shard 0 is pre-completed** on the starting board, so shard 0 records
/// an empty trace (track names, no events). Returns the merged board and
/// snapshot.
fn run_with_empty_first_shard(pool: Option<&ThreadPool>) -> (StatusBoard, Snapshot) {
    let manifest = grid_manifest("empty-shard", 10);
    let durations = ramp_durations(&manifest, 600, 120);
    let spec = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(2)));
    let plan = ShardPlan::contiguous(manifest.total_runs(), 2);
    let policy = ResiliencePolicy {
        retry_budget: 3,
        backoff_base: SimDuration::from_mins(5),
        ..ResiliencePolicy::default()
    };
    let faults = FaultPlan {
        run_faults: FaultSpec::new(0.3, SEED),
        node_mttf: None,
        stalls: None,
        seed: SEED,
    };
    let mut board = StatusBoard::for_manifest(&manifest);
    // shard 0 owns runs 0..5 under the contiguous plan: mark them done
    // up front so that shard executes nothing.
    for idx in plan.assignment(0) {
        board.set(&format!("grid/p-{idx}"), RunStatus::Done);
    }
    let (tel, rec) = Telemetry::recording();
    run_campaign_resilient_par_traced(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &spec,
        SEED,
        &mut board,
        64,
        &policy,
        &faults,
        &plan,
        pool,
        &tel,
    )
    .expect("durations modeled");
    (board, rec.snapshot())
}

#[test]
fn refs_point_at_the_right_tracks_when_a_shard_is_empty() {
    let (board, snapshot) = run_with_empty_first_shard(None);
    assert!(board.summary().is_complete(), "campaign must finish");
    let manifest = grid_manifest("empty-shard", 10);
    for group in &manifest.groups {
        for run in &group.runs {
            let reference = board
                .telemetry_ref(&run.id)
                .unwrap_or_else(|| panic!("{}: no telemetry ref", run.id));
            let track: u32 = reference
                .strip_prefix("trace#")
                .and_then(|t| t.parse().ok())
                .unwrap_or_else(|| panic!("{}: malformed ref {reference}", run.id));
            let name = snapshot
                .track_names
                .get(&track)
                .unwrap_or_else(|| panic!("{}: ref {reference} names no merged track", run.id));
            assert!(
                name.ends_with(&format!("/{}", run.id)),
                "{}: ref {reference} resolves to track {name:?}, not the run's own lane",
                run.id
            );
            assert_eq!(
                board.digest_ref(&run.id),
                Some("digest#span_us.attempt"),
                "{}: digest ref missing after merge",
                run.id
            );
        }
    }
    // the empty shard contributed its track names but no events on them
    let shard0_tracks: Vec<u32> = snapshot
        .track_names
        .iter()
        .filter(|(_, n)| n.starts_with("shard0/"))
        .map(|(t, _)| *t)
        .collect();
    assert_eq!(shard0_tracks.len(), 7, "2 fixed + 5 run tracks expected");
    assert!(
        snapshot
            .spans
            .iter()
            .all(|s| !shard0_tracks.contains(&s.track)),
        "pre-completed shard must record no spans"
    );
}

#[test]
fn empty_shard_merge_is_byte_identical_across_thread_counts() {
    let (serial_board, serial_snap) = run_with_empty_first_shard(None);
    let serial_trace = chrome_trace_json(&serial_snap);
    let serial_metrics = metrics_json(&serial_snap);
    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        let (board, snap) = run_with_empty_first_shard(Some(&pool));
        assert_eq!(
            serial_board.canonical_json(),
            board.canonical_json(),
            "threads={threads}: board differs"
        );
        assert_eq!(
            serial_trace,
            chrome_trace_json(&snap),
            "threads={threads}: trace differs"
        );
        assert_eq!(
            serial_metrics,
            metrics_json(&snap),
            "threads={threads}: metrics differ"
        );
    }
}
