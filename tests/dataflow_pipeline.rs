//! Integration: the §V-C pipeline — marshalled items from concurrent
//! sources through virtual data queues to consumers, with the workflow's
//! graph view assessed by fair-core.

use fair_workflows::dataflow::message::DataItem;
use fair_workflows::dataflow::policy::{DirectSelect, EveryN, ForwardAll, WindowCount};
use fair_workflows::dataflow::scheduler;
use fair_workflows::dataflow::source::{spawn_source, SourceConfig};
use fair_workflows::fair_core::prelude::*;

#[test]
fn wire_format_crosses_the_pipeline_intact() {
    let sched = scheduler::spawn();
    sched.install("all", Box::new(ForwardAll));
    let rx = sched.subscribe("all");
    // encode→decode at the boundary, as generated comm code would
    for seq in 0..500u64 {
        let item = DataItem::text(seq, "instrument", "frame.v1", &format!("payload-{seq}"));
        let wire = item.encode();
        let decoded = DataItem::decode(wire).unwrap();
        sched.send(decoded);
    }
    sched.shutdown();
    let items: Vec<DataItem> = rx.try_iter().collect();
    assert_eq!(items.len(), 500);
    assert!(items
        .iter()
        .enumerate()
        .all(|(i, item)| item.seq == i as u64 && item.payload == format!("payload-{i}")));
}

#[test]
fn four_policies_one_stream_consistent_counts() {
    let sched = scheduler::spawn();
    sched.install("all", Box::new(ForwardAll));
    sched.install("dec", Box::new(EveryN::new(7)));
    sched.install("win", Box::new(WindowCount::new(10)));
    sched.install("sel", Box::new(DirectSelect::new([100, 200, 300])));
    let rx_all = sched.subscribe("all");
    let rx_dec = sched.subscribe("dec");
    let rx_win = sched.subscribe("win");
    let rx_sel = sched.subscribe("sel");

    let h = spawn_source(SourceConfig::new("ins", 700), sched.data_sender());
    h.join().unwrap();
    sched.punctuate(None);
    let stats = sched.shutdown();

    assert_eq!(stats.received, 700);
    assert_eq!(rx_all.try_iter().count(), 700);
    assert_eq!(rx_dec.try_iter().count(), 100);
    let win: Vec<u64> = rx_win.try_iter().map(|i| i.seq).collect();
    assert_eq!(win, (690..700).collect::<Vec<_>>());
    let sel: Vec<u64> = rx_sel.try_iter().map(|i| i.seq).collect();
    assert_eq!(sel, vec![100, 200, 300]);
}

#[test]
fn workflow_graph_of_the_pipeline_detects_the_motif_and_gauges_it() {
    let port = |name: &str, explicit: bool| PortDescriptor {
        name: name.into(),
        data: if explicit {
            DataDescriptor {
                protocol: Some(AccessProtocol::Staged),
                interface: Some("fair-wire".into()),
                schema: Some(SchemaInfo::SelfDescribing {
                    container: "fair-wire".into(),
                }),
                semantics: vec![SemanticsAnnotation::OrderingSignificant],
                ..DataDescriptor::default()
            }
        } else {
            DataDescriptor::default()
        },
    };
    let mut g = WorkflowGraph::new();
    let mut ins = ComponentDescriptor::new("instrument", "1", ComponentKind::Service);
    ins.outputs.push(port("frames", true));
    let mut ds = ComponentDescriptor::new("data-scheduler", "1", ComponentKind::Service);
    ds.inputs.push(port("in", true));
    ds.outputs.push(port("out", true));
    ds.has_templates = true;
    let mut sink = ComponentDescriptor::new("consumer", "1", ComponentKind::Executable);
    sink.inputs.push(port("in", true));

    let a = g.add(ins);
    let b = g.add(ds);
    let c = g.add(sink);
    g.connect(a, "frames", b, "in").unwrap();
    g.connect(b, "out", c, "in").unwrap();

    let motifs = g.find_motifs();
    assert_eq!(motifs.len(), 1);
    assert_eq!(motifs[0].scheduler, b);

    // the self-describing wire format puts the whole pipeline at schema
    // tier 3 — the gauge property that makes the comm code generatable
    let profile = g.assess();
    assert!(profile.get(Gauge::DataSchema) >= Tier(3));
    assert!(profile.get(Gauge::DataSemantics) >= Tier(1));
}

#[test]
fn steering_informed_by_the_data_stream() {
    // "monitoring and steering inputs from outside the workflow which can
    // themselves be informed by the data flowing through the graph": a
    // monitor watches a sampled queue, spots an anomalous item, and
    // installs a direct selection around it — all while data flows.
    use fair_workflows::dataflow::policy::EveryN;
    let sched = fair_workflows::dataflow::scheduler::spawn();
    sched.install("archive", Box::new(WindowCount::new(10_000)));
    sched.install("monitor", Box::new(EveryN::new(50)));
    let monitor_rx = sched.subscribe("monitor");
    let steered_rx = sched.subscribe("archive");

    // phase 1: stream with one "anomaly" (payload marker) at seq 1234
    for s in 0..2000u64 {
        let payload = if s == 1234 { "ANOMALY" } else { "ok" };
        sched.send(DataItem::text(s, "ins", "frame", payload));
    }
    // the monitor (an outside process) inspects its sampled view; the
    // 50-sampling happens to include seq 1249, 1299… but not 1234 itself,
    // so it reacts to the *neighbourhood*: any sample past 1200 triggers
    sched.punctuate(Some("monitor"));
    sched.shutdown(); // joins: everything above is processed
    let sampled: Vec<u64> = monitor_rx.try_iter().map(|i| i.seq).collect();
    let trigger = sampled.iter().find(|&&s| s >= 1200).copied();
    assert!(
        trigger.is_some(),
        "monitor saw nothing past 1200: {sampled:?}"
    );

    // phase 2: a fresh scheduler session steered by what the monitor saw —
    // replay the archive window and select the anomaly's neighbourhood
    let sched2 = fair_workflows::dataflow::scheduler::spawn();
    sched2.install("focus", Box::new(DirectSelect::new([1233, 1234, 1235])));
    let focus_rx = sched2.subscribe("focus");
    sched2.punctuate(Some("archive")); // no-op: queue doesn't exist here
                                       // feed the archived window through the steering selection
    drop(steered_rx); // archive queue held everything; simulate replay:
    for s in 1000..1500u64 {
        let payload = if s == 1234 { "ANOMALY" } else { "ok" };
        sched2.send(DataItem::text(s, "replay", "frame", payload));
    }
    sched2.punctuate(Some("focus"));
    sched2.shutdown();
    let focused: Vec<DataItem> = focus_rx.try_iter().collect();
    assert_eq!(focused.len(), 3);
    assert_eq!(focused[1].seq, 1234);
    assert_eq!(&focused[1].payload[..], b"ANOMALY");
}

#[test]
fn steering_sequence_is_totally_ordered() {
    // install → data → swap → data → punctuate must behave identically
    // every time (the ordered-event-stream guarantee)
    for _ in 0..5 {
        let sched = scheduler::spawn();
        sched.install("q", Box::new(ForwardAll));
        let rx = sched.subscribe("q");
        for s in 0..50u64 {
            sched.send(DataItem::text(s, "i", "k", "p"));
        }
        sched.install("q", Box::new(WindowCount::new(3)));
        for s in 50..100u64 {
            sched.send(DataItem::text(s, "i", "k", "p"));
        }
        sched.punctuate(Some("q"));
        sched.shutdown();
        let got: Vec<u64> = rx.try_iter().map(|i| i.seq).collect();
        let mut expected: Vec<u64> = (0..50).collect();
        expected.extend([97, 98, 99]);
        assert_eq!(got, expected);
    }
}
