//! Golden fixtures and acceptance checks for the trace-analysis layer
//! (`telemetry::analysis` / `fair-report`).
//!
//! The same fixture campaigns as `golden_fixtures.rs`, but the committed
//! artifacts here are the *derived* reports: the human-readable
//! `fair-report` summary, the folded flamegraph stacks, and the
//! `fair-telemetry-digest/1` export. Regenerate after an intentional
//! behavior change with `UPDATE_FIXTURES=1 cargo test --test fair_report`.
//!
//! Acceptance properties pinned here (ISSUE 5):
//! * summary, digest, and folded-stack outputs are **byte-identical**
//!   at thread counts {1, 2, 8} and inline execution;
//! * a serial campaign's critical-path total equals the makespan the
//!   campaign report derives from the same events.

mod common;

use common::{
    expected_text, fixture_text_path, grid_manifest, ramp_durations, run_fixture_full, Fixture,
};
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::exec::ThreadPool;
use fair_workflows::hpcsim::batch::{AllocationSeries, BatchJob};
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::pilot::PilotScheduler;
use fair_workflows::savanna::run_campaign_sim_traced;
use fair_workflows::telemetry::{
    critical_path, digest_json, digests_from_model, folded_stacks, render_summary, DigestSet,
    SummaryOptions, Telemetry, TraceModel,
};

/// All three derived artifacts for one fixture execution.
fn derive(fixture: Fixture, pool: Option<&ThreadPool>) -> (String, String, String) {
    let (_, _, snapshot) = run_fixture_full(fixture, pool);
    let model = TraceModel::from_snapshot(&snapshot);
    let summary = render_summary(&model, &SummaryOptions::default());
    let folded = folded_stacks(&model);
    let digest = digest_json(&DigestSet::from_snapshot(&snapshot));
    (summary, folded, digest)
}

fn check(fixture: Fixture) {
    let (summary, folded, digest) = derive(fixture, None);
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::write(fixture_text_path(fixture, "summary"), &summary)
            .expect("write summary fixture");
        std::fs::write(fixture_text_path(fixture, "folded"), &folded)
            .expect("write folded fixture");
        return;
    }
    assert_eq!(
        summary,
        expected_text(fixture, "summary"),
        "{}: fair-report summary drifted from the committed fixture",
        fixture.name()
    );
    assert_eq!(
        folded,
        expected_text(fixture, "folded"),
        "{}: folded stacks drifted from the committed fixture",
        fixture.name()
    );
    assert!(
        digest.contains("\"schema\": \"fair-telemetry-digest/1\""),
        "{}: digest export lost its schema id",
        fixture.name()
    );
}

#[test]
fn sweep_report_matches_committed_golden() {
    check(Fixture::Sweep);
}

#[test]
fn faulty_report_matches_committed_golden() {
    check(Fixture::Faulty);
}

#[test]
fn checkpointed_report_matches_committed_golden() {
    check(Fixture::Checkpointed);
}

#[test]
fn reports_are_byte_identical_at_every_thread_count() {
    for fixture in Fixture::ALL {
        let inline = derive(fixture, None);
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            let pooled = derive(fixture, Some(&pool));
            assert_eq!(
                inline,
                pooled,
                "{}: derived reports differ at threads={threads}",
                fixture.name()
            );
        }
    }
}

#[test]
fn serial_critical_path_total_equals_campaign_makespan() {
    // a serial (unsharded) traced campaign: the critical path through
    // the trace must account for exactly the makespan the driver reports
    let manifest = grid_manifest("cp-serial", 9);
    let durations = ramp_durations(&manifest, 600, 240);
    let mut series = AllocationSeries::instant(BatchJob::new(8, SimDuration::from_hours(2)), 17);
    let mut board = StatusBoard::for_manifest(&manifest);
    let (tel, rec) = Telemetry::recording();
    let report = run_campaign_sim_traced(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        64,
        &tel,
    )
    .expect("durations modeled");
    assert!(report.is_complete());
    let model = TraceModel::from_snapshot(&rec.snapshot());
    let path = critical_path(&model);
    assert_eq!(
        path.total_us, report.total_span.0,
        "critical-path total must equal the reported campaign makespan"
    );
    // the phase attribution partitions the total exactly
    let phase_sum: u64 = path.phase_us.values().sum();
    assert_eq!(phase_sum, path.total_us);
}

#[test]
fn digests_from_model_match_snapshot_span_digests() {
    // the model-derived digests (what `fair-report --digest` serves) must
    // agree with digesting the snapshot directly for every span key
    let (_, _, snapshot) = run_fixture_full(Fixture::Faulty, None);
    let model = TraceModel::from_snapshot(&snapshot);
    let from_model = digests_from_model(&model);
    let from_snapshot = DigestSet::from_snapshot(&snapshot);
    for (key, digest) in from_model.iter() {
        assert_eq!(
            Some(digest),
            from_snapshot.get(key),
            "span digest for {key} differs between model and snapshot paths"
        );
    }
}
