//! Integration: the §V-A chain — JSON model → Skel generation → Cheetah
//! campaign spec → real staged-paste execution — agreeing with itself at
//! every step.

use fair_workflows::skel::{Model, PasteModel, PasteWorkflowFiles};
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("it-skel-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

#[test]
fn generated_campaign_spec_matches_plan_and_executes() {
    let dir = tempdir("e2e");
    // real input files
    let n_files = 20u32;
    let input_dir = dir.join("chunks");
    std::fs::create_dir_all(&input_dir).unwrap();
    for i in 0..n_files {
        let body: String = (0..30).map(|r| format!("f{i}r{r}\n")).collect();
        std::fs::write(input_dir.join(format!("part_{i:05}.tsv")), body).unwrap();
    }

    let mut model = PasteModel::example();
    model.dataset.input_dir = input_dir.display().to_string();
    model.dataset.prefix = "part_".into();
    model.dataset.num_files = n_files;
    model.dataset.output_file = dir.join("merged.tsv").display().to_string();
    model.strategy.fanout = 4;

    // generation
    let set = model.generate().unwrap();
    let written = set.write_to(dir.join("gen")).unwrap();
    assert!(written.iter().any(|p| p.ends_with("skel-manifest.json")));

    // the generated campaign JSON agrees with the programmatic plan
    let spec: serde_json::Value = serde_json::from_str(
        &set.file(PasteWorkflowFiles::CAMPAIGN_SPEC)
            .unwrap()
            .contents,
    )
    .unwrap();
    let plan = model.plan();
    let phases = spec["phases"].as_array().unwrap();
    assert_eq!(phases.len(), plan.phases.len());
    for (pi, phase) in phases.iter().enumerate() {
        let tasks = phase["tasks"].as_array().unwrap();
        assert_eq!(tasks.len(), plan.phases[pi].len(), "phase {pi}");
        for (ti, task) in tasks.iter().enumerate() {
            assert_eq!(task["output"].as_str().unwrap(), plan.phases[pi][ti].output);
            assert_eq!(
                task["inputs"].as_array().unwrap().len(),
                plan.phases[pi][ti].inputs.len()
            );
        }
    }

    // execute the plan for real via the tabular substrate and compare to
    // a one-shot paste
    let pool = fair_workflows::exec::ThreadPool::new(2);
    let inputs: Vec<PathBuf> = (0..n_files)
        .map(|i| input_dir.join(format!("part_{i:05}.tsv")))
        .collect();
    let staged_out = dir.join("staged.tsv");
    fair_workflows::tabular::staged_paste(&inputs, &staged_out, 4, &dir.join("work"), &pool)
        .unwrap();
    let single_out = dir.join("single.tsv");
    fair_workflows::tabular::paste::paste_files(&inputs, &single_out).unwrap();
    assert_eq!(
        std::fs::read_to_string(&staged_out).unwrap(),
        std::fs::read_to_string(&single_out).unwrap()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn regeneration_is_pure_and_fingerprinted() {
    let model = PasteModel::example();
    let a = model.generate().unwrap();
    let b = model.generate().unwrap();
    assert_eq!(a, b, "same model regenerates identical files");

    let mut changed = model.clone();
    changed.machine.walltime_mins += 1;
    let c = changed.generate().unwrap();
    assert_ne!(a.model_fingerprint, c.model_fingerprint);
}

#[test]
fn model_json_is_the_single_point_of_interaction() {
    // a user edits only the JSON; everything downstream follows
    let json = PasteModel::example().to_json();
    let mut value: serde_json::Value = serde_json::from_str(&json).unwrap();
    value["dataset"]["num_files"] = serde_json::json!(200);
    value["strategy"]["fanout"] = serde_json::json!(10);
    let edited = PasteModel::from_json(&value.to_string()).unwrap();
    let plan = edited.plan();
    assert_eq!(plan.phases[0].len(), 20);
    assert!(plan.max_fan_in() <= 10);
}

#[test]
fn skel_model_validates_against_declared_variables() {
    let model = PasteModel::example();
    let m = Model::from_serialize(&model).unwrap();
    m.validate(&PasteModel::config_variables()).unwrap();

    // a template-referenced path audit: every degree of freedom the
    // generator consumes is either a declared variable or derived plan data
    let generator = PasteModel::generator();
    let declared: Vec<String> = PasteModel::config_variables()
        .iter()
        .map(|v| v.name.clone())
        .collect();
    for path in generator.referenced_paths() {
        let ok = declared.contains(&path) || path.starts_with("plan.") || path == "plan";
        assert!(ok, "template references undeclared path {path:?}");
    }
}
