//! Differential harness for the live telemetry stream.
//!
//! The observability claim worth testing is not "a stream file exists"
//! but "the live view is the truth": a campaign that streams telemetry
//! to disk while recording in memory must produce a stream whose replay
//! is **byte-identical** (as `fair-telemetry-snapshot/1` JSON) to the
//! end-of-run recorder snapshot, across serial, resilient, and sharded
//! drivers, with and without a thread pool. And when the campaign is
//! `kill -9`'d mid-run, the recovered stream prefix must agree with the
//! durability journal's recovered prefix — the two append-only files
//! tell one story about how far the campaign got.

mod common;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use common::{grid_manifest, ramp_durations};
use fair_workflows::cheetah::journal::{recover, FsyncPolicy, JournalRecord};
use fair_workflows::cheetah::manifest::CampaignManifest;
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::exec::ThreadPool;
use fair_workflows::hpcsim::batch::BatchJob;
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::pilot::PilotScheduler;
use fair_workflows::savanna::resilience::{FaultPlan, ResiliencePolicy};
use fair_workflows::savanna::{
    attach_stream, run_campaign_resilient_journaled_traced, run_campaign_resilient_stream_traced,
    run_campaign_sim_par_stream_traced, run_campaign_sim_stream_traced, FaultSpec, JournalSpec,
    SeriesSpec, ShardPlan, StreamSpec,
};
use fair_workflows::telemetry::stream::StreamRecord;
use fair_workflows::telemetry::{
    read_stream, replay_stream, snapshot_json, ArgValue, LiveModel, SpanEvent, Telemetry,
};

const SEED: u64 = 41;

fn spath(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fair-stream-diff-{}-{tag}-{n}", std::process::id()))
}

fn faulty_inputs(runs: i64) -> (CampaignManifest, BTreeMap<String, SimDuration>) {
    let manifest = grid_manifest("stream-diff", runs);
    let durations = ramp_durations(&manifest, 900, 120);
    (manifest, durations)
}

fn faulty_policy() -> ResiliencePolicy {
    ResiliencePolicy {
        retry_budget: 3,
        backoff_base: SimDuration::from_mins(10),
        ..ResiliencePolicy::default()
    }
}

/// Hash-based run errors only: deterministic across rand builds.
fn faulty_plan() -> FaultPlan {
    FaultPlan {
        run_faults: FaultSpec::new(0.35, 23),
        node_mttf: None,
        stalls: None,
        seed: 23,
    }
}

/// The core differential: the stream's replay must equal the recorder's
/// end-of-run snapshot byte-for-byte, and the fold must headline the
/// same campaign state the board reports.
fn assert_stream_matches(label: &str, path: &Path, rec_snapshot_json: &str, board: &StatusBoard) {
    let scan = read_stream(path).expect("completed stream scans cleanly");
    assert!(scan.complete, "{label}: stream missing Complete record");
    assert_eq!(
        scan.torn_bytes, 0,
        "{label}: completed stream has a torn tail"
    );
    assert_eq!(
        snapshot_json(&replay_stream(&scan.records)),
        rec_snapshot_json,
        "{label}: stream replay differs from the end-of-run recorder snapshot"
    );

    let mut model = LiveModel::new();
    model.fold_all(&scan.records);
    let summary = board.summary();
    assert!(model.complete, "{label}: fold missed the Complete record");
    assert_eq!(
        model.runs_done(),
        summary.done as u64,
        "{label}: fold's runs-done disagrees with the StatusBoard"
    );
    assert_eq!(
        model.runs_timed_out(),
        summary.timed_out as u64,
        "{label}: fold's timed-out disagrees with the StatusBoard"
    );
    assert_eq!(
        model.runs_failed(),
        summary.failed as u64,
        "{label}: fold's failed disagrees with the StatusBoard"
    );
    assert_eq!(
        model.total_runs,
        Some(summary.total() as u64),
        "{label}: Meta total_runs disagrees with the StatusBoard"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn serial_sim_stream_replay_matches_recorder() {
    let manifest = grid_manifest("stream-serial", 12);
    let durations = ramp_durations(&manifest, 600, 180);
    let mut series = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(2))).build(SEED);
    let mut board = StatusBoard::for_manifest(&manifest);
    let (tel, rec) = Telemetry::recording();
    let path = spath("serial.stream");
    let outcome = run_campaign_sim_stream_traced(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        64,
        &tel,
        &StreamSpec::new(&path),
    )
    .expect("streamed serial campaign");
    assert!(outcome.stream.records > 0 && outcome.stream.bytes > 0);
    assert_stream_matches("serial sim", &path, &snapshot_json(&rec.snapshot()), &board);
}

#[test]
fn serial_resilient_stream_replay_matches_recorder() {
    let (manifest, durations) = faulty_inputs(10);
    let mut series = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(2))).build(SEED);
    let mut board = StatusBoard::for_manifest(&manifest);
    let (tel, rec) = Telemetry::recording();
    let path = spath("resilient.stream");
    run_campaign_resilient_stream_traced(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        64,
        &faulty_policy(),
        &faulty_plan(),
        &tel,
        &StreamSpec::new(&path),
    )
    .expect("streamed resilient campaign");
    assert_stream_matches(
        "serial resilient",
        &path,
        &snapshot_json(&rec.snapshot()),
        &board,
    );
}

#[test]
fn sharded_stream_replay_matches_recorder_inline_and_pooled() {
    for (label, pool) in [("inline", None), ("pool", Some(ThreadPool::new(3)))] {
        let manifest = grid_manifest("stream-par", 12);
        let durations = ramp_durations(&manifest, 600, 180);
        let spec = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(2)));
        let plan = ShardPlan::contiguous(manifest.total_runs(), 3);
        let mut board = StatusBoard::for_manifest(&manifest);
        let (tel, rec) = Telemetry::recording();
        let path = spath("par.stream");
        run_campaign_sim_par_stream_traced(
            &manifest,
            &durations,
            &PilotScheduler::new(),
            &spec,
            SEED,
            &mut board,
            64,
            &plan,
            pool.as_ref(),
            &tel,
            &StreamSpec::new(&path),
        )
        .expect("streamed sharded campaign");
        assert_stream_matches(
            &format!("par {label}"),
            &path,
            &snapshot_json(&rec.snapshot()),
            &board,
        );
    }
}

/// A streamed run and a recorder-only run of the same campaign must
/// leave the recorder with identical snapshots — the tee is observably
/// free at the event level.
#[test]
fn teed_stream_does_not_perturb_the_recording() {
    let manifest = grid_manifest("stream-inert", 8);
    let durations = ramp_durations(&manifest, 600, 180);

    let mut series = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(2))).build(SEED);
    let mut board = StatusBoard::for_manifest(&manifest);
    let (tel, rec) = Telemetry::recording();
    let path = spath("inert.stream");
    run_campaign_sim_stream_traced(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        64,
        &tel,
        &StreamSpec::new(&path),
    )
    .expect("streamed run");
    std::fs::remove_file(&path).ok();

    let mut series = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(2))).build(SEED);
    let mut board = StatusBoard::for_manifest(&manifest);
    let (tel, rec_plain) = Telemetry::recording();
    fair_workflows::savanna::run_campaign_sim_traced(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        64,
        &tel,
    )
    .expect("recorder-only run");

    assert_eq!(
        snapshot_json(&rec.snapshot()),
        snapshot_json(&rec_plain.snapshot()),
        "attaching a stream changed what the recorder observed"
    );
}

// ---------------------------------------------------------------------
// kill -9: the stream prefix must agree with the journal prefix
// ---------------------------------------------------------------------

const KILL_CHILD_ENV: &str = "FAIR_KILL_CHILD_STREAM";
const KILL_RUNS: i64 = 120;

fn kill_inputs() -> (CampaignManifest, BTreeMap<String, SimDuration>) {
    let manifest = grid_manifest("stream-kill9", KILL_RUNS);
    let durations = ramp_durations(&manifest, 900, 30);
    (manifest, durations)
}

/// Runs the resilient journaled campaign with a live stream attached:
/// journal fsyncs per record and the stream writes through, so a
/// `kill -9` leaves maximal durable prefixes in both files.
fn run_kill_campaign(base: &Path) {
    let (manifest, durations) = kill_inputs();
    let mut series = SeriesSpec::instant(BatchJob::new(8, SimDuration::from_hours(2))).build(SEED);
    let mut board = StatusBoard::for_manifest(&manifest);
    let journal = JournalSpec {
        path: base.with_extension("journal"),
        snapshot_every: 2,
        fsync: FsyncPolicy::PerRecord,
        crash: None,
    };
    let spec = StreamSpec::write_through(base.with_extension("stream"));
    let (tel, _rec) = Telemetry::recording();
    let sink = attach_stream(&manifest, &tel, &spec).expect("attach stream");
    run_campaign_resilient_journaled_traced(
        &manifest,
        &durations,
        &PilotScheduler::new(),
        &mut series,
        &mut board,
        64,
        &faulty_policy(),
        &faulty_plan(),
        &journal,
        &tel,
        &Telemetry::disabled(),
    )
    .expect("kill campaign");
    sink.finish().expect("finish stream");
}

/// `(epoch index, completed, timed_out)` from the journal's durable
/// prefix, in append order.
fn journal_epochs(records: &[JournalRecord]) -> Vec<(u64, u64, u64)> {
    records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Epoch {
                index,
                completed,
                timed_out,
                ..
            } => Some((*index, *completed, *timed_out)),
            _ => None,
        })
        .collect()
}

fn span_arg(span: &SpanEvent, name: &str) -> Option<u64> {
    span.args.iter().find_map(|(n, v)| match v {
        ArgValue::UInt(u) if *n == name => Some(*u),
        _ => None,
    })
}

/// The same triples from the stream's valid prefix: allocation spans
/// named `alloc-{index}` carrying `completed`/`timed_out` args.
fn stream_epochs(records: &[StreamRecord]) -> Vec<(u64, u64, u64)> {
    records
        .iter()
        .filter_map(|r| match r {
            StreamRecord::Span(span) if span.category == "allocation" => Some((
                span.name
                    .strip_prefix("alloc-")
                    .and_then(|i| i.parse::<u64>().ok())
                    .expect("allocation span named alloc-{index}"),
                span_arg(span, "completed").unwrap_or(0),
                span_arg(span, "timed_out").unwrap_or(0),
            )),
            _ => None,
        })
        .collect()
}

/// The child half of the `kill -9` test: a no-op (instant pass) in a
/// normal test run; only the re-invoked child executes the body.
#[test]
fn stream_kill_child_campaign() {
    let Ok(base) = std::env::var(KILL_CHILD_ENV) else {
        return;
    };
    run_kill_campaign(Path::new(&base));
}

#[test]
fn kill_nine_stream_prefix_agrees_with_journal_prefix() {
    use std::process::{Command, Stdio};

    let base = spath("kill9");
    let stream_path = base.with_extension("stream");
    let journal_path = base.with_extension("journal");
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(&exe)
        .args(["stream_kill_child_campaign", "--exact", "--nocapture"])
        .env(KILL_CHILD_ENV, &base)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child campaign");

    // let both files grow past a threshold, then kill without warning
    let start = std::time::Instant::now();
    let mut child_finished = false;
    loop {
        if let Ok(Some(_)) = child.try_wait() {
            child_finished = true;
            break;
        }
        let slen = std::fs::metadata(&stream_path)
            .map(|m| m.len())
            .unwrap_or(0);
        let jlen = std::fs::metadata(&journal_path)
            .map(|m| m.len())
            .unwrap_or(0);
        if slen >= 16 * 1024 && jlen >= 16 * 1024 {
            break;
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(120),
            "child campaign never grew the stream+journal past the threshold"
        );
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    if !child_finished {
        child.kill().expect("kill -9 the child");
    }
    let _ = child.wait();
    if child_finished {
        eprintln!(
            "kill -9 stream test note: child completed before the kill; \
             comparing the complete files instead"
        );
    }

    // both recoveries must be total: torn tails, never panics
    let journal = recover(&journal_path).expect("journal recovers after kill -9");
    let scan = read_stream(&stream_path).expect("stream scans after kill -9");

    // the two append-only files must tell the same epoch story on their
    // shared prefix; either may be at most in-flight epochs ahead
    let jepochs = journal_epochs(&journal.records);
    let sepochs = stream_epochs(&scan.records);
    let shared = jepochs.len().min(sepochs.len());
    assert!(
        child_finished || shared > 0,
        "kill -9 left no shared epoch prefix to compare"
    );
    assert_eq!(
        &jepochs[..shared],
        &sepochs[..shared],
        "journal and stream disagree on the shared epoch prefix"
    );

    // the journal's recovered board must account for at least every run
    // the stream's shared prefix saw finish
    let shared_done: u64 = sepochs[..shared].iter().map(|(_, c, _)| *c).sum();
    let shared_timed_out: u64 = sepochs[..shared].iter().map(|(_, _, t)| *t).sum();
    let summary = journal.board.summary();
    assert!(
        (summary.done + summary.timed_out) as u64 >= shared_done + shared_timed_out,
        "journal board ({} settled) lags the stream's shared prefix ({})",
        summary.done + summary.timed_out,
        shared_done + shared_timed_out
    );

    // and the fold of the recovered stream prefix reports exactly what
    // the prefix contains
    let mut model = LiveModel::new();
    model.fold_all(&scan.records);
    assert_eq!(model.campaign.as_deref(), Some("stream-kill9"));
    assert_eq!(model.total_runs, Some(KILL_RUNS as u64));
    assert_eq!(
        model.epochs.completed,
        sepochs.iter().map(|(_, c, _)| *c).sum::<u64>()
    );
    if child_finished {
        assert!(
            scan.complete,
            "uninterrupted child must Complete its stream"
        );
    }

    std::fs::remove_file(&stream_path).ok();
    std::fs::remove_file(&journal_path).ok();
}
