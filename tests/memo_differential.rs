//! Warm/cold differential harness for content-addressed memoization.
//!
//! The memoization contract (ISSUE 9) is *byte-identity*: a campaign
//! replayed against a warm store must produce exactly the bytes a cold
//! execution produces — same `StatusBoard` canonical JSON, same metrics
//! export, same `fair-telemetry-digest/1` document — while executing
//! zero runs when every spec hits. These tests prove the contract over
//! the fixture corpus (sweep, faulty, checkpointed), across the serial
//! and `_par` drivers, for fully-warm, partially-warm (one edited
//! duration, one appended sweep point), and corrupted-store replays.

mod common;

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use common::{
    fixture_inputs, grid_manifest, ramp_durations, run_fixture_memo, run_memo_campaign, Fixture,
};
use fair_workflows::cheetah::status::StatusBoard;
use fair_workflows::exec::ThreadPool;
use fair_workflows::hpcsim::batch::BatchJob;
use fair_workflows::hpcsim::time::SimDuration;
use fair_workflows::savanna::pilot::PilotScheduler;
use fair_workflows::savanna::{
    run_campaign_sim_memo_par_traced, MemoCampaignReport, MemoConfig, SeriesSpec,
};
use fair_workflows::telemetry::{digest_json, DigestSet, Snapshot, Telemetry};

/// A unique scratch store path per call (parallel test binaries share
/// the temp dir, so the name folds in the pid).
fn scratch_store(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "fair-memo-diff-{}-{tag}-{n}.cas",
        std::process::id()
    ))
}

/// The three byte-level artifacts the differential compares.
fn artifacts(board: &StatusBoard, metrics: &str, snapshot: &Snapshot) -> (String, String, String) {
    (
        board.canonical_json(),
        metrics.to_string(),
        digest_json(&DigestSet::from_snapshot(snapshot)),
    )
}

/// Asserts two memo executions produced byte-identical outputs.
fn assert_identical(
    label: &str,
    cold: &(StatusBoard, String, Snapshot, MemoCampaignReport),
    warm: &(StatusBoard, String, Snapshot, MemoCampaignReport),
) {
    let (cb, cm, cd) = artifacts(&cold.0, &cold.1, &cold.2);
    let (wb, wm, wd) = artifacts(&warm.0, &warm.1, &warm.2);
    assert_eq!(cb, wb, "{label}: board canonical JSON diverged");
    assert_eq!(cm, wm, "{label}: metrics export diverged");
    assert_eq!(cd, wd, "{label}: telemetry digest diverged");
}

#[test]
fn every_fixture_fully_warm_rerun_is_byte_identical_and_executes_nothing() {
    for fixture in Fixture::ALL {
        let store = scratch_store(fixture.name());
        let cold = run_fixture_memo(fixture, &store, None);
        assert_eq!(
            cold.3.cached_runs,
            0,
            "{}: a fresh store cannot hit",
            fixture.name()
        );
        assert_eq!(cold.3.executed_runs, cold.3.runs.len());
        assert!(cold.3.is_complete(), "{}: fixtures finish", fixture.name());

        let warm = run_fixture_memo(fixture, &store, None);
        assert_eq!(
            warm.3.executed_runs,
            0,
            "{}: a fully-warm rerun must execute nothing",
            fixture.name()
        );
        assert!(warm.3.fully_cached(), "{}", fixture.name());
        assert_identical(fixture.name(), &cold, &warm);

        // the provenance DAG must agree run-for-run on keys and digests,
        // differing only in the cached flag
        for (c, w) in cold.3.runs.iter().zip(warm.3.runs.iter()) {
            assert_eq!(c.run_id, w.run_id);
            assert_eq!(c.key, w.key, "{}: cache key unstable", fixture.name());
            assert!(!c.cached && w.cached);
        }
        std::fs::remove_file(&store).ok();
    }
}

#[test]
fn parallel_and_serial_memo_drivers_agree_warm_and_cold() {
    let pool = ThreadPool::new(4);
    for fixture in Fixture::ALL {
        let serial_store = scratch_store("serial");
        let par_store = scratch_store("par");
        let cold_serial = run_fixture_memo(fixture, &serial_store, None);
        let cold_par = run_fixture_memo(fixture, &par_store, Some(&pool));
        assert_identical(fixture.name(), &cold_serial, &cold_par);

        // warm across drivers: serial store replayed by the pooled
        // driver and vice versa — the cache is layout-independent
        let warm_cross = run_fixture_memo(fixture, &serial_store, Some(&pool));
        assert_eq!(warm_cross.3.executed_runs, 0);
        assert_identical(fixture.name(), &cold_serial, &warm_cross);
        let warm_cross2 = run_fixture_memo(fixture, &par_store, None);
        assert_eq!(warm_cross2.3.executed_runs, 0);
        assert_identical(fixture.name(), &cold_par, &warm_cross2);
        std::fs::remove_file(&serial_store).ok();
        std::fs::remove_file(&par_store).ok();
    }
}

#[test]
fn editing_one_duration_reexecutes_exactly_that_run() {
    let store = scratch_store("edit");
    let (manifest, mut durations) = fixture_inputs(Fixture::Sweep);
    let cold = run_memo_campaign(Fixture::Sweep, &manifest, &durations, &store, None);
    assert_eq!(cold.3.executed_runs, manifest.total_runs());

    // lengthen one mid-sweep run by a second: its key must change, and
    // only its key
    let edited_id = cold.3.runs[5].run_id.clone();
    let bumped = SimDuration(durations[&edited_id].0 + 1_000_000);
    durations.insert(edited_id.clone(), bumped);

    let warm = run_memo_campaign(Fixture::Sweep, &manifest, &durations, &store, None);
    assert_eq!(warm.3.executed_runs, 1, "exactly the edited run re-runs");
    assert_eq!(warm.3.cached_runs, manifest.total_runs() - 1);
    let executed: Vec<&str> = warm
        .3
        .runs
        .iter()
        .filter(|r| !r.cached)
        .map(|r| r.run_id.as_str())
        .collect();
    assert_eq!(executed, vec![edited_id.as_str()]);

    // the hit set is exactly the unchanged runs, key-for-key
    let cold_keys: BTreeSet<(&str, &str)> = cold
        .3
        .runs
        .iter()
        .filter(|r| r.run_id != edited_id)
        .map(|r| (r.run_id.as_str(), r.key.as_str()))
        .collect();
    let warm_hits: BTreeSet<(&str, &str)> = warm
        .3
        .runs
        .iter()
        .filter(|r| r.cached)
        .map(|r| (r.run_id.as_str(), r.key.as_str()))
        .collect();
    assert_eq!(cold_keys, warm_hits);

    // and the partially-warm output is byte-identical to a cold run of
    // the *edited* campaign
    let fresh_store = scratch_store("edit-fresh");
    let fresh = run_memo_campaign(Fixture::Sweep, &manifest, &durations, &fresh_store, None);
    assert_identical("edited sweep", &fresh, &warm);
    std::fs::remove_file(&store).ok();
    std::fs::remove_file(&fresh_store).ok();
}

#[test]
fn extending_the_sweep_reuses_every_existing_run() {
    let store = scratch_store("extend");
    let (manifest12, durations12) = fixture_inputs(Fixture::Sweep);
    let cold12 = run_memo_campaign(Fixture::Sweep, &manifest12, &durations12, &store, None);
    assert_eq!(cold12.3.executed_runs, 12);

    // the same sweep with one more grid point: the first twelve specs
    // (ids, params, durations, seed derivations) are unchanged
    let manifest13 = grid_manifest("fixture-sweep", 13);
    let durations13 = ramp_durations(&manifest13, 600, 180);
    let warm13 = run_memo_campaign(Fixture::Sweep, &manifest13, &durations13, &store, None);
    assert_eq!(warm13.3.cached_runs, 12, "every old point must hit");
    assert_eq!(warm13.3.executed_runs, 1, "only the new point runs");
    let new_run = warm13.3.runs.iter().find(|r| !r.cached).expect("one miss");
    assert!(
        cold12.3.runs.iter().all(|r| r.run_id != new_run.run_id),
        "the miss must be the appended sweep point"
    );

    let fresh_store = scratch_store("extend-fresh");
    let fresh13 = run_memo_campaign(
        Fixture::Sweep,
        &manifest13,
        &durations13,
        &fresh_store,
        None,
    );
    assert_identical("extended sweep", &fresh13, &warm13);
    std::fs::remove_file(&store).ok();
    std::fs::remove_file(&fresh_store).ok();
}

#[test]
fn a_poisoned_store_is_a_cache_miss_not_an_error() {
    let store = scratch_store("poison");
    let cold = run_fixture_memo(Fixture::Sweep, &store, None);
    assert_eq!(cold.3.executed_runs, 12);

    // flip one byte mid-file: the CRC layer must demote every frame it
    // can no longer trust to a miss, never to an error or a panic
    let mut bytes = std::fs::read(&store).expect("store exists after cold run");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&store, &bytes).expect("rewrite poisoned store");

    let warm = run_fixture_memo(Fixture::Sweep, &store, None);
    assert!(
        warm.3.executed_runs >= 1,
        "damaged frames must re-execute, got {} executed",
        warm.3.executed_runs
    );
    assert_identical("poisoned sweep", &cold, &warm);

    // re-executed puts repair the store: the next replay is fully warm
    let healed = run_fixture_memo(Fixture::Sweep, &store, None);
    assert_eq!(healed.3.executed_runs, 0, "repair must restore full hits");
    assert_identical("healed sweep", &cold, &healed);
    std::fs::remove_file(&store).ok();
}

#[test]
fn stochastic_series_memoize_byte_identically_once_acknowledged() {
    // queue-wait draws come from `rand`: memoizing them requires the
    // explicit FW208 opt-in, after which the seeded streams are still
    // deterministic within a build and the differential must hold
    let store = scratch_store("stochastic");
    let manifest = grid_manifest("stochastic-sweep", 6);
    let durations = ramp_durations(&manifest, 600, 300);
    let spec = SeriesSpec::new(
        BatchJob::new(8, SimDuration::from_hours(2)),
        SimDuration::from_mins(5),
        0.5,
    );
    let run = || {
        let (tel, rec) = Telemetry::recording();
        let mut board = StatusBoard::for_manifest(&manifest);
        let report = run_campaign_sim_memo_par_traced(
            &manifest,
            &durations,
            &PilotScheduler::new(),
            &spec,
            41,
            &mut board,
            64,
            &MemoConfig::new(&store).acknowledge_rand_nondeterminism(),
            None,
            &tel,
        )
        .expect("acknowledged stochastic campaign runs");
        let snapshot = rec.snapshot();
        let metrics = fair_workflows::telemetry::metrics_json(&snapshot);
        (board, metrics, snapshot, report)
    };
    let cold = run();
    assert_eq!(cold.3.executed_runs, 6);
    let warm = run();
    assert_eq!(warm.3.executed_runs, 0);
    assert!(warm.3.fully_cached());
    assert_identical("stochastic sweep", &cold, &warm);
    std::fs::remove_file(&store).ok();
}
