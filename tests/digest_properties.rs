//! Property tests for the streaming quantile digest
//! (`telemetry::digest`): merge algebra, shard-merge byte identity, and
//! the documented rank-error bound.
//!
//! The digest exists so per-shard recorders can summarize durations
//! independently and the merge is *exact* — fixed log-bucket boundaries
//! mean merging shard digests and digesting the concatenated stream are
//! the same object, byte for byte. These properties are what make the
//! `fair-telemetry-digest/1` export deterministic under any shard plan.

use fair_workflows::telemetry::digest::RELATIVE_ERROR;
use fair_workflows::telemetry::{digest_json, Digest, DigestSet, Snapshot, SpanEvent};
use proptest::prelude::*;

fn digest_of(values: &[u64]) -> Digest {
    let mut d = Digest::new();
    for &v in values {
        d.observe(v);
    }
    d
}

/// Builds a snapshot holding one `"attempt"` span per duration plus a
/// counter, mimicking what one shard's recorder produces.
fn snapshot_of(durs: &[u64], counter: f64) -> Snapshot {
    let mut snap = Snapshot::default();
    for (i, &d) in durs.iter().enumerate() {
        snap.spans.push(SpanEvent {
            category: "attempt",
            name: format!("run-{i}"),
            track: 0,
            start_us: 10 * i as u64,
            dur_us: d,
            args: vec![],
        });
    }
    snap.counters.insert("retries".to_string(), counter);
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..1_000_000, 0..50),
        b in proptest::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let (da, db) = (digest_of(&a), digest_of(&b));
        let mut ab = da.clone();
        ab.merge_from(&db);
        let mut ba = db.clone();
        ba.merge_from(&da);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative_and_equals_single_feed(
        a in proptest::collection::vec(0u64..1_000_000, 0..40),
        b in proptest::collection::vec(0u64..1_000_000, 0..40),
        c in proptest::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let (da, db, dc) = (digest_of(&a), digest_of(&b), digest_of(&c));
        // (a + b) + c
        let mut left = da.clone();
        left.merge_from(&db);
        left.merge_from(&dc);
        // a + (b + c)
        let mut right_inner = db.clone();
        right_inner.merge_from(&dc);
        let mut right = da.clone();
        right.merge_from(&right_inner);
        prop_assert_eq!(&left, &right);
        // both equal the digest of the concatenated stream
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &digest_of(&all));
    }

    #[test]
    fn shard_merge_is_byte_identical_to_single_recorder(
        a in proptest::collection::vec(1u64..10_000_000, 1..40),
        b in proptest::collection::vec(1u64..10_000_000, 0..40),
        ca in 0f64..100.0,
        cb in 0f64..100.0,
    ) {
        let (sa, sb) = (snapshot_of(&a, ca.round()), snapshot_of(&b, cb.round()));
        // shard path: digest each shard snapshot, merge the sets
        let mut sharded = DigestSet::from_snapshot(&sa);
        sharded.merge_from(&DigestSet::from_snapshot(&sb));
        // single-recorder path: digest both parts as one stream
        let single = DigestSet::from_parts(&[&sa, &sb]);
        prop_assert_eq!(digest_json(&sharded), digest_json(&single));
    }

    #[test]
    fn quantile_error_stays_within_documented_bound(
        mut values in proptest::collection::vec(0u64..100_000_000, 1..120),
        q in 0f64..=1.0,
    ) {
        let digest = digest_of(&values);
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let estimate = digest.quantile(q).expect("non-empty digest");
        let bound = exact as f64 * RELATIVE_ERROR;
        prop_assert!(
            (estimate as f64 - exact as f64).abs() <= bound,
            "q={} exact={} estimate={} bound={}",
            q, exact, estimate, bound
        );
    }

    #[test]
    fn count_sum_min_max_are_exact(
        values in proptest::collection::vec(0u64..1_000_000, 1..80),
    ) {
        let digest = digest_of(&values);
        prop_assert_eq!(digest.count(), values.len() as u64);
        prop_assert_eq!(digest.sum(), values.iter().map(|&v| u128::from(v)).sum::<u128>());
        prop_assert_eq!(digest.min(), values.iter().min().copied());
        prop_assert_eq!(digest.max(), values.iter().max().copied());
    }
}
