#!/usr/bin/env bash
# Offline CI: the checks every change must pass before it lands.
#
#   1. cargo fmt --check            — formatting is canonical
#   2. cargo check --all-targets    — everything compiles (stubbed deps)
#   3. cargo clippy -- -D warnings  — zero clippy findings, including the
#                                     workspace lint policy (unwrap_used,
#                                     dbg_macro, missing_docs)
#
# Steps 2 and 3 run through devtools/offline-check.sh, so the whole script
# works with no network and no registry access. With a warm registry,
# `cargo build --release && cargo test -q` remains the authoritative gate.
set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO"

echo "== ci: cargo fmt --check =="
cargo fmt --check

echo "== ci: offline check + clippy =="
"$REPO/devtools/offline-check.sh" clippy

# Fault-injection smoke: drive a seeded campaign through node crashes,
# run errors, and checkpoint-aware restart, asserting the rework
# advantage. Needs real (non-stubbed) dependencies, so it only runs when
# a full build is possible; offline it is reported and skipped.
echo "== ci: fault-injection smoke =="
if cargo build -q --release -p bench --bin resilience_ablation 2>/dev/null; then
    cargo run -q --release -p bench --bin resilience_ablation
else
    echo "skipped: registry offline — run 'cargo run --release -p bench --bin resilience_ablation' with a warm registry"
fi

# Telemetry smoke: regenerate the three seeded baseline scenarios and
# verify (a) two in-memory generations are byte-identical, (b) the
# exports carry the schema ids declared in devtools/schemas/, and
# (c) the metric key sets match the committed results/BENCH_*.json.
# Key sets (not values) are compared because counter values depend on
# the rand implementation, which differs between the real build and the
# offline stub build. The telemetry_baselines bin needs nothing beyond
# the functional rand stub at runtime, so offline it runs from the
# shadow workspace offline-check.sh just built.
echo "== ci: telemetry smoke =="
if cargo build -q --release -p bench --bin telemetry_baselines 2>/dev/null; then
    cargo run -q --release -p bench --bin telemetry_baselines -- --check results devtools/schemas
else
    (cd "$REPO/target/offline-check" &&
        CARGO_NET_OFFLINE=true cargo run -q --release --offline -p bench --bin telemetry_baselines -- \
            --check "$REPO/results" "$REPO/devtools/schemas")
fi

# Parallel-determinism smoke: execute a sharded campaign serially
# (inline, no pool) and on thread pools of 1 and 4 workers, with and
# without fault injection, and byte-compare the canonical StatusBoard
# JSON and the telemetry metric exports. Any scheduling leak into
# observable output fails the diff. Like the telemetry smoke, the bin
# is runnable from the shadow workspace when the registry is offline.
echo "== ci: parallel-determinism smoke =="
if cargo build -q --release -p bench --bin campaign_parallel 2>/dev/null; then
    cargo run -q --release -p bench --bin campaign_parallel -- --smoke
else
    (cd "$REPO/target/offline-check" &&
        CARGO_NET_OFFLINE=true cargo run -q --release --offline -p bench --bin campaign_parallel -- --smoke)
fi

# Report smoke: run a small seeded campaign, export its trace, and feed
# it through fair-report — summary, digest, and flamegraph. Checks:
# (a) the digest export carries the schema id declared in
#     devtools/schemas/telemetry-digest.schema.json,
# (b) the flamegraph (folded-stack) export is non-empty,
# (c) all three derived outputs are byte-stable across two generations.
# Both bins are rand-free at runtime, so offline they run from the
# shadow workspace offline-check.sh just built.
echo "== ci: report smoke =="
SMOKE_DIR="$REPO/target/report-smoke"
rm -rf "$SMOKE_DIR" && mkdir -p "$SMOKE_DIR"
run_report_bin() {
    local bin="$1"
    shift
    if cargo build -q --release -p bench --bin "$bin" 2>/dev/null; then
        cargo run -q --release -p bench --bin "$bin" -- "$@"
    else
        (cd "$REPO/target/offline-check" &&
            CARGO_NET_OFFLINE=true cargo run -q --release --offline -p bench --bin "$bin" -- "$@")
    fi
}
for gen in 1 2; do
    run_report_bin report_smoke "$SMOKE_DIR/trace$gen.json"
    run_report_bin fair-report "$SMOKE_DIR/trace$gen.json" >"$SMOKE_DIR/summary$gen.txt"
    run_report_bin fair-report --digest "$SMOKE_DIR/trace$gen.json" >"$SMOKE_DIR/digest$gen.json"
    run_report_bin fair-report --flamegraph "$SMOKE_DIR/trace$gen.json" >"$SMOKE_DIR/folded$gen.txt"
done
grep -q '"\$id": "fair-telemetry-digest/1"' "$REPO/devtools/schemas/telemetry-digest.schema.json" ||
    { echo "report smoke: schema stub missing its \$id"; exit 1; }
grep -q '"schema": "fair-telemetry-digest/1"' "$SMOKE_DIR/digest1.json" ||
    { echo "report smoke: digest export lacks the declared schema id"; exit 1; }
test -s "$SMOKE_DIR/folded1.txt" ||
    { echo "report smoke: flamegraph export is empty"; exit 1; }
for artifact in summary digest folded; do
    ext=txt; [ "$artifact" = digest ] && ext=json
    cmp -s "$SMOKE_DIR/${artifact}1.$ext" "$SMOKE_DIR/${artifact}2.$ext" ||
        { echo "report smoke: $artifact not byte-stable across two runs"; exit 1; }
done
echo "report smoke: OK"

# Lint-corpus gate: the fair-lint CLI over (a) the clean example bundles
# in examples/campaigns/ — must exit 0 with zero findings — and (b) the
# seeded defect corpus in tests/fixtures/lint-corpus/ — every fixture
# must exit 1 and its --json output must be byte-identical to the
# committed golden. The deny flags promote the corpus's warn-level
# findings so every fixture fails the gate on its own. Regenerate
# goldens after an intentional rule change with UPDATE_FIXTURES=1.
# The CLI reads JSON with telemetry::jsonin and writes its own renderer,
# so it runs from the stub-built shadow workspace offline.
echo "== ci: lint corpus =="
run_fair_lint() {
    if cargo build -q --release -p fair-lint --bin fair-lint 2>/dev/null; then
        cargo run -q --release -p fair-lint --bin fair-lint -- "$@"
    else
        (cd "$REPO/target/offline-check" &&
            CARGO_NET_OFFLINE=true cargo run -q --release --offline -p fair-lint --bin fair-lint -- "$@")
    fi
}
CORPUS_FLAGS=(--json --deny FW401 --deny FW403 --deny FW404 --deny FW406 --deny FW408)
for bundle in "$REPO"/examples/campaigns/*.json; do
    if ! run_fair_lint --json "$bundle" >"$REPO/target/lint-corpus-out.json"; then
        echo "lint corpus: clean example $(basename "$bundle") did not exit 0"
        exit 1
    fi
    [ "$(cat "$REPO/target/lint-corpus-out.json")" = "[]" ] ||
        { echo "lint corpus: clean example $(basename "$bundle") has findings"; exit 1; }
done
for bundle in "$REPO"/tests/fixtures/lint-corpus/*.json; do
    case "$bundle" in *.expected.json) continue ;; esac
    golden="${bundle%.json}.expected.json"
    status=0
    run_fair_lint "${CORPUS_FLAGS[@]}" "$bundle" >"$REPO/target/lint-corpus-out.json" || status=$?
    if [ "$status" -ne 1 ]; then
        echo "lint corpus: $(basename "$bundle") exited $status (want 1)"
        exit 1
    fi
    if [ "${UPDATE_FIXTURES:-0}" = 1 ]; then
        cp "$REPO/target/lint-corpus-out.json" "$golden"
        echo "updated $(basename "$golden")"
    elif ! cmp -s "$REPO/target/lint-corpus-out.json" "$golden"; then
        echo "lint corpus: $(basename "$bundle") diverged from its golden (UPDATE_FIXTURES=1 to regen):"
        diff "$golden" "$REPO/target/lint-corpus-out.json" || true
        exit 1
    fi
done
echo "lint corpus: OK"

# Crash-durability gate, three layers (README "Durability & recovery"):
# (a) --smoke: run a journaled resilient campaign in a child process,
#     kill -9 it mid-write, recover + resume, and byte-compare board
#     JSON, metrics export, resilience report, and journal bytes
#     against an uninterrupted run;
# (b) --check: the committed results/BENCH_journal_overhead.json keeps
#     the expected metric key set (values are wall-clock and
#     machine-dependent, so only keys are diffed);
# (c) the journal wire-format goldens in tests/fixtures/journal/ —
#     framing bytes and recovered-board JSON must match the committed
#     fixtures byte-for-byte (UPDATE_FIXTURES=1 regenerates after an
#     intentional format change).
# All three are rand-stub-safe at runtime, so offline they run from the
# shadow workspace offline-check.sh just built.
echo "== ci: crash-durability smoke =="
run_journal_bin() {
    if cargo build -q --release -p bench --bin journal_overhead 2>/dev/null; then
        cargo run -q --release -p bench --bin journal_overhead -- "$@"
    else
        (cd "$REPO/target/offline-check" &&
            CARGO_NET_OFFLINE=true cargo run -q --release --offline -p bench --bin journal_overhead -- "$@")
    fi
}
run_journal_bin --smoke
run_journal_bin --check "$REPO/results"
if cargo build -q --tests 2>/dev/null; then
    UPDATE_FIXTURES="${UPDATE_FIXTURES:-0}" cargo test -q --test journal_framing_goldens
else
    (cd "$REPO/target/offline-check" &&
        JOURNAL_FIXTURE_DIR="$REPO/tests/fixtures/journal" UPDATE_FIXTURES="${UPDATE_FIXTURES:-0}" \
            CARGO_NET_OFFLINE=true cargo test -q --offline --test journal_framing_goldens)
fi
echo "crash durability: OK"

# Perf-smoke gate, two layers (EXPERIMENTS.md "Event-core rebuild"):
# (a) event_core --smoke: run the calendar-queue event core and the
#     reference BinaryHeap engine through identical churn programs and
#     fail on any divergence in handled count, order-sensitive
#     checksum, or final clock (the cheap always-on complement to the
#     proptest differential in crates/hpcsim/tests/);
# (b) campaign_parallel --check: the committed
#     results/BENCH_campaign_parallel.json keeps its metric key set AND
#     every par_t{N}.speedup_vs_inline stays >= 0.95 — the invariant
#     that the shard handoff never again costs the parallel path more
#     than 5% against inline sharding (event_core --check guards the
#     same key-set invariant for BENCH_event_core.json).
# Both bins are rand-free at runtime, so offline they run from the
# shadow workspace offline-check.sh just built.
echo "== ci: perf smoke =="
run_perf_bin() {
    local bin="$1"
    shift
    if cargo build -q --release -p bench --bin "$bin" 2>/dev/null; then
        cargo run -q --release -p bench --bin "$bin" -- "$@"
    else
        (cd "$REPO/target/offline-check" &&
            CARGO_NET_OFFLINE=true cargo run -q --release --offline -p bench --bin "$bin" -- "$@")
    fi
}
run_perf_bin event_core --smoke
run_perf_bin event_core --check "$REPO/results"
run_perf_bin campaign_parallel --check "$REPO/results"
echo "perf smoke: OK"

# Memoization gate, three layers (README "Provenance & memoization"):
# (a) memo_overhead --smoke: cold-execute a checkpointed campaign into a
#     fresh content-addressed store, replay it warm, and fail unless the
#     warm replay executes zero runs with a byte-identical StatusBoard;
# (b) memo_overhead --check: the committed
#     results/BENCH_memo_overhead.json keeps its metric key set AND the
#     two contractual gates hold on a fresh measurement — warm replays
#     execute nothing at >= 10x over cold, cold bookkeeping stays
#     within 50% of the un-memoized baseline;
# (c) the warm/cold differential + hash-stability goldens in
#     tests/memo_differential.rs and tests/memo_goldens.rs — cache keys
#     and the fair-provenance/1 DAG export must match the committed
#     fixtures byte-for-byte (UPDATE_FIXTURES=1 regenerates after an
#     intentional schema change).
# All layers are rand-stub-safe at runtime (instant series, hash-based
# faults), so offline they run from the shadow workspace.
echo "== ci: memo smoke =="
run_memo_bin() {
    if cargo build -q --release -p bench --bin memo_overhead 2>/dev/null; then
        cargo run -q --release -p bench --bin memo_overhead -- "$@"
    else
        (cd "$REPO/target/offline-check" &&
            CARGO_NET_OFFLINE=true cargo run -q --release --offline -p bench --bin memo_overhead -- "$@")
    fi
}
run_memo_bin --smoke
run_memo_bin --check "$REPO/results"
if cargo build -q --tests 2>/dev/null; then
    UPDATE_FIXTURES="${UPDATE_FIXTURES:-0}" cargo test -q --test memo_differential
    UPDATE_FIXTURES="${UPDATE_FIXTURES:-0}" cargo test -q --test memo_goldens
else
    (cd "$REPO/target/offline-check" &&
        UPDATE_FIXTURES="${UPDATE_FIXTURES:-0}" CARGO_NET_OFFLINE=true \
            cargo test -q --offline --test memo_differential --test memo_goldens)
fi
echo "memo smoke: OK"

# Observability gate, three layers (README "Live observability"):
# (a) stream_overhead --smoke: stream the deterministic smoke campaign
#     twice, byte-compare the two stream files, render each with
#     `fair-top --once --mode text`, byte-compare the renders, and diff
#     them against the committed golden
#     tests/fixtures/stream/smoke.top.txt (UPDATE_FIXTURES=1
#     regenerates after an intentional render change);
# (b) stream_overhead --check: the committed
#     results/BENCH_stream_overhead.json keeps its metric key set AND a
#     fresh interleaved measurement keeps the StreamSink tap's overhead
#     <= 10% vs recorder-only;
# (c) the in-process golden + torn-tail fuzz + stream/snapshot
#     differential suites (tests/fair_top_goldens.rs,
#     crates/telemetry/tests/stream_fuzz.rs, tests/stream_differential.rs).
# The smoke campaign is rand-free at runtime (instant series, hash-based
# faults), so offline everything runs from the shadow workspace.
echo "== ci: observe smoke =="
run_stream_bin() {
    if cargo build -q --release -p bench --bin stream_overhead 2>/dev/null; then
        cargo run -q --release -p bench --bin stream_overhead -- "$@"
    else
        (cd "$REPO/target/offline-check" &&
            CARGO_NET_OFFLINE=true cargo run -q --release --offline -p bench --bin stream_overhead -- "$@")
    fi
}
run_fair_top() {
    if cargo build -q --release -p fair-top --bin fair-top 2>/dev/null; then
        cargo run -q --release -p fair-top --bin fair-top -- "$@"
    else
        (cd "$REPO/target/offline-check" &&
            CARGO_NET_OFFLINE=true cargo run -q --release --offline -p fair-top --bin fair-top -- "$@")
    fi
}
OBS_DIR="$REPO/target/observe-smoke"
rm -rf "$OBS_DIR" && mkdir -p "$OBS_DIR"
run_stream_bin --smoke "$OBS_DIR/smoke1.stream"
run_stream_bin --smoke "$OBS_DIR/smoke2.stream"
cmp -s "$OBS_DIR/smoke1.stream" "$OBS_DIR/smoke2.stream" ||
    { echo "observe smoke: stream bytes not stable across two runs"; exit 1; }
run_fair_top --once --mode text "$OBS_DIR/smoke1.stream" >"$OBS_DIR/top1.txt"
run_fair_top --once --mode text "$OBS_DIR/smoke2.stream" >"$OBS_DIR/top2.txt"
cmp -s "$OBS_DIR/top1.txt" "$OBS_DIR/top2.txt" ||
    { echo "observe smoke: fair-top render not stable across two runs"; exit 1; }
TOP_GOLDEN="$REPO/tests/fixtures/stream/smoke.top.txt"
if [ "${UPDATE_FIXTURES:-0}" = 1 ]; then
    cp "$OBS_DIR/top1.txt" "$TOP_GOLDEN"
    echo "updated $(basename "$TOP_GOLDEN")"
elif ! cmp -s "$OBS_DIR/top1.txt" "$TOP_GOLDEN"; then
    echo "observe smoke: fair-top render diverged from its golden (UPDATE_FIXTURES=1 to regen):"
    diff "$TOP_GOLDEN" "$OBS_DIR/top1.txt" || true
    exit 1
fi
run_stream_bin --check "$REPO/results"
if cargo build -q --tests 2>/dev/null; then
    UPDATE_FIXTURES="${UPDATE_FIXTURES:-0}" cargo test -q --test fair_top_goldens --test stream_differential
    cargo test -q -p telemetry --test stream_fuzz
else
    (cd "$REPO/target/offline-check" &&
        STREAM_FIXTURE_DIR="$REPO/tests/fixtures/stream" UPDATE_FIXTURES="${UPDATE_FIXTURES:-0}" \
            CARGO_NET_OFFLINE=true cargo test -q --offline --test fair_top_goldens --test stream_differential &&
        CARGO_NET_OFFLINE=true cargo test -q --offline -p telemetry --test stream_fuzz)
fi
echo "observe smoke: OK"

echo "ci: OK"
