#!/usr/bin/env bash
# Offline CI: the checks every change must pass before it lands.
#
#   1. cargo fmt --check            — formatting is canonical
#   2. cargo check --all-targets    — everything compiles (stubbed deps)
#   3. cargo clippy -- -D warnings  — zero clippy findings, including the
#                                     workspace lint policy (unwrap_used,
#                                     dbg_macro, missing_docs)
#
# Steps 2 and 3 run through devtools/offline-check.sh, so the whole script
# works with no network and no registry access. With a warm registry,
# `cargo build --release && cargo test -q` remains the authoritative gate.
set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO"

echo "== ci: cargo fmt --check =="
cargo fmt --check

echo "== ci: offline check + clippy =="
"$REPO/devtools/offline-check.sh" clippy

echo "ci: OK"
