#!/usr/bin/env bash
# Offline CI: the checks every change must pass before it lands.
#
#   1. cargo fmt --check            — formatting is canonical
#   2. cargo check --all-targets    — everything compiles (stubbed deps)
#   3. cargo clippy -- -D warnings  — zero clippy findings, including the
#                                     workspace lint policy (unwrap_used,
#                                     dbg_macro, missing_docs)
#
# Steps 2 and 3 run through devtools/offline-check.sh, so the whole script
# works with no network and no registry access. With a warm registry,
# `cargo build --release && cargo test -q` remains the authoritative gate.
set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO"

echo "== ci: cargo fmt --check =="
cargo fmt --check

echo "== ci: offline check + clippy =="
"$REPO/devtools/offline-check.sh" clippy

# Fault-injection smoke: drive a seeded campaign through node crashes,
# run errors, and checkpoint-aware restart, asserting the rework
# advantage. Needs real (non-stubbed) dependencies, so it only runs when
# a full build is possible; offline it is reported and skipped.
echo "== ci: fault-injection smoke =="
if cargo build -q --release -p bench --bin resilience_ablation 2>/dev/null; then
    cargo run -q --release -p bench --bin resilience_ablation
else
    echo "skipped: registry offline — run 'cargo run --release -p bench --bin resilience_ablation' with a warm registry"
fi

# Telemetry smoke: regenerate the three seeded baseline scenarios and
# verify (a) two in-memory generations are byte-identical, (b) the
# exports carry the schema ids declared in devtools/schemas/, and
# (c) the metric key sets match the committed results/BENCH_*.json.
# Key sets (not values) are compared because counter values depend on
# the rand implementation, which differs between the real build and the
# offline stub build. The telemetry_baselines bin needs nothing beyond
# the functional rand stub at runtime, so offline it runs from the
# shadow workspace offline-check.sh just built.
echo "== ci: telemetry smoke =="
if cargo build -q --release -p bench --bin telemetry_baselines 2>/dev/null; then
    cargo run -q --release -p bench --bin telemetry_baselines -- --check results devtools/schemas
else
    (cd "$REPO/target/offline-check" &&
        CARGO_NET_OFFLINE=true cargo run -q --release --offline -p bench --bin telemetry_baselines -- \
            --check "$REPO/results" "$REPO/devtools/schemas")
fi

# Parallel-determinism smoke: execute a sharded campaign serially
# (inline, no pool) and on thread pools of 1 and 4 workers, with and
# without fault injection, and byte-compare the canonical StatusBoard
# JSON and the telemetry metric exports. Any scheduling leak into
# observable output fails the diff. Like the telemetry smoke, the bin
# is runnable from the shadow workspace when the registry is offline.
echo "== ci: parallel-determinism smoke =="
if cargo build -q --release -p bench --bin campaign_parallel 2>/dev/null; then
    cargo run -q --release -p bench --bin campaign_parallel -- --smoke
else
    (cd "$REPO/target/offline-check" &&
        CARGO_NET_OFFLINE=true cargo run -q --release --offline -p bench --bin campaign_parallel -- --smoke)
fi

echo "ci: OK"
