#!/usr/bin/env bash
# Offline typecheck + lint harness.
#
# The workspace's external dependencies (serde, rand, proptest, ...) are not
# vendored, so `cargo check` against the real registry needs network access.
# This script assembles a *shadow workspace* under target/offline-check/ in
# which every external dependency is replaced by the API-shape-compatible
# stub crates in devtools/stubs/, then runs `cargo check` (and optionally
# clippy) fully offline. It verifies that the workspace's own code compiles
# and lints cleanly; it does NOT produce runnable artifacts (the stubs are
# typecheck-only).
#
# Usage:
#   devtools/offline-check.sh            # cargo check --all-targets
#   devtools/offline-check.sh clippy     # + cargo clippy -- -D warnings
#   devtools/offline-check.sh fmt        # + cargo fmt --check (real tree)
set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SHADOW="$REPO/target/offline-check"
MODE="${1:-check}"

mkdir -p "$REPO/target"
rm -rf "$SHADOW"
mkdir -p "$SHADOW"

# --- assemble the shadow workspace -----------------------------------------
cp -r "$REPO/crates" "$SHADOW/crates"
cp -r "$REPO/src" "$SHADOW/src"
[ -d "$REPO/tests" ] && cp -r "$REPO/tests" "$SHADOW/tests"
[ -d "$REPO/examples" ] && cp -r "$REPO/examples" "$SHADOW/examples"
cp -r "$REPO/devtools/stubs" "$SHADOW/stubs"
[ -f "$REPO/clippy.toml" ] && cp "$REPO/clippy.toml" "$SHADOW/clippy.toml"

# Point every external dependency at its stub. Path entries (the workspace's
# own crates) pass through untouched.
sed -E \
    -e 's#^rand = .*#rand = { path = "stubs/rand" }#' \
    -e 's#^proptest = .*#proptest = { path = "stubs/proptest" }#' \
    -e 's#^criterion = .*#criterion = { path = "stubs/criterion" }#' \
    -e 's#^crossbeam = .*#crossbeam = { path = "stubs/crossbeam" }#' \
    -e 's#^parking_lot = .*#parking_lot = { path = "stubs/parking_lot" }#' \
    -e 's#^bytes = .*#bytes = { path = "stubs/bytes" }#' \
    -e 's#^serde = .*#serde = { path = "stubs/serde", features = ["derive"] }#' \
    -e 's#^serde_json = .*#serde_json = { path = "stubs/serde_json" }#' \
    "$REPO/Cargo.toml" >"$SHADOW/Cargo.toml"

# --- run the checks ---------------------------------------------------------
cd "$SHADOW"
export CARGO_NET_OFFLINE=true

echo "== cargo check (stubbed deps, all targets) =="
cargo check --workspace --all-targets --offline

if [ "$MODE" = "clippy" ] || [ "$MODE" = "all" ]; then
    echo "== cargo clippy (stubbed deps, -D warnings) =="
    cargo clippy --workspace --all-targets --offline -- -D warnings
fi

if [ "$MODE" = "fmt" ] || [ "$MODE" = "all" ]; then
    echo "== cargo fmt --check (real tree) =="
    cd "$REPO"
    cargo fmt --check
fi

echo "offline-check: OK ($MODE)"
