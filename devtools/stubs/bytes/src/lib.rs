//! Offline typecheck stub for `bytes`.
//!
//! `Bytes`/`BytesMut` over plain `Vec<u8>` (no refcounted zero-copy —
//! `clone`/`slice` copy). API-shape-compatible with the subset this
//! workspace uses; built only by `devtools/offline-check.sh`.

use std::ops::{Deref, DerefMut, RangeBounds};

/// Immutable byte buffer (stub: owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.to_vec() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Splits off and returns the first `at` bytes.
    ///
    /// # Panics
    /// If `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let rest = self.data.split_off(at);
        Bytes { data: std::mem::replace(&mut self.data, rest) }
    }

    /// A copy of the given subrange (stub: copies, real crate refcounts).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes { data: self.data[start..end].to_vec() }
    }

    /// The bytes as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data == other
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.data == other.as_bytes()
    }
}
impl PartialEq<String> for Bytes {
    fn eq(&self, other: &String) -> bool {
        self.data == other.as_bytes()
    }
}
impl PartialEq<Bytes> for String {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_bytes() == other.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Self::copy_from_slice(data.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Mutable byte buffer (stub: owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        Self { data: data.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read cursor over a byte buffer (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consumes and discards `n` bytes.
    fn advance(&mut self, n: usize);
    /// Consumes the next byte.
    fn get_u8(&mut self) -> u8;
    /// Consumes a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Consumes a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Consumes a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

macro_rules! read_be {
    ($self:ident, $t:ty) => {{
        const N: usize = std::mem::size_of::<$t>();
        let mut raw = [0u8; N];
        raw.copy_from_slice(&$self.data[..N]);
        $self.data.drain(..N);
        <$t>::from_be_bytes(raw)
    }};
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len()
    }
    fn advance(&mut self, n: usize) {
        self.data.drain(..n);
    }
    fn get_u8(&mut self) -> u8 {
        read_be!(self, u8)
    }
    fn get_u16(&mut self) -> u16 {
        read_be!(self, u16)
    }
    fn get_u32(&mut self) -> u32 {
        read_be!(self, u32)
    }
    fn get_u64(&mut self) -> u64 {
        read_be!(self, u64)
    }
}

/// Write cursor over a growable byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
}
