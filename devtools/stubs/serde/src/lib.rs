//! Offline typecheck stub for `serde`.
//!
//! Trait-shape-compatible with the real crate for the subset of the API this
//! workspace uses. Carries no serialization logic: derives expand to empty
//! trait impls, so code *typechecks* identically but must never be executed
//! against these stubs. Used only by `devtools/offline-check.sh`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Stand-in for `serde::de`.
pub mod de {
    /// Stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

/// Stand-in for `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

macro_rules! impl_prim {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_prim!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl Serialize for str {}
impl<T: Serialize + ?Sized> Serialize for &T {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, S: Default> Deserialize<'de>
    for std::collections::HashMap<K, V, S>
{
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {}

impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl Serialize for () {}
impl<'de> Deserialize<'de> for () {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
