//! Offline typecheck stub for `crossbeam` (deque + channel subsets).
//!
//! Lock-based reimplementations with the same API shape — correct but slow;
//! only the offline typecheck harness in `devtools/` should ever build this.

#![allow(dead_code)]

/// Stand-in for `crossbeam::deque`.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Result of a steal attempt.
    pub enum Steal<T> {
        /// A task was stolen.
        Success(T),
        /// The queue was observed empty.
        Empty,
        /// A race was lost; try again.
        Retry,
    }

    /// FIFO global injector queue.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Self { queue: Mutex::new(VecDeque::new()) }
        }

        /// Pushes a task.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner).push_back(task);
        }

        /// Steals one task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap_or_else(PoisonError::into_inner).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch into `dest`, popping one task.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
            match q.pop_front() {
                Some(first) => {
                    let mut d = dest.shared.lock().unwrap_or_else(PoisonError::into_inner);
                    for _ in 0..q.len().min(16) {
                        if let Some(t) = q.pop_front() {
                            d.push_back(t);
                        }
                    }
                    Steal::Success(first)
                }
                None => Steal::Empty,
            }
        }

        /// Whether the queue is observed empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner).is_empty()
        }
    }

    /// A worker-local deque.
    pub struct Worker<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO worker deque.
        pub fn new_lifo() -> Self {
            Self { shared: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Creates a FIFO worker deque (same lock-based stub engine).
        pub fn new_fifo() -> Self {
            Self::new_lifo()
        }

        /// Pushes a task onto the local end.
        pub fn push(&self, task: T) {
            self.shared.lock().unwrap_or_else(PoisonError::into_inner).push_back(task);
        }

        /// Pops from the local end (LIFO).
        pub fn pop(&self) -> Option<T> {
            self.shared.lock().unwrap_or_else(PoisonError::into_inner).pop_back()
        }

        /// A stealer handle viewing this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { shared: Arc::clone(&self.shared) }
        }
    }

    /// A handle that steals from a [`Worker`]'s opposite end.
    pub struct Stealer<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals one task.
        pub fn steal(&self) -> Steal<T> {
            match self.shared.lock().unwrap_or_else(PoisonError::into_inner).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the deque is observed empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap_or_else(PoisonError::into_inner).is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self { shared: Arc::clone(&self.shared) }
        }
    }
}

/// Stand-in for `crossbeam::channel` (unbounded MPMC).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Sending half.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error: all receivers dropped (stub never reports this).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error: channel empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error for `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders dropped.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    impl<T> Sender<T> {
        /// Enqueues a value.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Self { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.inner.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Iterator draining currently queued values without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Blocking iterator until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Owning blocking iterator.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// See [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}
