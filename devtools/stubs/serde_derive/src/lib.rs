//! Offline typecheck stub for `serde_derive`.
//!
//! Expands `#[derive(Serialize)]` / `#[derive(Deserialize)]` into *empty*
//! marker-trait impls (the stub `serde` traits carry no methods), plus a
//! hidden never-called method that borrows every struct field so that
//! `dead_code` sees serialized fields as used — mirroring the real derive,
//! where generated impls read/write all fields. Parses the item with a tiny
//! hand-rolled scanner instead of `syn`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive stub for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derive stub for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

enum Trait {
    Serialize,
    Deserialize,
}

struct Item {
    name: String,
    /// Raw generics including brackets (`<T: Clone, 'a>`), or empty.
    generics: String,
    /// Raw where clause (`where T: Clone`), or empty.
    where_clause: String,
    /// Field accessors to "touch" (`name` or tuple index), empty for enums
    /// and unit structs.
    fields: Vec<String>,
    is_struct: bool,
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let decl = &item.generics;
    let usage = usage_generics(decl);
    let wc = &item.where_clause;
    let mut out = match which {
        Trait::Serialize => format!(
            "#[automatically_derived] impl{decl} ::serde::Serialize for {name}{usage} {wc} {{}}"
        ),
        Trait::Deserialize => {
            let de_decl = if decl.is_empty() {
                "<'de>".to_string()
            } else {
                format!("<'de, {}>", &decl[1..decl.len() - 1])
            };
            format!(
                "#[automatically_derived] impl{de_decl} ::serde::Deserialize<'de> for {name}{usage} {wc} {{}}"
            )
        }
    };
    if item.is_struct && !item.fields.is_empty() {
        let suffix = match which {
            Trait::Serialize => "ser",
            Trait::Deserialize => "de",
        };
        let touches: Vec<String> =
            item.fields.iter().map(|f| format!("&self.{f}")).collect();
        out.push_str(&format!(
            "#[automatically_derived] impl{decl} {name}{usage} {wc} {{ \
             #[allow(dead_code, non_snake_case)] \
             fn __serde_stub_touch_{suffix}(&self) {{ let _ = ({}); }} }}",
            touches.join(", ")
        ));
    }
    out.parse().expect("stub derive produced invalid tokens")
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut is_struct = false;
    // Skip outer attributes and qualifiers until `struct` / `enum`.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let s = id.to_string();
                i += 1;
                if s == "struct" {
                    is_struct = true;
                    break;
                }
                if s == "enum" || s == "union" {
                    break;
                }
            }
            _ => i += 1,
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("stub derive: expected item name, found {other:?}"),
    };
    i += 1;
    // Collect `<...>` generics if present.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            while i < tokens.len() {
                if let TokenTree::Punct(p) = &tokens[i] {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => {}
                    }
                }
                generics.push_str(&tokens[i].to_string());
                generics.push(' ');
                i += 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }
    // Everything up to the body group is the where clause (or, for tuple
    // structs, nothing: the paren group IS the body).
    let mut where_clause = String::new();
    let mut fields = Vec::new();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                if is_struct {
                    fields = named_fields(g.stream());
                }
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && is_struct => {
                fields = (0..count_fields(g.stream())).map(|k| k.to_string()).collect();
                // A where clause may still follow a tuple body; it applies to
                // the `impl` the same way, so keep scanning.
                i += 1;
                continue;
            }
            tok => {
                where_clause.push_str(&tok.to_string());
                where_clause.push(' ');
                i += 1;
            }
        }
    }
    // A trailing `;` from unit/tuple structs is not part of a where clause.
    let where_clause = where_clause.trim().trim_end_matches(';').trim().to_string();
    Item {
        name,
        generics: generics.trim().to_string(),
        where_clause,
        fields,
        is_struct,
    }
}

/// Field names of a named-field struct body.
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut angle_depth = 0i32;
    let mut start_of_field = true;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    angle_depth += 1;
                    i += 1;
                }
                '>' => {
                    angle_depth -= 1;
                    i += 1;
                }
                ',' if angle_depth == 0 => {
                    start_of_field = true;
                    i += 1;
                }
                '#' if start_of_field => i += 2, // field attribute
                _ => i += 1,
            },
            TokenTree::Ident(id) if start_of_field && angle_depth == 0 => {
                let s = id.to_string();
                if s == "pub" {
                    i += 1; // visibility (an optional paren group follows)
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                    continue;
                }
                // `ident :` introduces the field; anything else is type junk.
                if let Some(TokenTree::Punct(p)) = tokens.get(i + 1) {
                    if p.as_char() == ':' {
                        fields.push(s);
                        start_of_field = false;
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    fields
}

/// Number of comma-separated fields in a tuple-struct body.
fn count_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// `<T: Clone, 'a>` -> `<T, 'a>`: parameter names only, bounds stripped.
fn usage_generics(generics: &str) -> String {
    if generics.is_empty() {
        return String::new();
    }
    let inner = generics.trim_start_matches('<').trim_end_matches('>').trim();
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for ch in inner.chars() {
        match ch {
            '<' | '(' | '[' => {
                depth += 1;
                current.push(ch);
            }
            '>' | ')' | ']' => {
                depth -= 1;
                current.push(ch);
            }
            ',' if depth == 0 => params.push(std::mem::take(&mut current)),
            _ => current.push(ch),
        }
    }
    if !current.trim().is_empty() {
        params.push(current);
    }
    let names: Vec<String> = params
        .iter()
        .map(|p| {
            let head = p.split([':', '=']).next().unwrap_or(p).trim();
            head.trim_start_matches("const ").trim().to_string()
        })
        .collect();
    format!("<{}>", names.join(", "))
}
