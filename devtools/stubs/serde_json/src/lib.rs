//! Offline typecheck stub for `serde_json`.
//!
//! API-shape-compatible `Value`/`Map`/`Number` plus the entry points this
//! workspace calls. Serialization entry points are `unimplemented!()` —
//! this crate exists so `devtools/offline-check.sh` can typecheck the
//! workspace without network access; it must never be executed.

use std::collections::BTreeMap;
use std::fmt;

/// Stand-in for `serde_json::Map` (key-ordered, like the real crate with
/// the `preserve_order` feature off).
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// Stand-in for `serde_json::Number`.
#[derive(Debug, Clone, PartialEq)]
pub struct Number(f64);

impl Number {
    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        Some(self.0)
    }

    /// The number as `i64` when integral.
    pub fn as_i64(&self) -> Option<i64> {
        if self.0.fract() == 0.0 {
            Some(self.0 as i64)
        } else {
            None
        }
    }

    /// The number as `u64` when integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        if self.0.fract() == 0.0 && self.0 >= 0.0 {
            Some(self.0 as u64)
        } else {
            None
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.abs() < 9.0e15 {
            write!(f, "{}", self.0 as i64)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

macro_rules! number_from {
    ($($t:ty),* $(,)?) => {
        $(
            impl From<$t> for Number {
                fn from(v: $t) -> Self {
                    Number(v as f64)
                }
            }
            impl From<$t> for Value {
                fn from(v: $t) -> Self {
                    Value::Number(Number(v as f64))
                }
            }
        )*
    };
}

number_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Stand-in for `serde_json::Value`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Mutable member lookup on objects.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(m) => m.get_mut(key),
            _ => None,
        }
    }

    /// True for `Value::Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }
    /// True for `Value::Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }
    /// True for `Value::String`.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }
    /// True for `Value::Bool`.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }
    /// True for `Value::Number`.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    /// True for integral numbers representable as `i64`.
    pub fn is_i64(&self) -> bool {
        matches!(self, Value::Number(n) if n.as_i64().is_some())
    }
    /// True for integral numbers representable as `u64`.
    pub fn is_u64(&self) -> bool {
        matches!(self, Value::Number(n) if n.as_u64().is_some())
    }
    /// True for any number (mirrors `is_f64` loosely).
    pub fn is_f64(&self) -> bool {
        self.is_number()
    }

    /// The value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }
    /// The value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }
    /// The value as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    /// The value as a mutable array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    /// The value as an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    /// The value as a mutable object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write!(f, "{s:?}"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{k:?}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self)
    }
}
impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}
impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self.as_str())
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other.as_bool() == Some(*self)
    }
}

macro_rules! value_eq_num {
    ($($t:ty),* $(,)?) => {
        $(
            impl PartialEq<$t> for Value {
                fn eq(&self, other: &$t) -> bool {
                    self.as_f64() == Some(*other as f64)
                }
            }
            impl PartialEq<Value> for $t {
                fn eq(&self, other: &Value) -> bool {
                    other.as_f64() == Some(*self as f64)
                }
            }
        )*
    };
}
value_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}
impl From<Number> for Value {
    fn from(v: Number) -> Self {
        Value::Number(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Self {
        Value::Object(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(m) => m.entry(key.to_string()).or_insert(Value::Null),
            _ => panic!("cannot index non-object value"),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => &mut a[idx],
            _ => panic!("cannot index non-array value"),
        }
    }
}

impl serde::Serialize for Value {}
impl<'de> serde::Deserialize<'de> for Value {}
impl serde::Serialize for Number {}
impl<'de> serde::Deserialize<'de> for Number {}

/// Stand-in for `serde_json::Error`.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Stand-in for `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Typecheck-only stand-in; aborts if actually called.
pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub: offline typecheck only")
}

/// Typecheck-only stand-in; aborts if actually called.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub: offline typecheck only")
}

/// Typecheck-only stand-in; aborts if actually called.
pub fn to_vec<T: serde::Serialize + ?Sized>(_value: &T) -> Result<Vec<u8>> {
    unimplemented!("serde_json stub: offline typecheck only")
}

/// Typecheck-only stand-in; aborts if actually called.
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    unimplemented!("serde_json stub: offline typecheck only")
}

/// Typecheck-only stand-in; aborts if actually called.
pub fn from_slice<'a, T: serde::Deserialize<'a>>(_s: &'a [u8]) -> Result<T> {
    unimplemented!("serde_json stub: offline typecheck only")
}

/// Typecheck-only stand-in; aborts if actually called.
pub fn to_value<T: serde::Serialize>(_value: T) -> Result<Value> {
    unimplemented!("serde_json stub: offline typecheck only")
}

/// Typecheck-only stand-in; aborts if actually called.
pub fn from_value<T: serde::de::DeserializeOwned>(_value: Value) -> Result<T> {
    unimplemented!("serde_json stub: offline typecheck only")
}

/// By-reference conversion used by the stub [`json!`] macro (the real macro
/// serializes expressions behind a reference, so `json!({"k": s.field})`
/// must not move out of `s`).
pub trait ToJsonValue {
    /// The expression as a [`Value`].
    fn to_json_value(&self) -> Value;
}

impl ToJsonValue for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl ToJsonValue for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl ToJsonValue for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl ToJsonValue for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl<T: ToJsonValue + ?Sized> ToJsonValue for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}
impl<T: ToJsonValue> ToJsonValue for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJsonValue::to_json_value).collect())
    }
}
impl<T: ToJsonValue> ToJsonValue for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJsonValue::to_json_value).collect())
    }
}
impl<T: ToJsonValue> ToJsonValue for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

macro_rules! to_json_value_num {
    ($($t:ty),* $(,)?) => {
        $(
            impl ToJsonValue for $t {
                fn to_json_value(&self) -> Value {
                    Value::Number(Number(*self as f64))
                }
            }
        )*
    };
}
to_json_value_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Stand-in for `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJsonValue::to_json_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut __map: $crate::Map = ::std::default::Default::default();
        $( __map.insert($key.to_string(), $crate::ToJsonValue::to_json_value(&$val)); )*
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::ToJsonValue::to_json_value(&$other) };
}
